//! Symbol interning.
//!
//! Symbols are the identifiers of Lisp.  Interning maps each distinct
//! spelling to a single shared allocation so that symbol comparison is a
//! pointer compare.  The paper's compiler keeps *variables* distinct from
//! *symbols* (two variables with the same name may be distinct because of
//! scoping rules); that distinction lives in `s1lisp-ast`, not here.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// An interned symbol.
///
/// Equality is by spelling, with a pointer-compare fast path for symbols
/// from the same interner.  Distinctness of compiler-generated symbols is
/// guaranteed because [`Interner::gensym`] always produces a fresh
/// spelling; user-level variable identity is tracked by `VarId` in the
/// tree, not by symbol.
///
/// # Examples
///
/// ```
/// use s1lisp_reader::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("car");
/// assert_eq!(a, i.intern("car"));
/// assert_eq!(a.as_str(), "car");
/// assert_eq!(a.to_string(), "car");
/// ```
#[derive(Clone, Eq)]
pub struct Symbol(Rc<str>);

impl Symbol {
    /// The spelling of this symbol.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Symbol {
    #[inline]
    fn eq(&self, other: &Symbol) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A string-to-[`Symbol`] interner.
///
/// All symbols appearing in one program must come from one interner;
/// symbols interned by different interners are never equal even when
/// spelled alike.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    gensym_counter: u32,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its symbol.  Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(sym) = self.map.get(name) {
            return sym.clone();
        }
        let sym = Symbol(Rc::from(name));
        self.map.insert(name.into(), sym.clone());
        sym
    }

    /// Looks up a symbol without interning, returning `None` if `name`
    /// has never been interned.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).cloned()
    }

    /// Number of distinct spellings interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Creates a fresh symbol guaranteed distinct from every symbol
    /// interned so far, with a spelling derived from `stem`.
    ///
    /// Used by the compiler for the join-point functions (`f1`, `f2`, …)
    /// introduced by the if-distribution transformation, and for uniform
    /// alpha-renaming.
    pub fn gensym(&mut self, stem: &str) -> Symbol {
        loop {
            self.gensym_counter += 1;
            let candidate = format!("{stem}%{}", self.gensym_counter);
            if self.map.contains_key(candidate.as_str()) {
                continue;
            }
            return self.intern(&candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        let c = i.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut i = Interner::new();
        for s in ["+$f", "sin$c", "quadratic", "f%1"] {
            let sym = i.intern(s);
            assert_eq!(sym.as_str(), s);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("nope"), None);
        let s = i.intern("yes");
        assert_eq!(i.get("yes"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn gensym_is_fresh() {
        let mut i = Interner::new();
        i.intern("f%1"); // try to collide
        let g1 = i.gensym("f");
        let g2 = i.gensym("f");
        assert_ne!(g1, g2);
        assert_ne!(g1.as_str(), "f%1");
        assert!(g1.as_str().starts_with("f%"));
    }

    #[test]
    fn symbols_compare_by_spelling_across_interners() {
        let mut i1 = Interner::new();
        let mut i2 = Interner::new();
        assert_eq!(i1.intern("x"), i2.intern("x"));
        assert_ne!(i1.intern("x"), i2.intern("y"));
    }

    #[test]
    fn hash_is_consistent_with_eq() {
        use std::collections::HashSet;
        let mut i = Interner::new();
        let mut set = HashSet::new();
        set.insert(i.intern("a"));
        assert!(set.contains(&i.intern("a")));
        assert!(!set.contains(&i.intern("b")));
    }
}
