//! Printing of data, both flat ([`Display`]) and line-broken ([`pretty`]).
//!
//! The paper's compiler back-translates its internal tree into source form
//! for its debugging transcript; the [`pretty`] printer reproduces that
//! output style (short forms on one line, long forms broken with operands
//! aligned).
//!
//! [`Display`]: std::fmt::Display

use std::fmt;

use crate::datum::Datum;

/// Writes `d` in standard flat notation.
pub(crate) fn write_datum(f: &mut fmt::Formatter<'_>, d: &Datum) -> fmt::Result {
    match d {
        Datum::Nil => f.write_str("()"),
        Datum::Fixnum(n) => write!(f, "{n}"),
        Datum::Flonum(x) => f.write_str(&format_flonum(*x)),
        Datum::Sym(s) => write!(f, "{s}"),
        Datum::Str(s) => write!(f, "{:?}", &**s),
        Datum::Char(c) => write!(f, "#\\{c}"),
        Datum::Cons(_) => write_list(f, d),
    }
}

/// Formats a flonum so it reads back as a flonum (always shows a decimal
/// point or exponent).
pub(crate) fn format_flonum(x: f64) -> String {
    if x.is_nan() {
        return "#.flonum-nan".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 {
            "#.flonum-inf".to_string()
        } else {
            "#.flonum-neg-inf".to_string()
        };
    }
    let magnitude = x.abs();
    if magnitude != 0.0 && !(1e-5..1e21).contains(&magnitude) {
        return format!("{x:e}");
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_list(f: &mut fmt::Formatter<'_>, d: &Datum) -> fmt::Result {
    // (quote x) prints as 'x, matching the reader's abbreviation.
    if let Some(inner) = quoted_form(d) {
        write!(f, "'")?;
        return write_datum(f, &inner);
    }
    f.write_str("(")?;
    let mut cur = d.clone();
    let mut first = true;
    loop {
        match cur {
            Datum::Cons(c) => {
                if !first {
                    f.write_str(" ")?;
                }
                first = false;
                write_datum(f, &c.car())?;
                cur = c.cdr();
            }
            Datum::Nil => break,
            other => {
                f.write_str(" . ")?;
                write_datum(f, &other)?;
                break;
            }
        }
    }
    f.write_str(")")
}

/// Returns `Some(x)` when `d` is exactly `(quote x)`.
fn quoted_form(d: &Datum) -> Option<Datum> {
    let c = d.as_cons()?;
    let head = c.car();
    let sym = head.as_symbol()?;
    if sym.as_str() != "quote" {
        return None;
    }
    let rest = c.cdr();
    let rest = rest.as_cons()?;
    if !rest.cdr().is_nil() {
        return None;
    }
    Some(rest.car())
}

/// Pretty-prints a datum with line breaking at `width` columns.
///
/// This is the printer used for the compiler's back-translation transcript
/// (§4.1 of the paper).  Forms that fit within the width print flat;
/// otherwise the head stays on the first line and arguments are indented
/// beneath it.
///
/// # Examples
///
/// ```
/// use s1lisp_reader::{pretty, read_str, Interner};
///
/// let mut i = Interner::new();
/// let d = read_str("(if (< d 0) () (list (/ (- b) (* 2.0 a))))", &mut i).unwrap();
/// assert_eq!(pretty(&d, 80), "(if (< d 0) () (list (/ (- b) (* 2.0 a))))");
/// let broken = pretty(&d, 20);
/// assert!(broken.contains('\n'));
/// ```
pub fn pretty(d: &Datum, width: usize) -> String {
    let mut out = String::new();
    pp(&mut out, d, 0, width);
    out
}

fn pp(out: &mut String, d: &Datum, indent: usize, width: usize) {
    let flat = d.to_string();
    if indent + flat.len() <= width || d.is_atom() {
        out.push_str(&flat);
        return;
    }
    if flat.starts_with('\'') {
        // Quoted form too long: print flat anyway (data, not code).
        out.push_str(&flat);
        return;
    }
    let Some(items) = d.proper_list() else {
        out.push_str(&flat);
        return;
    };
    if items.is_empty() {
        out.push_str("()");
        return;
    }
    out.push('(');
    let head_flat = items[0].to_string();

    // Special forms that keep their first argument(s) on the head line.
    let hang = match items[0].as_symbol().map(|s| s.as_str().to_owned()) {
        Some(s) if matches!(s.as_str(), "defun" | "lambda" | "let" | "if" | "setq") => 2,
        _ => 1,
    };
    pp(out, &items[0], indent + 1, width);
    let mut written = 1;
    if hang == 2 && items.len() > 1 {
        out.push(' ');
        let col = indent + 1 + head_flat.len() + 1;
        pp(out, &items[1], col, width);
        written = 2;
    }
    let body_indent = indent + 2;
    for item in &items[written..] {
        out.push('\n');
        out.push_str(&" ".repeat(body_indent));
        pp(out, item, body_indent, width);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_str, Interner};

    #[test]
    fn flonums_round_trip_textually() {
        assert_eq!(format_flonum(3.0), "3.0");
        assert_eq!(format_flonum(0.159154942), "0.159154942");
        assert_eq!(format_flonum(-2.5e30), "-2.5e30");
    }

    #[test]
    fn quote_abbreviation() {
        let mut i = Interner::new();
        let d = read_str("(quote (a b))", &mut i).unwrap();
        assert_eq!(d.to_string(), "'(a b)");
    }

    #[test]
    fn dotted_pair_prints() {
        let d = Datum::cons(Datum::Fixnum(1), Datum::Fixnum(2));
        assert_eq!(d.to_string(), "(1 . 2)");
    }

    #[test]
    fn nil_prints_as_empty_list() {
        assert_eq!(Datum::Nil.to_string(), "()");
    }

    #[test]
    fn pretty_flat_when_it_fits() {
        let mut i = Interner::new();
        let d = read_str("(+ 1 2)", &mut i).unwrap();
        assert_eq!(pretty(&d, 80), "(+ 1 2)");
    }

    #[test]
    fn pretty_breaks_long_forms() {
        let mut i = Interner::new();
        let d = read_str(
            "(defun quadratic (a b c) (let ((d (- (* b b) (* 4.0 a c)))) d))",
            &mut i,
        )
        .unwrap();
        let s = pretty(&d, 40);
        assert!(s.lines().count() > 1);
        // Re-reading the pretty output yields an equal datum.
        let back = read_str(&s, &mut i).unwrap();
        assert!(back.equal(&d));
    }

    #[test]
    fn strings_print_escaped() {
        let d = Datum::string("a\"b");
        assert_eq!(d.to_string(), r#""a\"b""#);
    }
}
