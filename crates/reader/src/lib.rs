//! S-expression data model, reader, and printer for the `s1lisp` compiler.
//!
//! This crate provides the *source form* of programs: the [`Datum`] type
//! (atoms and conses), a symbol [`Interner`], a [`Reader`] front end, and
//! printers (both machine-oriented [`Display`] output and a line-breaking
//! [`pretty`] printer used by the compiler's back-translation transcript).
//!
//! The dialect follows the paper (Brooks, Gabriel & Steele, PLDI 1982): a
//! lexically scoped Lisp in the MACLISP/Common Lisp lineage.  Numbers are
//! fixnums and flonums; symbols may contain the type-specific operator
//! suffixes used throughout the paper (`+$f`, `sin$f`, …).
//!
//! # Examples
//!
//! ```
//! use s1lisp_reader::{Interner, read_str};
//!
//! let mut interner = Interner::new();
//! let datum = read_str("(defun square (x) (*$f x x))", &mut interner).unwrap();
//! assert_eq!(datum.to_string(), "(defun square (x) (*$f x x))");
//! ```
//!
//! [`Display`]: std::fmt::Display

#![warn(missing_docs)]

mod datum;
mod interner;
mod print;
mod read;

pub use datum::{Cons, Datum};
pub use interner::{Interner, Symbol};
pub use print::pretty;
pub use read::{read_all_str, read_str, ReadError, Reader};
