//! The reader: text → [`Datum`].
//!
//! Accepts the subset of MACLISP/Common Lisp read syntax the paper uses:
//! lists, dotted pairs, fixnums, flonums, symbols (including the
//! type-specific operator spellings like `+$f` and `sin$c`), strings,
//! characters (`#\a`), `'x` quote abbreviation, `#'f` function
//! abbreviation, and `;` comments.

use std::fmt;
use std::str::FromStr;

use crate::datum::Datum;
use crate::interner::Interner;

/// An error produced while reading, with 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column of the offending character.
    pub column: usize,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ReadError {}

/// Reads the first datum from `source`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input or if `source` contains no
/// datum at all.
pub fn read_str(source: &str, interner: &mut Interner) -> Result<Datum, ReadError> {
    let mut r = Reader::new(source);
    match r.read(interner)? {
        Some(d) => Ok(d),
        None => Err(r.error("unexpected end of input")),
    }
}

/// Reads every datum from `source`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input.
pub fn read_all_str(source: &str, interner: &mut Interner) -> Result<Vec<Datum>, ReadError> {
    let mut r = Reader::new(source);
    let mut out = Vec::new();
    while let Some(d) = r.read(interner)? {
        out.push(d);
    }
    Ok(out)
}

/// A resumable reader over a source string.
///
/// # Examples
///
/// ```
/// use s1lisp_reader::{Interner, Reader};
///
/// let mut i = Interner::new();
/// let mut r = Reader::new("(a) (b)");
/// assert_eq!(r.read(&mut i).unwrap().unwrap().to_string(), "(a)");
/// assert_eq!(r.read(&mut i).unwrap().unwrap().to_string(), "(b)");
/// assert!(r.read(&mut i).unwrap().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `source`.
    pub fn new(source: &'a str) -> Reader<'a> {
        Reader {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            source: std::marker::PhantomData,
        }
    }

    fn error(&self, message: &str) -> ReadError {
        ReadError {
            message: message.to_string(),
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_blank(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == ';' {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    /// Reads the next datum, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] on malformed input (unbalanced parens,
    /// bad dotted syntax, unterminated string, …).
    pub fn read(&mut self, interner: &mut Interner) -> Result<Option<Datum>, ReadError> {
        self.skip_blank();
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        match c {
            '(' => {
                self.bump();
                self.read_list(interner).map(Some)
            }
            ')' => Err(self.error("unbalanced close parenthesis")),
            '\'' => {
                self.bump();
                let inner = self.require(interner, "datum after quote")?;
                Ok(Some(Datum::list([
                    Datum::Sym(interner.intern("quote")),
                    inner,
                ])))
            }
            '"' => self.read_string().map(Some),
            '#' => self.read_hash(interner).map(Some),
            _ => self.read_atom(interner).map(Some),
        }
    }

    fn require(&mut self, interner: &mut Interner, what: &str) -> Result<Datum, ReadError> {
        match self.read(interner)? {
            Some(d) => Ok(d),
            None => Err(self.error(&format!("unexpected end of input, wanted {what}"))),
        }
    }

    fn read_list(&mut self, interner: &mut Interner) -> Result<Datum, ReadError> {
        let mut items = Vec::new();
        let mut tail = Datum::Nil;
        loop {
            self.skip_blank();
            match self.peek() {
                None => return Err(self.error("unterminated list")),
                Some(')') => {
                    self.bump();
                    break;
                }
                Some('.') if self.is_lone_dot() => {
                    self.bump();
                    if items.is_empty() {
                        return Err(self.error("dot at start of list"));
                    }
                    tail = self.require(interner, "datum after dot")?;
                    self.skip_blank();
                    if self.peek() != Some(')') {
                        return Err(self.error("more than one datum after dot"));
                    }
                    self.bump();
                    break;
                }
                Some(_) => items.push(self.require(interner, "list element")?),
            }
        }
        let mut out = tail;
        for item in items.into_iter().rev() {
            out = Datum::cons(item, out);
        }
        Ok(out)
    }

    /// True when the `.` at the cursor is a standalone dot (dotted-pair
    /// marker) rather than the start of a symbol or flonum like `.5`.
    fn is_lone_dot(&self) -> bool {
        match self.chars.get(self.pos + 1) {
            None => true,
            Some(c) => c.is_whitespace() || *c == ')' || *c == '(',
        }
    }

    fn read_string(&mut self) -> Result<Datum, ReadError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    None => return Err(self.error("unterminated string escape")),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => s.push(c),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Datum::string(&s))
    }

    fn read_hash(&mut self, interner: &mut Interner) -> Result<Datum, ReadError> {
        self.bump(); // '#'
        match self.peek() {
            Some('\\') => {
                self.bump();
                let Some(first) = self.bump() else {
                    return Err(self.error("unterminated character literal"));
                };
                // Multi-character names: #\space, #\newline, #\tab.
                if first.is_alphabetic() {
                    let mut name = String::from(first);
                    while let Some(c) = self.peek() {
                        if c.is_alphanumeric() || c == '-' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if name.chars().count() == 1 {
                        return Ok(Datum::Char(first));
                    }
                    return match name.to_ascii_lowercase().as_str() {
                        "space" => Ok(Datum::Char(' ')),
                        "newline" => Ok(Datum::Char('\n')),
                        "tab" => Ok(Datum::Char('\t')),
                        _ => Err(self.error(&format!("unknown character name #\\{name}"))),
                    };
                }
                Ok(Datum::Char(first))
            }
            Some('\'') => {
                self.bump();
                let inner = self.require(interner, "datum after #'")?;
                Ok(Datum::list([
                    Datum::Sym(interner.intern("function")),
                    inner,
                ]))
            }
            _ => Err(self.error("unsupported # syntax")),
        }
    }

    fn read_atom(&mut self, interner: &mut Interner) -> Result<Datum, ReadError> {
        let mut token = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' || c == '\'' {
                break;
            }
            token.push(c);
            self.bump();
        }
        debug_assert!(!token.is_empty());
        Ok(parse_atom(&token, interner))
    }
}

/// Classifies a token as fixnum, flonum, or symbol.  `nil` reads as the
/// empty list, matching MACLISP.
fn parse_atom(token: &str, interner: &mut Interner) -> Datum {
    if token.eq_ignore_ascii_case("nil") {
        return Datum::Nil;
    }
    if let Ok(n) = i64::from_str(token) {
        return Datum::Fixnum(n);
    }
    if looks_like_flonum(token) {
        if let Ok(x) = f64::from_str(token) {
            return Datum::Flonum(x);
        }
    }
    Datum::Sym(interner.intern(token))
}

/// A token is a flonum candidate only if it starts like a number; this
/// keeps symbols such as `1+` and `-` from being misread.
fn looks_like_flonum(token: &str) -> bool {
    let rest = token.strip_prefix(['-', '+']).unwrap_or(token);
    let mut has_digit = false;
    let mut has_marker = false;
    for c in rest.chars() {
        match c {
            '0'..='9' => has_digit = true,
            '.' | 'e' | 'E' => has_marker = true,
            '-' | '+' => {}
            _ => return false,
        }
    }
    has_digit && has_marker
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        let mut i = Interner::new();
        read_str(src, &mut i).unwrap().to_string()
    }

    #[test]
    fn reads_atoms() {
        assert_eq!(rt("42"), "42");
        assert_eq!(rt("-17"), "-17");
        assert_eq!(rt("3.0"), "3.0");
        assert_eq!(rt("0.159154942"), "0.159154942");
        assert_eq!(rt("foo"), "foo");
        assert_eq!(rt("+$f"), "+$f");
        assert_eq!(rt("1+"), "1+");
        assert_eq!(rt("-"), "-");
        assert_eq!(rt(".5"), "0.5");
        assert_eq!(rt("nil"), "()");
    }

    #[test]
    fn reads_lists_and_dots() {
        assert_eq!(rt("(a b c)"), "(a b c)");
        assert_eq!(rt("(a . b)"), "(a . b)");
        assert_eq!(rt("(a b . c)"), "(a b . c)");
        assert_eq!(rt("()"), "()");
        assert_eq!(rt("( a ( b ) )"), "(a (b))");
    }

    #[test]
    fn quote_and_function_abbreviations() {
        assert_eq!(rt("'x"), "'x");
        assert_eq!(rt("'(1 2)"), "'(1 2)");
        let mut i = Interner::new();
        let d = read_str("#'car", &mut i).unwrap();
        assert_eq!(d.to_string(), "(function car)");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(rt("; hi\n (a ; mid\n b)"), "(a b)");
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(rt("\"hi\\nthere\""), "\"hi\\nthere\"");
        assert_eq!(rt("#\\a"), "#\\a");
        assert_eq!(rt("#\\space"), "#\\ ");
    }

    #[test]
    fn read_all_reads_every_form() {
        let mut i = Interner::new();
        let all = read_all_str("(a) 2 three", &mut i).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn errors_carry_position() {
        let mut i = Interner::new();
        let e = read_str("(a\n  b", &mut i).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unterminated"));
        assert!(read_str(")", &mut i).is_err());
        assert!(read_str("(a . )", &mut i).is_err());
        assert!(read_str("(a . b c)", &mut i).is_err());
        assert!(read_str("(. a)", &mut i).is_err());
    }

    #[test]
    fn paper_example_round_trips() {
        let src = "(defun quadratic (a b c)
                     (let ((d (- (* b b) (* 4.0 a c))))
                       (cond ((< d 0) '())
                             ((= d 0) (list (/ (- b) (* 2.0 a))))
                             (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
                                  (list (/ (+ (- b) sd) two-a)
                                        (/ (- (- b) sd) two-a)))))))";
        let mut i = Interner::new();
        let d = read_str(src, &mut i).unwrap();
        let printed = d.to_string();
        let back = read_str(&printed, &mut i).unwrap();
        assert!(back.equal(&d));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use s1lisp_trace::rng::SplitMix64;

    /// Symbol alphabet matching the old generator's character classes.
    const SYM_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz+*/<>=-";
    const SYM_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789+*/<>=$&%.-";

    fn symbol_text(rng: &mut SplitMix64) -> String {
        loop {
            let mut s = String::new();
            s.push(*rng.pick(SYM_FIRST) as char);
            for _ in 0..rng.range_usize(0, 9) {
                s.push(*rng.pick(SYM_REST) as char);
            }
            if s != "." && i64::from_str(&s).is_err() && f64::from_str(&s).is_err() {
                return s;
            }
        }
    }

    fn datum_text(rng: &mut SplitMix64, depth: u32) -> String {
        if depth > 0 && rng.below(2) == 0 {
            match rng.below(2) {
                0 => {
                    let n = rng.range_usize(0, 5);
                    let items: Vec<String> = (0..n).map(|_| datum_text(rng, depth - 1)).collect();
                    format!("({})", items.join(" "))
                }
                _ => format!("'{}", datum_text(rng, depth - 1)),
            }
        } else {
            match rng.below(4) {
                0 => (rng.next_u64() as i64).to_string(),
                1 => crate::print::format_flonum(rng.wide_f64()),
                2 => symbol_text(rng),
                _ => "()".to_string(),
            }
        }
    }

    /// print ∘ read ∘ print ∘ read is stable, and the two reads are
    /// `equal`.
    #[test]
    fn read_print_fixpoint() {
        let mut rng = SplitMix64::new(0x5115_0002);
        for _case in 0..256 {
            let src = datum_text(&mut rng, 3);
            let mut i = Interner::new();
            let d1 = read_str(&src, &mut i).unwrap();
            let p1 = d1.to_string();
            let d2 = read_str(&p1, &mut i).unwrap();
            assert!(d2.equal(&d1), "{src} → {p1}");
            assert_eq!(d2.to_string(), p1);
        }
    }

    /// The pretty printer at any width re-reads to an equal datum.
    #[test]
    fn pretty_reparses() {
        let mut rng = SplitMix64::new(0x5115_0003);
        for _case in 0..256 {
            let src = datum_text(&mut rng, 3);
            let width = rng.range_usize(8, 100);
            let mut i = Interner::new();
            let d1 = read_str(&src, &mut i).unwrap();
            let pretty = crate::print::pretty(&d1, width);
            let d2 = read_str(&pretty, &mut i).unwrap();
            assert!(d2.equal(&d1), "{src} → {pretty}");
        }
    }

    /// Flonum formatting round-trips exactly through the reader.
    #[test]
    fn flonum_text_round_trips() {
        let mut rng = SplitMix64::new(0x5115_0004);
        for _case in 0..4096 {
            let x = rng.wide_f64();
            let text = crate::print::format_flonum(x);
            let mut i = Interner::new();
            let d = read_str(&text, &mut i).unwrap();
            assert_eq!(d.as_flonum(), Some(x), "{text}");
        }
    }
}
