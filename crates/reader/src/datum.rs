//! The [`Datum`] type: Lisp source data.
//!
//! Every value in the dialect is conceptually a pointer to an object
//! (§2 of the paper: "every user-visible LISP data type is an access
//! type").  `Datum` models exactly that: cloning a datum copies a
//! reference, never the object, and `rplaca`-style mutation through one
//! copy is visible through all.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::interner::Symbol;

/// A cons cell with mutable car and cdr (for `rplaca`/`rplacd`).
#[derive(Debug)]
pub struct Cons {
    car: RefCell<Datum>,
    cdr: RefCell<Datum>,
}

impl Cons {
    /// Reads the car.
    pub fn car(&self) -> Datum {
        self.car.borrow().clone()
    }

    /// Reads the cdr.
    pub fn cdr(&self) -> Datum {
        self.cdr.borrow().clone()
    }

    /// Replaces the car (`rplaca`).
    pub fn set_car(&self, value: Datum) {
        *self.car.borrow_mut() = value;
    }

    /// Replaces the cdr (`rplacd`).
    pub fn set_cdr(&self, value: Datum) {
        *self.cdr.borrow_mut() = value;
    }
}

/// A Lisp datum: the external (source) representation of programs and data.
///
/// # Examples
///
/// ```
/// use s1lisp_reader::{Datum, Interner};
///
/// let mut i = Interner::new();
/// let d = Datum::list([
///     Datum::Sym(i.intern("+")),
///     Datum::Fixnum(1),
///     Datum::Flonum(2.5),
/// ]);
/// assert_eq!(d.to_string(), "(+ 1 2.5)");
/// assert_eq!(d.list_len(), Some(3));
/// ```
#[derive(Clone, Debug, Default)]
pub enum Datum {
    /// The empty list, which is also false.
    #[default]
    Nil,
    /// A machine integer (the dialect's fixnum; bignums are out of scope).
    Fixnum(i64),
    /// A floating-point number.
    Flonum(f64),
    /// An interned symbol.
    Sym(Symbol),
    /// An immutable string.
    Str(Rc<str>),
    /// A character object.
    Char(char),
    /// A pair.
    Cons(Rc<Cons>),
}

impl Datum {
    /// Constructs a fresh cons of `car` and `cdr`.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        Datum::Cons(Rc::new(Cons {
            car: RefCell::new(car),
            cdr: RefCell::new(cdr),
        }))
    }

    /// Constructs a proper list from the items.
    pub fn list<I: IntoIterator<Item = Datum>>(items: I) -> Datum {
        let items: Vec<Datum> = items.into_iter().collect();
        let mut out = Datum::Nil;
        for item in items.into_iter().rev() {
            out = Datum::cons(item, out);
        }
        out
    }

    /// Constructs a string datum.
    pub fn string(s: &str) -> Datum {
        Datum::Str(Rc::from(s))
    }

    /// Whether this is the empty list (Lisp false).
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::Nil)
    }

    /// Whether this datum is a cons cell.
    pub fn is_cons(&self) -> bool {
        matches!(self, Datum::Cons(_))
    }

    /// Whether this datum is an atom (anything but a cons).
    pub fn is_atom(&self) -> bool {
        !self.is_cons()
    }

    /// Whether this datum is a number (fixnum or flonum).
    pub fn is_number(&self) -> bool {
        matches!(self, Datum::Fixnum(_) | Datum::Flonum(_))
    }

    /// Whether this datum is "self-evaluating" in the dialect: numbers,
    /// strings, and characters evaluate to themselves.
    pub fn is_self_evaluating(&self) -> bool {
        matches!(
            self,
            Datum::Fixnum(_) | Datum::Flonum(_) | Datum::Str(_) | Datum::Char(_)
        )
    }

    /// The symbol, if this is a symbol.
    pub fn as_symbol(&self) -> Option<&Symbol> {
        match self {
            Datum::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The fixnum value, if this is a fixnum.
    pub fn as_fixnum(&self) -> Option<i64> {
        match self {
            Datum::Fixnum(n) => Some(*n),
            _ => None,
        }
    }

    /// The flonum value, if this is a flonum.
    pub fn as_flonum(&self) -> Option<f64> {
        match self {
            Datum::Flonum(x) => Some(*x),
            _ => None,
        }
    }

    /// The cons cell, if this is a cons.
    pub fn as_cons(&self) -> Option<&Rc<Cons>> {
        match self {
            Datum::Cons(c) => Some(c),
            _ => None,
        }
    }

    /// The car of a cons, or `None` for non-conses.
    pub fn car(&self) -> Option<Datum> {
        self.as_cons().map(|c| c.car())
    }

    /// The cdr of a cons, or `None` for non-conses.
    pub fn cdr(&self) -> Option<Datum> {
        self.as_cons().map(|c| c.cdr())
    }

    /// Iterates over the elements of a (possibly improper) list; iteration
    /// stops at the first non-cons tail, which is *not* yielded.
    pub fn iter(&self) -> ListIter {
        ListIter {
            current: self.clone(),
        }
    }

    /// Collects a **proper** list into a vector, or `None` if the datum is
    /// not nil-terminated.
    pub fn proper_list(&self) -> Option<Vec<Datum>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Datum::Nil => return Some(out),
                Datum::Cons(c) => {
                    out.push(c.car());
                    cur = c.cdr();
                }
                _ => return None,
            }
        }
    }

    /// Length of a proper list, or `None` if improper or not a list.
    pub fn list_len(&self) -> Option<usize> {
        let mut n = 0;
        let mut cur = self.clone();
        loop {
            match cur {
                Datum::Nil => return Some(n),
                Datum::Cons(c) => {
                    n += 1;
                    cur = c.cdr();
                }
                _ => return None,
            }
        }
    }

    /// Object identity (`eq`): pointer equality for conses, strings and
    /// symbols; value equality for fixnums, characters and nil.  Per the
    /// paper, `eq` is *not* guaranteed meaningful on flonums (it compares
    /// representation identity, which the compiler is free to change), so
    /// flonums here are `eq` only when they are the same bits.
    ///
    /// (Named for the Lisp predicate; this is not `PartialEq::eq`, which
    /// `Datum` deliberately does not implement — callers must choose
    /// `eq`/`eql`/`equal`.)
    #[allow(clippy::should_implement_trait)]
    pub fn eq(&self, other: &Datum) -> bool {
        match (self, other) {
            (Datum::Nil, Datum::Nil) => true,
            (Datum::Fixnum(a), Datum::Fixnum(b)) => a == b,
            (Datum::Flonum(a), Datum::Flonum(b)) => a.to_bits() == b.to_bits(),
            (Datum::Sym(a), Datum::Sym(b)) => a == b,
            (Datum::Char(a), Datum::Char(b)) => a == b,
            (Datum::Str(a), Datum::Str(b)) => Rc::ptr_eq(a, b),
            (Datum::Cons(a), Datum::Cons(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `eql`: like [`Datum::eq`] but guaranteed to compare numbers by
    /// value and type (the paper's "object identity predicate for all
    /// objects").
    pub fn eql(&self, other: &Datum) -> bool {
        match (self, other) {
            (Datum::Flonum(a), Datum::Flonum(b)) => a == b,
            _ => self.eq(other),
        }
    }

    /// Structural equality (`equal`): recursive on conses, contents on
    /// strings, `eql` on atoms.
    pub fn equal(&self, other: &Datum) -> bool {
        match (self, other) {
            (Datum::Cons(a), Datum::Cons(b)) => {
                Rc::ptr_eq(a, b) || (a.car().equal(&b.car()) && a.cdr().equal(&b.cdr()))
            }
            (Datum::Str(a), Datum::Str(b)) => a == b,
            _ => self.eql(other),
        }
    }

    /// Lisp truth: everything except nil is true.
    pub fn is_true(&self) -> bool {
        !self.is_nil()
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Datum {
        Datum::Fixnum(n)
    }
}

impl From<f64> for Datum {
    fn from(x: f64) -> Datum {
        Datum::Flonum(x)
    }
}

impl From<Symbol> for Datum {
    fn from(s: Symbol) -> Datum {
        Datum::Sym(s)
    }
}

impl FromIterator<Datum> for Datum {
    fn from_iter<T: IntoIterator<Item = Datum>>(iter: T) -> Datum {
        Datum::list(iter)
    }
}

/// Iterator over the elements of a list datum.  See [`Datum::iter`].
#[derive(Debug, Clone)]
pub struct ListIter {
    current: Datum,
}

impl Iterator for ListIter {
    type Item = Datum;

    fn next(&mut self) -> Option<Datum> {
        match std::mem::take(&mut self.current) {
            Datum::Cons(c) => {
                self.current = c.cdr();
                Some(c.car())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::write_datum(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interner;

    fn sym(i: &mut Interner, s: &str) -> Datum {
        Datum::Sym(i.intern(s))
    }

    #[test]
    fn list_construction_and_iteration() {
        let d = Datum::list([Datum::Fixnum(1), Datum::Fixnum(2), Datum::Fixnum(3)]);
        let v: Vec<i64> = d.iter().map(|x| x.as_fixnum().unwrap()).collect();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(d.list_len(), Some(3));
    }

    #[test]
    fn improper_list_detected() {
        let d = Datum::cons(Datum::Fixnum(1), Datum::Fixnum(2));
        assert!(d.proper_list().is_none());
        assert_eq!(d.list_len(), None);
        // iteration yields only the car
        assert_eq!(d.iter().count(), 1);
    }

    #[test]
    fn rplaca_is_visible_through_shared_structure() {
        let cell = Datum::cons(Datum::Fixnum(1), Datum::Nil);
        let alias = cell.clone();
        cell.as_cons().unwrap().set_car(Datum::Fixnum(99));
        assert_eq!(alias.car().unwrap().as_fixnum(), Some(99));
    }

    #[test]
    fn eq_vs_eql_vs_equal() {
        let mut i = Interner::new();
        let a = Datum::list([sym(&mut i, "a")]);
        let b = Datum::list([sym(&mut i, "a")]);
        assert!(!a.eq(&b));
        assert!(a.eq(&a));
        assert!(a.equal(&b));
        assert!(Datum::Flonum(1.5).eql(&Datum::Flonum(1.5)));
        // Fixnum and flonum of same value are not eql (type matters).
        assert!(!Datum::Fixnum(1).eql(&Datum::Flonum(1.0)));
    }

    #[test]
    fn truthiness() {
        assert!(!Datum::Nil.is_true());
        assert!(Datum::Fixnum(0).is_true());
        let mut i = Interner::new();
        assert!(sym(&mut i, "t").is_true());
    }

    #[test]
    fn proper_list_round_trip() {
        let items = vec![Datum::Fixnum(1), Datum::string("two"), Datum::Flonum(3.0)];
        let d = Datum::list(items.clone());
        let back = d.proper_list().unwrap();
        assert_eq!(back.len(), 3);
        assert!(back[1].equal(&items[1]));
    }
}
