//! Conversion errors.

use std::fmt;

/// An error produced while converting source to the internal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError {
    /// What went wrong.
    pub message: String,
    /// Printed form of the offending expression.
    pub form: String,
}

impl ConvertError {
    pub(crate) fn new(message: impl Into<String>, form: &s1lisp_reader::Datum) -> ConvertError {
        ConvertError {
            message: message.into(),
            form: form.to_string(),
        }
    }
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}", self.message, self.form)
    }
}

impl std::error::Error for ConvertError {}
