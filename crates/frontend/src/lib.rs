//! Preliminary conversion: source programs → internal tree.
//!
//! §4.1 of the paper ("Preliminary"): syntax checking, resolving of
//! variable references, expansion of macro calls, very simple program
//! transformations, conversion to internal tree form.
//!
//! "All other program constructs are expanded as macros or otherwise
//! re-expressed in terms of the small basic set": `let` becomes a call to
//! a manifest lambda-expression, `cond` becomes nested `if`s, `and`/`or`
//! become `if`s with lambda-bound temporaries, `prog` becomes a `let`
//! containing a `progbody`, and so on.
//!
//! Variables are resolved during conversion: every binding occurrence
//! creates a fresh [`Var`](s1lisp_ast::Var), and variables are uniformly
//! renamed on spelling collision ("all variables … have effectively been
//! uniformly renamed to prevent scoping problems", §5), so the later
//! substitution rules need no capture checks.  Special (dynamically
//! scoped) variables are exempt from renaming — their spelling *is* their
//! identity at run time.
//!
//! # Examples
//!
//! ```
//! use s1lisp_frontend::Frontend;
//! use s1lisp_reader::{read_str, Interner};
//! use s1lisp_ast::unparse;
//!
//! let mut interner = Interner::new();
//! let src = read_str("(defun f (x) (let ((y (* x x))) (+ y 1)))", &mut interner).unwrap();
//! let mut fe = Frontend::new(&mut interner);
//! let func = fe.convert_defun(&src).unwrap();
//! let back = unparse(&func.tree, func.tree.root);
//! assert_eq!(back.to_string(), "(lambda (x) ((lambda (y) (+ y '1)) (* x x)))");
//! ```

#![warn(missing_docs)]

mod convert;
mod error;
mod macros;

pub use convert::{Frontend, Function};
pub use error::ConvertError;
