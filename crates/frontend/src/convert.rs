//! Conversion from source data to the internal tree.

use std::collections::{HashMap, HashSet};

use s1lisp_ast::{CaseqClause, Lambda, NodeId, NodeKind, OptParam, ProgItem, Tree, VarId};
use s1lisp_reader::{Datum, Interner, Symbol};

use crate::error::ConvertError;
use crate::macros;

/// A converted top-level function: a name and a tree whose root is a
/// `lambda` node.
#[derive(Clone, Debug)]
pub struct Function {
    /// The `defun` name.
    pub name: Symbol,
    /// The internal tree; [`Tree::root`] is the function's lambda.
    pub tree: Tree,
}

/// The conversion front end: expands macros, resolves variables, and
/// builds internal trees.
///
/// One `Frontend` holds per-compilation-unit state: the symbol interner
/// and the set of proclaimed special (dynamically scoped) variables.
#[derive(Debug)]
pub struct Frontend<'a> {
    /// The symbol interner for this compilation unit.
    pub interner: &'a mut Interner,
    specials: HashSet<Symbol>,
    /// Constant initial values from `(defvar name init)` forms, in
    /// order of appearance.
    pub defvar_inits: Vec<(Symbol, Datum)>,
}

impl<'a> Frontend<'a> {
    /// Creates a front end over the given interner.
    pub fn new(interner: &'a mut Interner) -> Frontend<'a> {
        Frontend {
            interner,
            specials: HashSet::new(),
            defvar_inits: Vec::new(),
        }
    }

    /// Proclaims `name` special (dynamically scoped) for subsequent
    /// conversions.
    pub fn proclaim_special(&mut self, name: Symbol) {
        self.specials.insert(name);
    }

    /// Whether `name` is proclaimed special, either explicitly or by the
    /// `*earmuffs*` convention.
    pub fn is_proclaimed_special(&self, name: &Symbol) -> bool {
        if self.specials.contains(name) {
            return true;
        }
        let s = name.as_str();
        s.len() >= 3 && s.starts_with('*') && s.ends_with('*')
    }

    /// Converts a `(defun name params body…)` form.
    ///
    /// # Errors
    ///
    /// Returns a [`ConvertError`] on malformed source.
    pub fn convert_defun(&mut self, form: &Datum) -> Result<Function, ConvertError> {
        let items = form
            .proper_list()
            .ok_or_else(|| ConvertError::new("malformed defun", form))?;
        let [head, name, params, body @ ..] = items.as_slice() else {
            return Err(ConvertError::new("defun needs name, params, body", form));
        };
        if head.as_symbol().map(|s| s.as_str()) != Some("defun") {
            return Err(ConvertError::new("not a defun", form));
        }
        let name = name
            .as_symbol()
            .ok_or_else(|| ConvertError::new("defun name must be a symbol", form))?
            .clone();
        let mut cx = Cx::new(self);
        let lambda = cx.convert_lambda(params, body)?;
        let mut tree = cx.tree;
        tree.root = lambda;
        tree.rebuild_backlinks();
        Ok(Function { name, tree })
    }

    /// Converts a bare expression into a nullary function named `name`
    /// (convenient for REPL-style evaluation and tests).
    ///
    /// # Errors
    ///
    /// Returns a [`ConvertError`] on malformed source.
    pub fn convert_expr(&mut self, name: &str, expr: &Datum) -> Result<Function, ConvertError> {
        let name = self.interner.intern(name);
        let mut cx = Cx::new(self);
        let body = cx.convert(expr)?;
        let mut tree = cx.tree;
        let lambda = tree.lambda(Vec::new(), body);
        tree.root = lambda;
        tree.rebuild_backlinks();
        Ok(Function { name, tree })
    }

    /// Converts a sequence of top-level forms: `defun`s become functions;
    /// `(proclaim '(special …))` and `(defvar name [init])` register
    /// special variables.
    ///
    /// # Errors
    ///
    /// Returns a [`ConvertError`] on malformed source or unsupported
    /// top-level forms.
    pub fn convert_toplevel(&mut self, forms: &[Datum]) -> Result<Vec<Function>, ConvertError> {
        let mut out = Vec::new();
        for form in forms {
            let head = form.car().and_then(|h| h.as_symbol().cloned());
            match head.as_ref().map(|s| s.as_str()) {
                Some("defun") => out.push(self.convert_defun(form)?),
                Some("defvar") => {
                    let rest = form.cdr().unwrap_or(Datum::Nil);
                    let name = rest
                        .car()
                        .and_then(|d| d.as_symbol().cloned())
                        .ok_or_else(|| ConvertError::new("malformed defvar", form))?;
                    self.proclaim_special(name.clone());
                    // Constant initializers are recorded; the dialect has
                    // no load-time evaluation, so anything else is an
                    // error rather than a silent drop.
                    if let Some(init) = rest.cdr().and_then(|d| d.car()) {
                        let constant = match &init {
                            d if d.is_self_evaluating() || d.is_nil() => Some(init.clone()),
                            Datum::Cons(c)
                                if c.car()
                                    .as_symbol()
                                    .map(|s| s.as_str() == "quote")
                                    .unwrap_or(false) =>
                            {
                                c.cdr().car()
                            }
                            Datum::Sym(s) if s.as_str() == "t" => Some(init.clone()),
                            _ => None,
                        };
                        match constant {
                            Some(v) => self.defvar_inits.push((name, v)),
                            None => {
                                return Err(ConvertError::new(
                                    "defvar initializer must be a constant",
                                    form,
                                ))
                            }
                        }
                    }
                }
                Some("proclaim") => {
                    // (proclaim '(special a b c))
                    let spec = form
                        .cdr()
                        .and_then(|d| d.car())
                        .and_then(|d| d.cdr()?.car()) // strip quote
                        .ok_or_else(|| ConvertError::new("malformed proclaim", form))?;
                    let items = spec
                        .proper_list()
                        .ok_or_else(|| ConvertError::new("malformed proclaim", form))?;
                    if items
                        .first()
                        .and_then(|h| h.as_symbol().map(|s| s.as_str()))
                        == Some("special")
                    {
                        for s in &items[1..] {
                            if let Some(sym) = s.as_symbol() {
                                self.proclaim_special(sym.clone());
                            }
                        }
                    }
                }
                _ => {
                    return Err(ConvertError::new(
                        "unsupported top-level form (want defun/defvar/proclaim)",
                        form,
                    ))
                }
            }
        }
        Ok(out)
    }
}

/// Per-function conversion context.
struct Cx<'f, 'a> {
    fe: &'f mut Frontend<'a>,
    tree: Tree,
    /// Lexical scope stack: original symbol → variable.
    scopes: Vec<HashMap<Symbol, VarId>>,
    /// Spellings already used in this function, for uniform renaming.
    used_names: HashSet<String>,
    /// Free (global special) variables seen so far, one `Var` each.
    global_specials: HashMap<Symbol, VarId>,
    /// Special declarations active for the binding forms being processed.
    pending_specials: Vec<HashSet<Symbol>>,
}

impl<'f, 'a> Cx<'f, 'a> {
    fn new(fe: &'f mut Frontend<'a>) -> Cx<'f, 'a> {
        Cx {
            fe,
            tree: Tree::new(),
            scopes: Vec::new(),
            used_names: HashSet::new(),
            global_specials: HashMap::new(),
            pending_specials: Vec::new(),
        }
    }

    fn err(&self, msg: &str, form: &Datum) -> ConvertError {
        ConvertError::new(msg, form)
    }

    fn lookup(&self, name: &Symbol) -> Option<VarId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    /// The variable for a free reference: a global special.
    fn global_special(&mut self, name: &Symbol) -> VarId {
        if let Some(&v) = self.global_specials.get(name) {
            return v;
        }
        let v = self.tree.add_var(name.clone());
        self.tree.var_mut(v).special = true;
        self.global_specials.insert(name.clone(), v);
        v
    }

    /// Creates and scopes a bound variable, renaming lexicals on spelling
    /// collision.  Specials keep their spelling (it is their run-time
    /// identity).
    fn bind_var(&mut self, name: &Symbol, special: bool) -> VarId {
        let spelled = if special {
            name.clone()
        } else if self.used_names.contains(name.as_str()) {
            self.fe.interner.gensym(name.as_str())
        } else {
            name.clone()
        };
        self.used_names.insert(spelled.as_str().to_string());
        let v = self.tree.add_var(spelled);
        self.tree.var_mut(v).special = special;
        self.scopes
            .last_mut()
            .expect("bind_var requires an open scope")
            .insert(name.clone(), v);
        v
    }

    fn is_special_binding(&self, name: &Symbol) -> bool {
        self.fe.is_proclaimed_special(name)
            || self
                .pending_specials
                .last()
                .map(|s| s.contains(name))
                .unwrap_or(false)
    }

    /// Main conversion dispatch.
    fn convert(&mut self, form: &Datum) -> Result<NodeId, ConvertError> {
        match form {
            Datum::Nil => Ok(self.tree.constant(Datum::Nil)),
            d if d.is_self_evaluating() => Ok(self.tree.constant(d.clone())),
            Datum::Sym(s) => self.convert_symbol(s),
            Datum::Cons(_) => self.convert_form(form),
            _ => Err(self.err("cannot convert datum", form)),
        }
    }

    fn convert_symbol(&mut self, s: &Symbol) -> Result<NodeId, ConvertError> {
        if s.as_str() == "t" {
            return Ok(self.tree.constant(Datum::Sym(s.clone())));
        }
        if let Some(v) = self.lookup(s) {
            return Ok(self.tree.var_ref(v));
        }
        let v = self.global_special(s);
        Ok(self.tree.var_ref(v))
    }

    fn convert_form(&mut self, form: &Datum) -> Result<NodeId, ConvertError> {
        let head = form.car().expect("cons");
        let args: Vec<Datum> = form.cdr().map(|d| d.iter().collect()).unwrap_or_default();
        if let Some(head_sym) = head.as_symbol() {
            match head_sym.as_str() {
                "quote" => {
                    let [x] = args.as_slice() else {
                        return Err(self.err("quote needs one argument", form));
                    };
                    return Ok(self.tree.constant(x.clone()));
                }
                "function" => return self.convert_function(&args, form),
                "lambda" => {
                    let [params, body @ ..] = args.as_slice() else {
                        return Err(self.err("lambda needs a parameter list", form));
                    };
                    return self.convert_lambda(params, body);
                }
                "if" => return self.convert_if(&args, form),
                "progn" => return self.convert_progn(&args),
                "setq" => return self.convert_setq(&args, form),
                "caseq" => return self.convert_caseq(&args, form),
                "catch" => {
                    let [tag, body @ ..] = args.as_slice() else {
                        return Err(self.err("catch needs a tag", form));
                    };
                    let tag = self.convert(tag)?;
                    let body = self.convert_progn(body)?;
                    return Ok(self.tree.add(NodeKind::Catcher { tag, body }));
                }
                "progbody" => return self.convert_progbody(&args, form),
                "go" => {
                    let [tag] = args.as_slice() else {
                        return Err(self.err("go needs one tag", form));
                    };
                    let tag = tag
                        .as_symbol()
                        .ok_or_else(|| self.err("go tag must be a symbol", form))?;
                    return Ok(self.tree.add(NodeKind::Go(tag.clone())));
                }
                "return" => {
                    let value = match args.as_slice() {
                        [] => self.tree.constant(Datum::Nil),
                        [v] => self.convert(v)?,
                        _ => return Err(self.err("return takes at most one value", form)),
                    };
                    return Ok(self.tree.add(NodeKind::Return(value)));
                }
                "funcall" => {
                    let [f, rest @ ..] = args.as_slice() else {
                        return Err(self.err("funcall needs a function", form));
                    };
                    let f = self.convert(f)?;
                    let rest = self.convert_all(rest)?;
                    return Ok(self.tree.call_expr(f, rest));
                }
                "declare" => {
                    return Err(self.err("declare is only allowed at the head of a body", form))
                }
                _ if macros::is_macro(head_sym) => {
                    let expanded = macros::expand(head_sym, form, self.fe.interner)?;
                    return self.convert(&expanded);
                }
                _ => {
                    // A call.  A lexically bound name in function position
                    // refers to the variable's value (the paper's
                    // transformations rely on calling lambda-bound
                    // function variables like (f1)).
                    let argv = self.convert_all(&args)?;
                    if let Some(v) = self.lookup(head_sym) {
                        let f = self.tree.var_ref(v);
                        return Ok(self.tree.call_expr(f, argv));
                    }
                    return Ok(self.tree.call_global(head_sym.clone(), argv));
                }
            }
        }
        // Head is itself a form: ((lambda …) args…) or computed function.
        let f = self.convert(&head)?;
        let argv = self.convert_all(&args)?;
        Ok(self.tree.call_expr(f, argv))
    }

    fn convert_all(&mut self, forms: &[Datum]) -> Result<Vec<NodeId>, ConvertError> {
        forms.iter().map(|f| self.convert(f)).collect()
    }

    fn convert_function(&mut self, args: &[Datum], form: &Datum) -> Result<NodeId, ConvertError> {
        let [f] = args else {
            return Err(self.err("function needs one argument", form));
        };
        if let Some(s) = f.as_symbol() {
            if let Some(v) = self.lookup(s) {
                return Ok(self.tree.var_ref(v));
            }
            let fname = self.fe.interner.intern("%function");
            let c = self.tree.constant(Datum::Sym(s.clone()));
            return Ok(self.tree.call_global(fname, vec![c]));
        }
        // (function (lambda …))
        self.convert(f)
    }

    fn convert_if(&mut self, args: &[Datum], form: &Datum) -> Result<NodeId, ConvertError> {
        let (test, then, els) = match args {
            [t, c] => (
                self.convert(t)?,
                self.convert(c)?,
                self.tree.constant(Datum::Nil),
            ),
            [t, c, a] => (self.convert(t)?, self.convert(c)?, self.convert(a)?),
            _ => return Err(self.err("if needs 2 or 3 arguments", form)),
        };
        Ok(self.tree.if_(test, then, els))
    }

    fn convert_progn(&mut self, forms: &[Datum]) -> Result<NodeId, ConvertError> {
        match forms {
            [] => Ok(self.tree.constant(Datum::Nil)),
            [x] => self.convert(x),
            _ => {
                let body = self.convert_all(forms)?;
                Ok(self.tree.progn(body))
            }
        }
    }

    fn convert_setq(&mut self, args: &[Datum], form: &Datum) -> Result<NodeId, ConvertError> {
        if args.is_empty() || !args.len().is_multiple_of(2) {
            return Err(self.err("setq needs variable/value pairs", form));
        }
        let mut setqs = Vec::new();
        for pair in args.chunks(2) {
            let name = pair[0]
                .as_symbol()
                .ok_or_else(|| self.err("setq target must be a symbol", form))?;
            let var = match self.lookup(name) {
                Some(v) => v,
                None => self.global_special(name),
            };
            let value = self.convert(&pair[1])?;
            setqs.push(self.tree.add(NodeKind::Setq { var, value }));
        }
        if setqs.len() == 1 {
            Ok(setqs[0])
        } else {
            Ok(self.tree.progn(setqs))
        }
    }

    fn convert_caseq(&mut self, args: &[Datum], form: &Datum) -> Result<NodeId, ConvertError> {
        let [key, clause_forms @ ..] = args else {
            return Err(self.err("caseq needs a key", form));
        };
        let key = self.convert(key)?;
        let mut clauses = Vec::new();
        let mut default = None;
        for clause in clause_forms {
            let items = clause
                .proper_list()
                .ok_or_else(|| self.err("malformed caseq clause", form))?;
            let [keys, body @ ..] = items.as_slice() else {
                return Err(self.err("empty caseq clause", form));
            };
            let is_default = keys
                .as_symbol()
                .map(|s| matches!(s.as_str(), "t" | "otherwise"))
                .unwrap_or(false);
            if is_default {
                default = Some(self.convert_progn(body)?);
                continue;
            }
            let keys = match keys {
                Datum::Cons(_) => keys
                    .proper_list()
                    .ok_or_else(|| self.err("caseq keys must be a list", form))?,
                atom => vec![atom.clone()],
            };
            let body = self.convert_progn(body)?;
            clauses.push(CaseqClause { keys, body });
        }
        let default = match default {
            Some(d) => d,
            None => self.tree.constant(Datum::Nil),
        };
        Ok(self.tree.add(NodeKind::Caseq {
            key,
            clauses,
            default,
        }))
    }

    fn convert_progbody(&mut self, args: &[Datum], _form: &Datum) -> Result<NodeId, ConvertError> {
        let mut items = Vec::new();
        for item in args {
            match item {
                Datum::Sym(tag) => items.push(ProgItem::Tag(tag.clone())),
                Datum::Fixnum(_) => {
                    // Numeric go-tags are MACLISP folklore; not supported.
                    return Err(self.err("go tags must be symbols", item));
                }
                stmt => items.push(ProgItem::Stmt(self.convert(stmt)?)),
            }
        }
        Ok(self.tree.add(NodeKind::Progbody(items)))
    }

    /// Converts a lambda: parameter list (with `&optional`/`&rest`),
    /// body declarations, body.
    fn convert_lambda(&mut self, params: &Datum, body: &[Datum]) -> Result<NodeId, ConvertError> {
        let param_items = params
            .proper_list()
            .ok_or_else(|| self.err("parameter list must be a proper list", params))?;
        let (declares, body) = macros::split_declares(body);
        let (special_decls, type_decls) = parse_declares(&declares)?;
        self.pending_specials.push(special_decls);
        self.scopes.push(HashMap::new());

        let mut required = Vec::new();
        let mut optional = Vec::new();
        let mut rest = None;
        #[derive(PartialEq)]
        enum Mode {
            Required,
            Optional,
            Rest,
        }
        let mut mode = Mode::Required;
        for p in &param_items {
            if let Some(s) = p.as_symbol() {
                match s.as_str() {
                    "&optional" => {
                        mode = Mode::Optional;
                        continue;
                    }
                    "&rest" => {
                        mode = Mode::Rest;
                        continue;
                    }
                    _ => {}
                }
            }
            match mode {
                Mode::Required => {
                    let name = p
                        .as_symbol()
                        .ok_or_else(|| self.err("parameter must be a symbol", p))?;
                    let special = self.is_special_binding(name);
                    required.push(self.bind_var(name, special));
                }
                Mode::Optional => {
                    // name, or (name default); "a default-value expression
                    // may … refer to other parameters occurring earlier in
                    // the same formal parameter set" (§2), so it converts
                    // in the scope built so far.
                    let (name, default_form) = match p {
                        Datum::Sym(s) => (s.clone(), Datum::Nil),
                        _ => {
                            let items = p
                                .proper_list()
                                .ok_or_else(|| self.err("malformed optional parameter", p))?;
                            match items.as_slice() {
                                [n] => (
                                    n.as_symbol()
                                        .ok_or_else(|| self.err("parameter must be a symbol", p))?
                                        .clone(),
                                    Datum::Nil,
                                ),
                                [n, d] => (
                                    n.as_symbol()
                                        .ok_or_else(|| self.err("parameter must be a symbol", p))?
                                        .clone(),
                                    d.clone(),
                                ),
                                _ => return Err(self.err("malformed optional parameter", p)),
                            }
                        }
                    };
                    let default = if default_form.is_nil() {
                        self.tree.constant(Datum::Nil)
                    } else {
                        self.convert(&default_form)?
                    };
                    let special = self.is_special_binding(&name);
                    let var = self.bind_var(&name, special);
                    optional.push(OptParam { var, default });
                }
                Mode::Rest => {
                    if rest.is_some() {
                        return Err(self.err("only one &rest parameter allowed", p));
                    }
                    let name = p
                        .as_symbol()
                        .ok_or_else(|| self.err("parameter must be a symbol", p))?;
                    let special = self.is_special_binding(name);
                    rest = Some(self.bind_var(name, special));
                }
            }
        }

        // Apply type declarations to the parameters they name.
        for (name, ty) in &type_decls {
            if let Some(v) = self.lookup(name) {
                self.tree.var_mut(v).declared_type = Some(*ty);
            }
        }

        let body = self.convert_progn(&body)?;
        self.scopes.pop();
        self.pending_specials.pop();

        let lambda = Lambda {
            required: required.clone(),
            optional: optional.clone(),
            rest,
            body,
        };
        let id = self.tree.add(NodeKind::Lambda(lambda));
        for v in required
            .into_iter()
            .chain(optional.into_iter().map(|o| o.var))
            .chain(rest)
        {
            self.tree.var_mut(v).binder = Some(id);
        }
        Ok(id)
    }
}

/// Type declarations harvested from a body's `declare` forms.
type TypeDecls = Vec<(Symbol, s1lisp_ast::DeclaredType)>;

/// Parses `(declare (special a b) (fixnum n) (flonum x))` forms into the
/// special set and type declarations.
fn parse_declares(declares: &[Datum]) -> Result<(HashSet<Symbol>, TypeDecls), ConvertError> {
    let mut specials = HashSet::new();
    let mut types = Vec::new();
    for d in declares {
        for spec in d.iter().skip(1) {
            let items = spec
                .proper_list()
                .ok_or_else(|| ConvertError::new("malformed declaration", &spec))?;
            let Some((kind, names)) = items.split_first() else {
                continue;
            };
            let Some(kind) = kind.as_symbol() else {
                continue;
            };
            match kind.as_str() {
                "special" => {
                    for n in names {
                        if let Some(s) = n.as_symbol() {
                            specials.insert(s.clone());
                        }
                    }
                }
                "fixnum" => {
                    for n in names {
                        if let Some(s) = n.as_symbol() {
                            types.push((s.clone(), s1lisp_ast::DeclaredType::Fixnum));
                        }
                    }
                }
                "flonum" => {
                    for n in names {
                        if let Some(s) = n.as_symbol() {
                            types.push((s.clone(), s1lisp_ast::DeclaredType::Flonum));
                        }
                    }
                }
                _ => {} // unknown declarations are advice we ignore
            }
        }
    }
    Ok((specials, types))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_ast::unparse;
    use s1lisp_reader::read_str;

    fn convert(src: &str) -> String {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        unparse(&f.tree, f.tree.root).to_string()
    }

    #[test]
    fn quadratic_matches_papers_back_translation() {
        // §4.1's worked example: let → lambda call, cond → if nest,
        // constants explicitly quoted.
        let got = convert(
            "(defun quadratic (a b c)
               (let ((d (- (* b b) (* 4.0 a c))))
                 (cond ((< d 0) '())
                       ((= d 0) (list (/ (- b) (* 2.0 a))))
                       (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
                            (list (/ (+ (- b) sd) 2a)
                                  (/ (- (- b) sd) 2a)))))))",
        );
        let expected = "(lambda (a b c) \
            ((lambda (d) \
              (if (< d '0) '() \
               (if (= d '0) (list (/ (- b) (* '2.0 a))) \
                ((lambda (2a sd) \
                  (list (/ (+ (- b) sd) 2a) (/ (- (- b) sd) 2a))) \
                 (* '2.0 a) (sqrt d))))) \
             (- (* b b) (* '4.0 a c))))";
        assert_eq!(got, expected);
    }

    #[test]
    fn optional_parameters_with_defaults() {
        let got = convert("(defun testfn (a &optional (b 3.0) (c a)) (list a b c))");
        assert_eq!(got, "(lambda (a &optional (b '3.0) (c a)) (list a b c))");
    }

    #[test]
    fn variables_renamed_on_collision() {
        let got = convert("(defun f (x) (let ((x (+ x 1))) x))");
        // Inner x must be renamed so both variables stay distinct.
        assert!(got.contains("x%"), "{got}");
        assert!(got.starts_with("(lambda (x) ((lambda (x%"), "{got}");
    }

    #[test]
    fn lexical_function_variables_are_callable() {
        let got = convert("(defun f (g) (g 1))");
        assert_eq!(got, "(lambda (g) (g '1))");
    }

    #[test]
    fn free_variables_become_global_specials() {
        let mut i = Interner::new();
        let form = read_str("(defun f () counter)", &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let special = f
            .tree
            .var_ids()
            .find(|&v| f.tree.var(v).name.as_str() == "counter")
            .unwrap();
        assert!(f.tree.var(special).special);
        assert_eq!(f.tree.var(special).binder, None);
    }

    #[test]
    fn declare_special_binds_dynamically() {
        let mut i = Interner::new();
        let form = read_str("(defun f (x) (declare (special x)) (g) x)", &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let x = f
            .tree
            .var_ids()
            .find(|&v| f.tree.var(v).name.as_str() == "x")
            .unwrap();
        assert!(f.tree.var(x).special);
        assert!(f.tree.var(x).binder.is_some());
    }

    #[test]
    fn earmuffs_are_special() {
        let mut i = Interner::new();
        let form = read_str("(defun f (*print-base*) *print-base*)", &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let v = f
            .tree
            .var_ids()
            .find(|&v| f.tree.var(v).name.as_str() == "*print-base*")
            .unwrap();
        assert!(f.tree.var(v).special);
    }

    #[test]
    fn type_declarations_attach() {
        let mut i = Interner::new();
        let form = read_str(
            "(defun f (n x) (declare (fixnum n) (flonum x)) (+ n 1))",
            &mut i,
        )
        .unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let n = f
            .tree
            .var_ids()
            .find(|&v| f.tree.var(v).name.as_str() == "n")
            .unwrap();
        assert_eq!(
            f.tree.var(n).declared_type,
            Some(s1lisp_ast::DeclaredType::Fixnum)
        );
    }

    #[test]
    fn prog_go_return_convert() {
        let got = convert(
            "(defun f (n) (prog (acc) (setq acc 0)
               top (if (= n 0) (return acc))
                   (setq acc (+ acc n) n (- n 1))
                   (go top)))",
        );
        assert!(got.contains("(progbody"), "{got}");
        assert!(got.contains("(go top)"), "{got}");
        assert!(got.contains("(return acc)"), "{got}");
    }

    #[test]
    fn caseq_with_default() {
        let got = convert("(defun f (x) (caseq x ((1 2) 'small) (3 'three) (t 'big)))");
        assert_eq!(
            got,
            "(lambda (x) (caseq x ((1 2) 'small) ((3) 'three) (t 'big)))"
        );
    }

    #[test]
    fn catch_and_throw() {
        let got = convert("(defun f (x) (catch 'done (throw 'done x)))");
        assert_eq!(got, "(lambda (x) (catch 'done (throw 'done x)))");
    }

    #[test]
    fn setq_multi_pair() {
        let got = convert("(defun f (a b) (setq a 1 b 2))");
        assert_eq!(got, "(lambda (a b) (progn (setq a '1) (setq b '2)))");
    }

    #[test]
    fn exptl_converts() {
        // The paper's §2 example.
        let got = convert(
            "(defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
        );
        assert!(got.starts_with("(lambda (x n a) (if (zerop n) a"), "{got}");
    }

    #[test]
    fn toplevel_units() {
        let mut i = Interner::new();
        let forms = s1lisp_reader::read_all_str(
            "(proclaim '(special *depth*))
             (defvar *count*)
             (defun f () *depth*)
             (defun g () 1)",
            &mut i,
        )
        .unwrap();
        let mut fe = Frontend::new(&mut i);
        let fns = fe.convert_toplevel(&forms).unwrap();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name.as_str(), "f");
    }

    #[test]
    fn errors_are_reported() {
        let mut i = Interner::new();
        let mut fe = Frontend::new(&mut i);
        for bad in [
            "(defun)",
            "(defun f)",
            "(defun f (x . y) x)",
            "(defun f (x) (go 1 2))",
            "(defun f (x) (quote))",
            "(defun f (x) (setq x))",
            "(defun f ((a)) a)",
        ] {
            let form = read_str(bad, &mut fe.interner.clone()).unwrap_or(Datum::Nil);
            if form.is_nil() {
                continue;
            }
            // Re-read with the shared interner.
            let form = read_str(bad, fe.interner).unwrap();
            assert!(fe.convert_defun(&form).is_err(), "{bad}");
        }
    }

    #[test]
    fn funcall_converts_to_computed_call() {
        let got = convert("(defun f (g x) (funcall g x 1))");
        assert_eq!(got, "(lambda (g x) (g x '1))");
    }

    #[test]
    fn sharp_quote_of_global_is_function_lookup() {
        let got = convert("(defun f () #'car)");
        assert_eq!(got, "(lambda () (%function 'car))");
    }
}
