//! Source-to-source macro expanders for the derived constructs.
//!
//! Each expander rewrites one derived construct into more primitive
//! source, which the converter then processes recursively.  The
//! expansions follow §4.1 and §5 of the paper:
//!
//! * `let` → a call to a manifest lambda-expression,
//! * `cond` → nested `if`s,
//! * `or` → "`((lambda (v) (if v v <rest>)) <first>)` to avoid evaluating
//!   the first form twice",
//! * `prog` → "a `let` (which takes care of the variable bindings …)
//!   containing a `progbody` (which takes care of `go` and `return`)",
//! * `do`/`dotimes` → `prog` with a `psetq` step.

use s1lisp_reader::{Datum, Interner, Symbol};

use crate::error::ConvertError;

fn sym(i: &mut Interner, s: &str) -> Datum {
    Datum::Sym(i.intern(s))
}

fn err(msg: &str, form: &Datum) -> ConvertError {
    ConvertError::new(msg, form)
}

/// Is `form` a macro call this module knows how to expand?
pub(crate) fn is_macro(head: &Symbol) -> bool {
    matches!(
        head.as_str(),
        "let"
            | "let*"
            | "cond"
            | "and"
            | "or"
            | "when"
            | "unless"
            | "prog"
            | "do"
            | "do*"
            | "dotimes"
            | "psetq"
            | "case"
    )
}

/// Expands the macro call `form` one step.
pub(crate) fn expand(
    head: &Symbol,
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let args: Vec<Datum> = form.cdr().map(|d| d.iter().collect()).unwrap_or_default();
    match head.as_str() {
        "let" => expand_let(&args, form, interner),
        "let*" => expand_let_star(&args, form, interner),
        "cond" => expand_cond(&args, form, interner),
        "and" => Ok(expand_and(&args, interner)),
        "or" => Ok(expand_or(&args, interner)),
        "when" => expand_when(&args, form, interner, true),
        "unless" => expand_when(&args, form, interner, false),
        "prog" => expand_prog(&args, form, interner),
        "do" => expand_do(&args, form, interner, false),
        "do*" => expand_do(&args, form, interner, true),
        "dotimes" => expand_dotimes(&args, form, interner),
        "psetq" => expand_psetq(&args, form, interner),
        "case" => Ok(rehead(form, interner, "caseq")),
        _ => unreachable!("not a macro: {head}"),
    }
}

/// Replaces the head symbol of a form (e.g. `case` → `caseq`).
fn rehead(form: &Datum, interner: &mut Interner, new_head: &str) -> Datum {
    Datum::cons(sym(interner, new_head), form.cdr().unwrap_or(Datum::Nil))
}

/// One `let` binding: either `name` (init nil) or `(name init)`.
fn binding_parts(b: &Datum) -> Result<(Datum, Datum), ConvertError> {
    if b.as_symbol().is_some() {
        return Ok((b.clone(), Datum::Nil));
    }
    let items = b.proper_list().ok_or_else(|| err("malformed binding", b))?;
    match items.as_slice() {
        [name] => Ok((name.clone(), Datum::Nil)),
        [name, init] => Ok((name.clone(), init.clone())),
        _ => Err(err("binding must be (name init)", b)),
    }
}

/// Splits a body into leading `(declare …)` forms and the rest.
pub(crate) fn split_declares(body: &[Datum]) -> (Vec<Datum>, Vec<Datum>) {
    let mut declares = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let is_declare = body[i]
            .car()
            .and_then(|h| h.as_symbol().map(|s| s.as_str() == "declare"))
            .unwrap_or(false);
        if is_declare {
            declares.push(body[i].clone());
            i += 1;
        } else {
            break;
        }
    }
    (declares, body[i..].to_vec())
}

fn expand_let(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let [bindings, body @ ..] = args else {
        return Err(err("let needs bindings", form));
    };
    let bindings = bindings
        .proper_list()
        .ok_or_else(|| err("let bindings must be a list", form))?;
    let mut names = Vec::new();
    let mut inits = Vec::new();
    for b in &bindings {
        let (name, init) = binding_parts(b)?;
        names.push(name);
        inits.push(init);
    }
    // Declarations at the head of the let body belong to the lambda body.
    let mut lambda = vec![sym(interner, "lambda"), Datum::list(names)];
    lambda.extend(body.iter().cloned());
    let mut call = vec![Datum::list(lambda)];
    call.extend(inits);
    Ok(Datum::list(call))
}

fn expand_let_star(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let [bindings, body @ ..] = args else {
        return Err(err("let* needs bindings", form));
    };
    let bindings = bindings
        .proper_list()
        .ok_or_else(|| err("let* bindings must be a list", form))?;
    if bindings.is_empty() {
        let mut out = vec![sym(interner, "let"), Datum::Nil];
        out.extend(body.iter().cloned());
        return Ok(Datum::list(out));
    }
    let (first, rest) = bindings.split_first().unwrap();
    let mut inner = vec![sym(interner, "let*"), Datum::list(rest.iter().cloned())];
    inner.extend(body.iter().cloned());
    Ok(Datum::list([
        sym(interner, "let"),
        Datum::list([first.clone()]),
        Datum::list(inner),
    ]))
}

fn expand_cond(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let Some((clause, rest)) = args.split_first() else {
        return Ok(Datum::list([sym(interner, "quote"), Datum::Nil]));
    };
    let items = clause
        .proper_list()
        .ok_or_else(|| err("malformed cond clause", form))?;
    let Some((test, body)) = items.split_first() else {
        return Err(err("empty cond clause", form));
    };
    let mut rest_form = vec![sym(interner, "cond")];
    rest_form.extend(rest.iter().cloned());
    let rest_form = Datum::list(rest_form);
    // (cond (t body…) …) — the t clause is unconditional.
    if test.as_symbol().map(|s| s.as_str() == "t").unwrap_or(false) {
        if body.is_empty() {
            return Ok(Datum::list([sym(interner, "quote"), sym(interner, "t")]));
        }
        let mut pg = vec![sym(interner, "progn")];
        pg.extend(body.iter().cloned());
        return Ok(Datum::list(pg));
    }
    if body.is_empty() {
        // (cond (x) …) — value of the test if true, like `or`.
        let v = sym(interner, "or");
        return Ok(Datum::list([v, test.clone(), rest_form]));
    }
    let mut then = vec![sym(interner, "progn")];
    then.extend(body.iter().cloned());
    Ok(Datum::list([
        sym(interner, "if"),
        test.clone(),
        Datum::list(then),
        rest_form,
    ]))
}

fn expand_and(args: &[Datum], interner: &mut Interner) -> Datum {
    match args {
        [] => Datum::list([sym(interner, "quote"), sym(interner, "t")]),
        [x] => x.clone(),
        [x, rest @ ..] => {
            let mut tail = vec![sym(interner, "and")];
            tail.extend(rest.iter().cloned());
            Datum::list([
                sym(interner, "if"),
                x.clone(),
                Datum::list(tail),
                Datum::list([sym(interner, "quote"), Datum::Nil]),
            ])
        }
    }
}

fn expand_or(args: &[Datum], interner: &mut Interner) -> Datum {
    match args {
        [] => Datum::list([sym(interner, "quote"), Datum::Nil]),
        [x] => x.clone(),
        [x, rest @ ..] => {
            // ((lambda (v) (if v v <or rest…>)) x) — the paper's rendering,
            // "to avoid evaluating [x] twice".
            let v = Datum::Sym(interner.gensym("v"));
            let mut tail = vec![sym(interner, "or")];
            tail.extend(rest.iter().cloned());
            Datum::list([
                Datum::list([
                    sym(interner, "lambda"),
                    Datum::list([v.clone()]),
                    Datum::list([sym(interner, "if"), v.clone(), v, Datum::list(tail)]),
                ]),
                x.clone(),
            ])
        }
    }
}

fn expand_when(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
    positive: bool,
) -> Result<Datum, ConvertError> {
    let [test, body @ ..] = args else {
        return Err(err("when/unless needs a test", form));
    };
    let mut pg = vec![sym(interner, "progn")];
    pg.extend(body.iter().cloned());
    let body = if body.is_empty() {
        Datum::list([sym(interner, "quote"), Datum::Nil])
    } else {
        Datum::list(pg)
    };
    let nil = Datum::list([sym(interner, "quote"), Datum::Nil]);
    let (then, els) = if positive { (body, nil) } else { (nil, body) };
    Ok(Datum::list([sym(interner, "if"), test.clone(), then, els]))
}

fn expand_prog(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let [bindings, body @ ..] = args else {
        return Err(err("prog needs a binding list", form));
    };
    // (prog (vars…) tag-or-stmt…) → (let ((v nil)…) (progbody …))
    let bindings = bindings
        .proper_list()
        .ok_or_else(|| err("prog bindings must be a list", form))?;
    let mut lets = Vec::new();
    for b in &bindings {
        let (name, init) = binding_parts(b)?;
        lets.push(Datum::list([name, init]));
    }
    let mut pb = vec![sym(interner, "progbody")];
    pb.extend(body.iter().cloned());
    Ok(Datum::list([
        sym(interner, "let"),
        Datum::list(lets),
        Datum::list(pb),
    ]))
}

fn expand_psetq(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    if !args.len().is_multiple_of(2) {
        return Err(err("psetq needs variable/value pairs", form));
    }
    // (psetq a e1 b e2) → ((lambda (t1 t2) (setq a t1) (setq b t2)) e1 e2):
    // all value forms evaluate before any assignment.
    let mut temps = Vec::new();
    let mut setqs = Vec::new();
    let mut values = Vec::new();
    for pair in args.chunks(2) {
        let t = Datum::Sym(interner.gensym("p"));
        setqs.push(Datum::list([
            sym(interner, "setq"),
            pair[0].clone(),
            t.clone(),
        ]));
        temps.push(t);
        values.push(pair[1].clone());
    }
    if temps.is_empty() {
        return Ok(Datum::list([sym(interner, "quote"), Datum::Nil]));
    }
    let mut lambda = vec![sym(interner, "lambda"), Datum::list(temps)];
    lambda.extend(setqs);
    let mut call = vec![Datum::list(lambda)];
    call.extend(values);
    Ok(Datum::list(call))
}

fn expand_do(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
    sequential: bool,
) -> Result<Datum, ConvertError> {
    let [specs, end, body @ ..] = args else {
        return Err(err("do needs specs and an end clause", form));
    };
    let specs = specs
        .proper_list()
        .ok_or_else(|| err("do specs must be a list", form))?;
    let end = end
        .proper_list()
        .ok_or_else(|| err("do end clause must be a list", form))?;
    let Some((end_test, results)) = end.split_first() else {
        return Err(err("do end clause needs a test", form));
    };
    let mut bindings = Vec::new();
    let mut steps = Vec::new();
    for spec in &specs {
        let items = spec
            .proper_list()
            .ok_or_else(|| err("do spec must be (var init [step])", spec))?;
        match items.as_slice() {
            [name] => bindings.push(Datum::list([name.clone(), Datum::Nil])),
            [name, init] => bindings.push(Datum::list([name.clone(), init.clone()])),
            [name, init, step] => {
                bindings.push(Datum::list([name.clone(), init.clone()]));
                steps.push(name.clone());
                steps.push(step.clone());
            }
            _ => return Err(err("do spec must be (var init [step])", spec)),
        }
    }
    // (prog (bindings…)
    //   loop (if end-test (return (progn nil results…)))
    //        body… (psetq steps…) (go loop))
    let loop_tag = Datum::Sym(interner.gensym("loop"));
    let mut result = vec![
        sym(interner, "progn"),
        Datum::list([sym(interner, "quote"), Datum::Nil]),
    ];
    result.extend(results.iter().cloned());
    let exit = Datum::list([
        sym(interner, "if"),
        end_test.clone(),
        Datum::list([sym(interner, "return"), Datum::list(result)]),
    ]);
    let mut prog = vec![
        sym(interner, "prog"),
        Datum::list(bindings),
        loop_tag.clone(),
        exit,
    ];
    prog.extend(body.iter().cloned());
    if !steps.is_empty() {
        // `do` steps in parallel (psetq); `do*` steps sequentially (setq).
        let mut ps = vec![sym(interner, if sequential { "setq" } else { "psetq" })];
        ps.extend(steps);
        prog.push(Datum::list(ps));
    }
    prog.push(Datum::list([sym(interner, "go"), loop_tag]));
    Ok(Datum::list(prog))
}

fn expand_dotimes(
    args: &[Datum],
    form: &Datum,
    interner: &mut Interner,
) -> Result<Datum, ConvertError> {
    let [spec, body @ ..] = args else {
        return Err(err("dotimes needs (var count [result])", form));
    };
    let items = spec
        .proper_list()
        .ok_or_else(|| err("dotimes spec must be (var count [result])", form))?;
    let (var, count, result) = match items.as_slice() {
        [v, c] => (v.clone(), c.clone(), Datum::Nil),
        [v, c, r] => (v.clone(), c.clone(), r.clone()),
        _ => return Err(err("dotimes spec must be (var count [result])", form)),
    };
    let limit = Datum::Sym(interner.gensym("limit"));
    let step = Datum::list([sym(interner, "+"), var.clone(), Datum::Fixnum(1)]);
    let mut do_form = vec![
        sym(interner, "do"),
        Datum::list([
            Datum::list([limit.clone(), count]),
            Datum::list([var.clone(), Datum::Fixnum(0), step]),
        ]),
        Datum::list([Datum::list([sym(interner, ">="), var, limit]), result]),
    ];
    do_form.extend(body.iter().cloned());
    Ok(Datum::list(do_form))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::read_str;

    fn exp1(src: &str) -> String {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let head = form.car().unwrap().as_symbol().unwrap().clone();
        expand(&head, &form, &mut i).unwrap().to_string()
    }

    #[test]
    fn let_becomes_lambda_call() {
        assert_eq!(
            exp1("(let ((d (- b c)) (e 2)) (list d e))"),
            "((lambda (d e) (list d e)) (- b c) 2)"
        );
    }

    #[test]
    fn let_star_nests() {
        assert_eq!(
            exp1("(let* ((a 1) (b a)) b)"),
            "(let ((a 1)) (let* ((b a)) b))"
        );
    }

    #[test]
    fn cond_becomes_ifs() {
        assert_eq!(
            exp1("(cond ((< d 0) '()) (t x))"),
            "(if (< d 0) (progn '()) (cond (t x)))"
        );
        assert_eq!(exp1("(cond (t x))"), "(progn x)");
        assert_eq!(exp1("(cond)"), "'()");
    }

    #[test]
    fn and_or_shapes() {
        assert_eq!(exp1("(and a b)"), "(if a (and b) '())");
        let or2 = exp1("(or b c)");
        // ((lambda (v%N) (if v%N v%N (or c))) b)
        assert!(or2.starts_with("((lambda (v%"), "{or2}");
        assert!(or2.ends_with(" b)"), "{or2}");
        assert_eq!(exp1("(and)"), "'t");
        assert_eq!(exp1("(or)"), "'()");
    }

    #[test]
    fn when_unless() {
        assert_eq!(exp1("(when p a b)"), "(if p (progn a b) '())");
        assert_eq!(exp1("(unless p a)"), "(if p '() (progn a))");
    }

    #[test]
    fn prog_is_let_plus_progbody() {
        assert_eq!(
            exp1("(prog (x (y 1)) top (go top))"),
            "(let ((x ()) (y 1)) (progbody top (go top)))"
        );
    }

    #[test]
    fn psetq_binds_temps_before_assigning() {
        let s = exp1("(psetq a b b a)");
        assert!(s.contains("(setq a p%"), "{s}");
        assert!(s.contains("(setq b p%"), "{s}");
        // values are the trailing arguments
        assert!(s.ends_with(" b a)"), "{s}");
    }

    #[test]
    fn do_expands_to_prog_loop() {
        let s = exp1("(do ((i 0 (+ i 1))) ((= i n) acc) (setq acc (+ acc i)))");
        assert!(s.starts_with("(prog ((i 0)) loop%"), "{s}");
        assert!(s.contains("(if (= i n) (return (progn '() acc)))"), "{s}");
        assert!(s.contains("(psetq i (+ i 1))"), "{s}");
        assert!(s.contains("(go loop%"), "{s}");
    }

    #[test]
    fn dotimes_expands_to_do() {
        let s = exp1("(dotimes (i n) (f i))");
        assert!(s.starts_with("(do ((limit%"), "{s}");
        assert!(s.contains("(i 0 (+ i 1))"), "{s}");
        assert!(s.contains("(>= i limit%"), "{s}");
    }

    #[test]
    fn case_reheads_to_caseq() {
        assert_eq!(
            exp1("(case x ((1 2) 'a) (t 'b))"),
            "(caseq x ((1 2) 'a) (t 'b))"
        );
    }

    #[test]
    fn split_declares_takes_prefix() {
        let mut i = Interner::new();
        let body: Vec<Datum> = [
            "(declare (special x))",
            "(declare (fixnum n))",
            "(f x)",
            "(declare (ignored))",
        ]
        .iter()
        .map(|s| read_str(s, &mut i).unwrap())
        .collect();
        let (decls, rest) = split_declares(&body);
        assert_eq!(decls.len(), 2);
        assert_eq!(rest.len(), 2);
    }
}
