//! The bytecode backend against the reference interpreter: the
//! Gabriel-style kernels, the binding disciplines, and the non-local
//! control forms must all agree with `s1lisp-interp` exactly.

use s1lisp_annotate::Annotations;
use s1lisp_bytecode::{emit_unit, Evaluator, Module};
use s1lisp_frontend::Frontend;
use s1lisp_interp::{Interp, Value};
use s1lisp_reader::{read_all_str, Interner};

/// Compiles `src` for the bytecode evaluator and loads it into the
/// interpreter, propagating `defvar` initial values to both.
fn build(src: &str) -> (Evaluator, Interp) {
    let mut interner = Interner::new();
    let forms = read_all_str(src, &mut interner).expect("read");
    let mut fe = Frontend::new(&mut interner);
    let funcs = fe.convert_toplevel(&forms).expect("convert");
    let inits = std::mem::take(&mut fe.defvar_inits);
    let mut module = Module::new();
    let mut interp = Interp::new();
    for f in funcs {
        let ann = Annotations::compute(&f.tree);
        let protos = emit_unit(f.name.as_str(), &f.tree, &ann).expect("emit");
        module.define_unit(protos);
        interp.define(f);
    }
    let mut eval = Evaluator::new(module);
    for (name, init) in inits {
        let v = Value::from_datum(&init);
        eval.set_global(name.as_str(), v.clone());
        interp.set_global(name.as_str(), v);
    }
    (eval, interp)
}

/// Runs `entry(args)` on both engines and insists they agree: equal
/// values, or errors on both sides.
fn agree(src: &str, entry: &str, args: &[Value]) -> String {
    let (mut eval, interp) = build(src);
    let bc = eval.run(entry, args);
    let reference = interp.call(entry, args);
    match (&bc, &reference) {
        (Ok(b), Ok(r)) => {
            assert_eq!(
                b.to_string(),
                r.to_string(),
                "{entry}: bytecode {b} != interpreter {r}"
            );
            b.to_string()
        }
        (Err(_), Err(_)) => "trap".to_string(),
        (b, r) => panic!("{entry}: bytecode {b:?} vs interpreter {r:?}"),
    }
}

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

const EXPTL: &str = "(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
        (t (exptl (* x x) (floor (/ n 2)) a))))";

#[test]
fn exptl_squares() {
    assert_eq!(agree(EXPTL, "exptl", &[fx(2), fx(10), fx(1)]), "1024");
    agree(EXPTL, "exptl", &[fx(3), fx(7), fx(1)]);
}

#[test]
fn loopn_runs_in_constant_frames() {
    let src = "(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))";
    let (mut eval, _) = build(src);
    // Deep enough that a frame per iteration would be absurd; the tail
    // call must replace the frame, not stack one.
    let v = eval.run("loopn", &[fx(200_000)]).expect("loopn");
    assert_eq!(v.to_string(), "done");
}

#[test]
fn tak_agrees() {
    let src = "(defun tak (x y z)
      (if (not (< y x))
          z
          (tak (tak (- x 1) y z)
               (tak (- y 1) z x)
               (tak (- z 1) x y))))";
    assert_eq!(agree(src, "tak", &[fx(10), fx(6), fx(3)]), "4");
}

#[test]
fn horner_loop_agrees() {
    let src = "(defun horner (x c3 c2 c1 c0)
      (declare (flonum x c3 c2 c1 c0))
      (+$f (*$f (+$f (*$f (+$f (*$f c3 x) c2) x) c1) x) c0))
    (defun sum-horner (n)
      (declare (fixnum n))
      (prog (acc x)
        (setq acc 0.0 x 0.0)
        top
        (if (zerop n) (return acc))
        (setq acc (+$f acc (horner x 1.0 -2.0 3.0 -4.0)))
        (setq x (+$f x 0.001))
        (setq n (- n 1))
        (go top)))";
    agree(src, "sum-horner", &[fx(200)]);
}

#[test]
fn optional_defaults_see_earlier_parameters() {
    // §7's testfn: `b` defaults to a constant, `c` defaults to `a`.
    let src = "(defun frotz (a b c) '())
    (defun testfn (a &optional (b 3.0) (c a))
      (let ((d (+$f a b c)) (e (*$f a b c)))
        (let ((q (sin$f e)))
          (frotz d e (max$f d e))
          q)))";
    agree(src, "testfn", &[fl(2.0)]);
    agree(src, "testfn", &[fl(2.0), fl(4.0)]);
    agree(src, "testfn", &[fl(2.0), fl(4.0), fl(8.0)]);
}

#[test]
fn quadratic_agrees() {
    let src = "(defun quadratic (a b c)
      (let ((d (- (* b b) (* 4.0 a c))))
        (cond ((< d 0) '())
              ((= d 0) (list (/ (- b) (* 2.0 a))))
              (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
                   (list (/ (+ (- b) sd) two-a)
                         (/ (- (- b) sd) two-a)))))))";
    assert_eq!(
        agree(src, "quadratic", &[fl(1.0), fl(-3.0), fl(2.0)]),
        "(2.0 1.0)"
    );
    agree(src, "quadratic", &[fl(1.0), fl(2.0), fl(3.0)]);
}

#[test]
fn catch_throw_across_frames() {
    let src = "(defun thrower (x) (throw 'esc (* x 10)))
    (defun catcher (x) (catch 'esc (+ 1 (thrower x))))
    (defun no-throw (x) (catch 'esc (+ 1 x)))
    (defun uncaught (x) (thrower x))";
    assert_eq!(agree(src, "catcher", &[fx(4)]), "40");
    assert_eq!(agree(src, "no-throw", &[fx(4)]), "5");
    // No catcher armed: both engines must reject.
    assert_eq!(agree(src, "uncaught", &[fx(4)]), "trap");
}

#[test]
fn prog_go_return_and_specials() {
    let src = "(proclaim '(special *step*))
    (defun accumulate (n)
      (prog (acc)
        (setq acc 0)
        top
        (if (zerop n) (return acc))
        (setq acc (+ acc *step*))
        (setq n (- n 1))
        (go top)))";
    let (mut eval, interp) = build(src);
    eval.set_global("*step*", fx(3));
    interp.set_global("*step*", fx(3));
    let b = eval.run("accumulate", &[fx(7)]).expect("bytecode");
    let r = interp.call("accumulate", &[fx(7)]).expect("interp");
    assert_eq!(b.to_string(), r.to_string());
    assert_eq!(b.to_string(), "21");
}

#[test]
fn special_rebinding_is_dynamic() {
    // A special parameter deep-binds around the callee and unwinds on
    // return — the callee reads the binding, not the global.
    let src = "(proclaim '(special *s*))
    (defun reader () *s*)
    (defun shadow (*s*) (reader))
    (defun both () (list (shadow 5) (reader)))";
    let (mut eval, interp) = build(src);
    eval.set_global("*s*", fx(1));
    interp.set_global("*s*", fx(1));
    let b = eval.run("both", &[]).expect("bytecode");
    let r = interp.call("both", &[]).expect("interp");
    assert_eq!(b.to_string(), r.to_string());
    assert_eq!(b.to_string(), "(5 1)");
}

#[test]
fn closures_capture_and_escape() {
    let src = "(defun make-adder (n) (lambda (x) (+ x n)))
    (defun escape-test (n) (let ((f (make-adder n))) (funcall f 10)))";
    assert_eq!(agree(src, "escape-test", &[fx(5)]), "15");
}

#[test]
fn closures_share_mutable_state() {
    let src = "(defun make-counter ()
      (let ((n 0))
        (lambda () (setq n (+ n 1)) n)))
    (defun count-three ()
      (let ((c (make-counter)))
        (funcall c)
        (funcall c)
        (funcall c)))";
    assert_eq!(agree(src, "count-three", &[]), "3");
}

#[test]
fn fib_iter_do_macro() {
    let src = "(defun fib-iter (n)
      (do ((a 0 b) (b 1 (+ a b)) (i 0 (+ i 1)))
          ((= i n) a)))";
    assert_eq!(agree(src, "fib-iter", &[fx(20)]), "6765");
}

#[test]
fn caseq_dispatches_on_eql() {
    let src = "(defun classify (x)
      (caseq x ((1 2) 'small) (3 'three) (t 'big)))";
    assert_eq!(agree(src, "classify", &[fx(1)]), "small");
    assert_eq!(agree(src, "classify", &[fx(3)]), "three");
    assert_eq!(agree(src, "classify", &[fx(9)]), "big");
}

#[test]
fn rest_parameters_collect() {
    let src = "(defun grab (a &rest r) (list a r))";
    assert_eq!(agree(src, "grab", &[fx(1), fx(2), fx(3)]), "(1 (2 3))");
    assert_eq!(agree(src, "grab", &[fx(1)]), "(1 ())");
}

#[test]
fn apply_spreads_its_last_argument() {
    let src = "(defun add3 (a b c) (+ a b c))
    (defun call-apply (x) (apply #'add3 x (list 2 3)))";
    assert_eq!(agree(src, "call-apply", &[fx(1)]), "6");
}

#[test]
fn deriv_symbolic_workload() {
    let src = "(defun deriv (e x)
      (cond ((numberp e) 0)
            ((symbolp e) (if (eq e x) 1 0))
            ((eq (car e) '+) (list '+ (deriv (cadr e) x) (deriv (caddr e) x)))
            ((eq (car e) '*)
             (list '+ (list '* (cadr e) (deriv (caddr e) x))
                      (list '* (caddr e) (deriv (cadr e) x))))
            (t (error 'unknown))))
    (defun build-expr (n x)
      (if (zerop n) x (list '* x (list '+ (build-expr (- n 1) x) 1))))
    (defun deriv-bench (n x) (deriv (build-expr n x) x))";
    agree(src, "deriv-bench", &[fx(4), Value::from_datum(&sym("v"))]);
}

fn sym(name: &str) -> s1lisp_reader::Datum {
    let mut i = Interner::new();
    s1lisp_reader::Datum::Sym(i.intern(name))
}

#[test]
fn fuel_exhaustion_traps() {
    let src = "(defun spin (n) (spin (+ n 1)))";
    let (mut eval, _) = build(src);
    eval.fuel_per_run = 10_000;
    let err = eval.run("spin", &[fx(0)]).unwrap_err();
    assert!(err.message.contains("fuel"), "{err}");
    assert!(eval.last_run_insns <= 10_000);
}

#[test]
fn arity_errors_trap_on_both_engines() {
    let src = "(defun two (a b) (+ a b))";
    assert_eq!(agree(src, "two", &[fx(1)]), "trap");
    assert_eq!(agree(src, "two", &[fx(1), fx(2), fx(3)]), "trap");
}

#[test]
fn listing_reflects_fused_arithmetic() {
    // `tak` is all fixnum compares and decrements; representation
    // analysis lowers them, so the listing must show fused opcodes
    // rather than generic calls.
    let src = "(defun dec (x) (declare (fixnum x)) (- x 1))";
    let (eval, _) = build(src);
    let listing = eval.module().listing("dec").expect("listing");
    assert!(listing.contains("(sub"), "expected fused `-`:\n{listing}");
}

#[test]
fn gc_stress_allocation_churn() {
    // `build-list` is *not* tail recursive, and the interpreter caps
    // call depth at 150 — stay under it so both engines run it out.
    let src = "(defun build-list (n acc)
      (if (zerop n) acc (build-list (- n 1) (cons n acc))))
    (defun gc-stress (m)
      (prog ()
        top
        (if (zerop m) (return 'done))
        (build-list 100 '())
        (setq m (- m 1))
        (go top)))";
    assert_eq!(agree(src, "gc-stress", &[fx(20)]), "done");
}
