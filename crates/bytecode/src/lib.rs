//! The portable bytecode backend.
//!
//! Where `s1lisp-codegen` lowers the annotated tree to S-1 assembly for
//! the simulator, this crate lowers the *same* tree — after the same
//! analysis and annotation passes — to a compact linear bytecode:
//!
//! * **Fixed-width instructions** — every [`Insn`] is one opcode plus
//!   two immediate operands, packing into a single 64-bit word
//!   ([`Insn::encode`]/[`Insn::decode`]); code size is exactly
//!   `insns × INSN_BYTES`.
//! * **Constant pools** — each [`FuncProto`] carries its own pool of
//!   source datums; instructions reference constants, global names, and
//!   special-variable names by pool index.
//! * **Call/return frames** — the [`Evaluator`] runs an explicit stack
//!   of frames (no host recursion), with genuine tail calls, `catch`
//!   handlers, and a deep-binding special-variable stack, mirroring the
//!   reference interpreter's semantics.
//!
//! The machine-dependent annotations drive layout here exactly as they
//! drive S-1 code generation: `binding` allocation decides whether a
//! variable lives in a plain frame slot, a heap value cell (captured by
//! closures), or on the special stack, and the representation
//! analysis's lowering decisions select fused numeric opcodes.
//!
//! Primitive semantics are *shared*, not reimplemented: the evaluator
//! dispatches unknown globals through
//! [`s1lisp_interp::call_builtin`], so both backends answer to the
//! same reference definition of every primitive.

#![warn(missing_docs)]

mod emit;
mod eval;

pub use emit::{emit_unit, EmitError};
pub use eval::{BcTrap, Evaluator};

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use s1lisp_reader::Datum;

/// Bytes per encoded instruction (fixed width).
pub const INSN_BYTES: usize = 8;

/// One opcode.  `a` and `b` operand meanings are per-op; unused
/// operands are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    /// Push constant pool entry `a`.
    Const = 0,
    /// Push `()`.
    Nil = 1,
    /// Duplicate the top of stack.
    Dup = 2,
    /// Drop the top of stack.
    Pop = 3,
    /// Push slot `a`.
    Load = 4,
    /// Pop into slot `a`.
    Store = 5,
    /// Push the contents of the value cell in slot `a`.
    LoadCell = 6,
    /// Pop into the value cell in slot `a`.
    StoreCell = 7,
    /// Wrap slot `a`'s value in a fresh heap value cell.
    NewCell = 8,
    /// Push the cell object in slot `a` (for closure capture).
    PushCellSlot = 9,
    /// Push the contents of capture cell `a`.
    LoadCapture = 10,
    /// Pop into capture cell `a`.
    StoreCapture = 11,
    /// Push capture cell object `a` (for re-capture).
    PushCellCapture = 12,
    /// Pop the top of stack and push it boxed in a fresh cell.
    BoxTop = 13,
    /// Push the dynamic value of the special named by pool entry `a`.
    LoadSpecial = 14,
    /// Pop into the special named by pool entry `a`.
    StoreSpecial = 15,
    /// Pop a value and deep-bind it to the special named by pool `a`.
    BindSpecial = 16,
    /// Unbind the top `a` special bindings.
    Unbind = 17,
    /// Jump to instruction `a`.
    Jump = 18,
    /// Pop; jump to `a` if the value was `()`.
    JumpIfNil = 19,
    /// Pop; jump to `a` if the value was not `()`.
    JumpIfTrue = 20,
    /// If more than `a` arguments were supplied, jump to `b`
    /// (optional-parameter default elision).
    ArgSup = 21,
    /// Call the global named by pool entry `a` with `b` arguments.
    Call = 22,
    /// Tail-call the global named by pool entry `a` with `b` arguments.
    TailCall = 23,
    /// Pop `a` arguments, then a callee value, and call it.
    CallDyn = 24,
    /// Pop `b` capture cells and close over proto `a`.
    MakeClosure = 25,
    /// Pop `a` values and push them as a list.
    List = 26,
    /// Pop two values; push `t`/`()` per `eql`.
    Eql = 27,
    /// Pop the frame's result and return.
    Return = 28,
    /// Pop a tag and arm a catch handler whose landing pc is `a`.
    Catch = 29,
    /// Disarm the innermost catch handler of this frame.
    EndCatch = 30,
    /// Disarm the top `a` catch handlers (non-local `go`/`return` past
    /// an armed `catch`).
    Uncatch = 31,
    /// Pop a value, then a tag, and throw.
    Throw = 32,
    /// Truncate the operand stack to frame height `a`.
    Crop = 33,
    /// Keep the top of stack, truncating everything below to height `a`.
    CropKeep = 34,
    /// Push the global function value named by pool entry `a`.
    GlobalFn = 35,
    /// Fused generic `+` (fixnum fast path, builtin fallback).
    AddNum = 36,
    /// Fused generic `-`.
    SubNum = 37,
    /// Fused generic `*`.
    MulNum = 38,
    /// Fused generic `<`.
    LtNum = 39,
    /// Fused generic `=`.
    NumEq = 40,
}

impl Op {
    /// Listing mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Const => "const",
            Op::Nil => "nil",
            Op::Dup => "dup",
            Op::Pop => "pop",
            Op::Load => "load",
            Op::Store => "store",
            Op::LoadCell => "load.cell",
            Op::StoreCell => "store.cell",
            Op::NewCell => "new.cell",
            Op::PushCellSlot => "push.cell",
            Op::LoadCapture => "load.cap",
            Op::StoreCapture => "store.cap",
            Op::PushCellCapture => "push.cap",
            Op::BoxTop => "box",
            Op::LoadSpecial => "load.spec",
            Op::StoreSpecial => "store.spec",
            Op::BindSpecial => "bind.spec",
            Op::Unbind => "unbind",
            Op::Jump => "jump",
            Op::JumpIfNil => "jump.nil",
            Op::JumpIfTrue => "jump.t",
            Op::ArgSup => "arg.sup",
            Op::Call => "call",
            Op::TailCall => "tcall",
            Op::CallDyn => "call.dyn",
            Op::MakeClosure => "closure",
            Op::List => "list",
            Op::Eql => "eql",
            Op::Return => "ret",
            Op::Catch => "catch",
            Op::EndCatch => "end.catch",
            Op::Uncatch => "uncatch",
            Op::Throw => "throw",
            Op::Crop => "crop",
            Op::CropKeep => "crop.keep",
            Op::GlobalFn => "global.fn",
            Op::AddNum => "add",
            Op::SubNum => "sub",
            Op::MulNum => "mul",
            Op::LtNum => "lt",
            Op::NumEq => "numeq",
        }
    }

    fn from_u8(b: u8) -> Option<Op> {
        const ALL: &[Op] = &[
            Op::Const,
            Op::Nil,
            Op::Dup,
            Op::Pop,
            Op::Load,
            Op::Store,
            Op::LoadCell,
            Op::StoreCell,
            Op::NewCell,
            Op::PushCellSlot,
            Op::LoadCapture,
            Op::StoreCapture,
            Op::PushCellCapture,
            Op::BoxTop,
            Op::LoadSpecial,
            Op::StoreSpecial,
            Op::BindSpecial,
            Op::Unbind,
            Op::Jump,
            Op::JumpIfNil,
            Op::JumpIfTrue,
            Op::ArgSup,
            Op::Call,
            Op::TailCall,
            Op::CallDyn,
            Op::MakeClosure,
            Op::List,
            Op::Eql,
            Op::Return,
            Op::Catch,
            Op::EndCatch,
            Op::Uncatch,
            Op::Throw,
            Op::Crop,
            Op::CropKeep,
            Op::GlobalFn,
            Op::AddNum,
            Op::SubNum,
            Op::MulNum,
            Op::LtNum,
            Op::NumEq,
        ];
        ALL.get(b as usize).copied()
    }
}

/// One fixed-width instruction: an opcode and two immediates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// The opcode.
    pub op: Op,
    /// First operand (pool index, slot, jump target, …).
    pub a: u32,
    /// Second operand (argument count, secondary target).
    pub b: u16,
}

impl Insn {
    /// Builds an instruction.
    pub fn new(op: Op, a: u32, b: u16) -> Insn {
        Insn { op, a, b }
    }

    /// Packs into one 64-bit code word:
    /// `op:8 | pad:8 | b:16 | a:32` (low to high).
    pub fn encode(self) -> u64 {
        (self.op as u64) | ((self.b as u64) << 16) | ((self.a as u64) << 32)
    }

    /// Unpacks an encoded word; `None` on an unknown opcode.
    pub fn decode(word: u64) -> Option<Insn> {
        Some(Insn {
            op: Op::from_u8((word & 0xff) as u8)?,
            b: ((word >> 16) & 0xffff) as u16,
            a: (word >> 32) as u32,
        })
    }
}

/// One compiled function: parameter conventions, frame layout, code,
/// and its constant pool.
#[derive(Clone, Debug)]
pub struct FuncProto {
    /// The `defun` name (nested closure protos get `name::λN`).
    pub name: String,
    /// Required parameter count.
    pub required: u32,
    /// Optional parameter count.
    pub optional: u32,
    /// Whether a `&rest` parameter collects excess arguments.
    pub rest: bool,
    /// Frame slot count (parameters first, in order).
    pub nslots: u32,
    /// Capture cells expected by [`Op::MakeClosure`] (zero for plain
    /// functions; nonzero protos are only callable as closures).
    pub ncaptures: u32,
    /// The code.
    pub code: Vec<Insn>,
    /// The constant pool.
    pub consts: Vec<Datum>,
}

impl FuncProto {
    /// Code size in bytes (fixed-width encoding).
    pub fn code_bytes(&self) -> usize {
        self.code.len() * INSN_BYTES
    }
}

/// A set of compiled functions: the bytecode analog of the simulator's
/// `Program`.
#[derive(Clone, Debug, Default)]
pub struct Module {
    protos: Vec<Rc<FuncProto>>,
    index: HashMap<String, usize>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Installs one compilation unit's protos (entry plus nested
    /// closures, as produced by [`emit_unit`]).  `MakeClosure` operands
    /// are unit-relative and are rebased onto this module here.
    pub fn define_unit(&mut self, protos: Vec<FuncProto>) {
        let base = self.protos.len() as u32;
        for mut p in protos {
            for insn in &mut p.code {
                if insn.op == Op::MakeClosure {
                    insn.a += base;
                }
            }
            self.index.insert(p.name.clone(), self.protos.len());
            self.protos.push(Rc::new(p));
        }
    }

    /// Index of the proto named `name`, if defined.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The proto at `ix`.
    pub fn proto(&self, ix: usize) -> &Rc<FuncProto> {
        &self.protos[ix]
    }

    /// Number of protos defined.
    pub fn len(&self) -> usize {
        self.protos.len()
    }

    /// Whether the module is empty.
    pub fn is_empty(&self) -> bool {
        self.protos.is_empty()
    }

    /// Defined names in definition order (latest definition wins for
    /// duplicates, as with the simulator program).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<(&str, usize)> =
            self.index.iter().map(|(n, &i)| (n.as_str(), i)).collect();
        names.sort_by_key(|&(_, i)| i);
        names.into_iter().map(|(n, _)| n).collect()
    }

    /// Total instruction count across all protos.
    pub fn total_insns(&self) -> usize {
        self.protos.iter().map(|p| p.code.len()).sum()
    }

    /// Deterministic parenthesized listing of `name` (the bytecode
    /// analog of the S-1 disassembly).
    pub fn listing(&self, name: &str) -> Option<String> {
        let ix = self.lookup(name)?;
        let p = self.proto(ix);
        let mut out = String::new();
        use fmt::Write;
        let rest = if p.rest { "t" } else { "()" };
        let _ = writeln!(
            out,
            "(defbytecode {} (required {}) (optional {}) (rest {}) (slots {}) (captures {})",
            p.name, p.required, p.optional, rest, p.nslots, p.ncaptures
        );
        let _ = writeln!(
            out,
            "  (consts{})",
            p.consts.iter().map(|d| format!(" {d}")).collect::<String>()
        );
        for (i, insn) in p.code.iter().enumerate() {
            let _ = writeln!(
                out,
                "  ({i:>3} ({} {} {}))",
                insn.op.mnemonic(),
                insn.a,
                insn.b
            );
        }
        out.push_str(")\n");
        Some(out)
    }
}

#[cfg(test)]
mod insn_tests {
    use super::*;

    #[test]
    fn every_insn_encodes_to_one_word_and_back() {
        for raw in 0..=0xff_u8 {
            let Some(op) = Op::from_u8(raw) else { continue };
            let insn = Insn::new(op, 0xdead_beef, 0xcafe);
            let word = insn.encode();
            assert_eq!(Insn::decode(word), Some(insn), "{op:?}");
        }
        // Unknown opcodes decode to None (corrupt code words are
        // detected, not misexecuted).
        assert_eq!(Insn::decode(0xff), None);
    }

    #[test]
    fn listing_is_deterministic_and_names_the_proto() {
        let mut m = Module::new();
        m.define_unit(vec![FuncProto {
            name: "f".into(),
            required: 1,
            optional: 0,
            rest: false,
            nslots: 1,
            ncaptures: 0,
            code: vec![Insn::new(Op::Load, 0, 0), Insn::new(Op::Return, 0, 0)],
            consts: vec![],
        }]);
        let l1 = m.listing("f").unwrap();
        let l2 = m.listing("f").unwrap();
        assert_eq!(l1, l2);
        assert!(l1.contains("defbytecode f"));
        assert!(l1.contains("(load 0 0)"));
        assert_eq!(m.proto(0).code_bytes(), 2 * INSN_BYTES);
    }

    #[test]
    fn define_unit_rebases_closure_protos() {
        let make = |target: u32| FuncProto {
            name: format!("c{target}"),
            required: 0,
            optional: 0,
            rest: false,
            nslots: 0,
            ncaptures: 0,
            code: vec![Insn::new(Op::MakeClosure, target, 0)],
            consts: vec![],
        };
        let mut m = Module::new();
        m.define_unit(vec![make(1)]);
        m.define_unit(vec![make(1)]);
        // The second unit's closure reference points past the first.
        assert_eq!(m.proto(1).code[0].a, 2);
    }
}
