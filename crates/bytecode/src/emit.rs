//! Tree → bytecode emission.
//!
//! The input is the same annotated tree the S-1 code generator
//! consumes; the binding annotation decides slot layout (plain slot,
//! heap value cell, or special stack) and the representation
//! analysis's lowering map selects fused numeric opcodes.

use std::collections::HashMap;
use std::fmt;

use s1lisp_annotate::{Annotations, VarAlloc};
use s1lisp_ast::{subtree_nodes, CallFunc, Lambda, NodeId, NodeKind, ProgItem, Tree, VarId};
use s1lisp_reader::Datum;

use crate::{FuncProto, Insn, Op};

/// Emission failure (an unsupported shape, an unresolvable `go`, …).
#[derive(Clone, Debug)]
pub struct EmitError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode emission: {}", self.message)
    }
}

impl std::error::Error for EmitError {}

fn err<T>(message: impl Into<String>) -> Result<T, EmitError> {
    Err(EmitError {
        message: message.into(),
    })
}

/// Compiles one function (tree root lambda) plus any nested closures
/// into a batch of protos.  The entry proto is first and carries
/// `name`; `MakeClosure` operands are batch-relative (the module
/// rebases them at definition time).
pub fn emit_unit(name: &str, tree: &Tree, ann: &Annotations) -> Result<Vec<FuncProto>, EmitError> {
    let NodeKind::Lambda(lam) = tree.kind(tree.root) else {
        return err("tree root is not a lambda");
    };
    let mut em = Emitter {
        tree,
        ann,
        protos: Vec::new(),
        next_closure: 0,
        entry: name.to_string(),
    };
    em.emit_proto(name.to_string(), lam.clone(), HashMap::new(), Vec::new())?;
    Ok(em.protos.into_iter().map(Option::unwrap).collect())
}

struct Emitter<'a> {
    tree: &'a Tree,
    ann: &'a Annotations,
    /// Protos in batch order; `None` while still being emitted.
    protos: Vec<Option<FuncProto>>,
    next_closure: u32,
    entry: String,
}

/// A `progbody` scope during emission: where its tags live and what
/// must be unwound to jump back into it.
struct ProgScope {
    base: u32,
    specials: u32,
    catches: u32,
    tags: Vec<(String, usize)>,
    end_label: usize,
}

/// Per-proto emission state.
struct FnCtx {
    code: Vec<Insn>,
    consts: Vec<Datum>,
    const_keys: HashMap<String, u32>,
    slots: HashMap<VarId, u32>,
    nslots: u32,
    captures: HashMap<VarId, u32>,
    capture_order: Vec<VarId>,
    /// Model of the operand-stack height, for `Crop` targets.
    height: u32,
    /// Specials bound since frame entry.
    specials: u32,
    /// Armed catch handlers in this frame.
    catches: u32,
    progs: Vec<ProgScope>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, usize, bool)>, // (insn index, label, patch b?)
}

impl FnCtx {
    fn op(&mut self, op: Op, a: u32, b: u16) {
        self.code.push(Insn::new(op, a, b));
    }

    fn konst(&mut self, d: &Datum) -> u32 {
        let key = format!("{}:{d}", datum_tag(d));
        if let Some(&k) = self.const_keys.get(&key) {
            return k;
        }
        let k = self.consts.len() as u32;
        self.consts.push(d.clone());
        self.const_keys.insert(key, k);
        k
    }

    fn sym_const(&mut self, name: &s1lisp_reader::Symbol) -> u32 {
        self.konst(&Datum::Sym(name.clone()))
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn place(&mut self, label: usize) {
        self.labels[label] = Some(self.code.len() as u32);
    }

    fn jump(&mut self, op: Op, label: usize) {
        self.fixups.push((self.code.len(), label, false));
        self.op(op, 0, 0);
    }

    fn arg_sup(&mut self, param: u32, label: usize) {
        self.fixups.push((self.code.len(), label, true));
        self.op(Op::ArgSup, param, 0);
    }

    fn slot(&mut self, v: VarId) -> u32 {
        if let Some(&s) = self.slots.get(&v) {
            return s;
        }
        let s = self.nslots;
        self.nslots += 1;
        self.slots.insert(v, s);
        s
    }

    fn scratch(&mut self) -> u32 {
        let s = self.nslots;
        self.nslots += 1;
        s
    }
}

/// Discriminant so `1`, `1.0`, and `|1|`-ish spellings can never share
/// a pool entry by printed form alone.
fn datum_tag(d: &Datum) -> &'static str {
    match d {
        Datum::Nil => "n",
        Datum::Fixnum(_) => "i",
        Datum::Flonum(_) => "f",
        Datum::Sym(_) => "s",
        Datum::Str(_) => "t",
        Datum::Char(_) => "c",
        Datum::Cons(_) => "l",
    }
}

impl<'a> Emitter<'a> {
    /// Emits one proto (reserving its batch slot first, so nested
    /// closures see stable indices) and returns its batch index.
    fn emit_proto(
        &mut self,
        name: String,
        lam: Lambda,
        captures: HashMap<VarId, u32>,
        capture_order: Vec<VarId>,
    ) -> Result<u32, EmitError> {
        let ix = self.protos.len() as u32;
        self.protos.push(None);
        let mut cx = FnCtx {
            code: Vec::new(),
            consts: Vec::new(),
            const_keys: HashMap::new(),
            slots: HashMap::new(),
            nslots: 0,
            captures,
            capture_order,
            height: 0,
            specials: 0,
            catches: 0,
            progs: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        };
        // Parameters occupy slots 0..n in order — the evaluator's
        // argument-filling convention.
        let params = lam.all_params();
        for &p in &params {
            cx.slot(p);
        }
        // Prologue: parameters bind strictly left to right, as in the
        // interpreter — an optional's default (run only when the
        // argument count says it was unsupplied) sees every earlier
        // parameter already in its final home, special bindings
        // included.
        for (i, &p) in params.iter().enumerate() {
            if i >= lam.required.len() && i < lam.required.len() + lam.optional.len() {
                let opt = &lam.optional[i - lam.required.len()];
                let skip = cx.new_label();
                cx.arg_sup(i as u32, skip);
                self.node(&mut cx, opt.default, false)?;
                let s = cx.slots[&opt.var];
                cx.op(Op::Store, s, 0);
                cx.height -= 1;
                cx.place(skip);
            }
            self.finalize_param(&mut cx, p);
        }
        self.node(&mut cx, lam.body, true)?;
        cx.op(Op::Return, 0, 0);
        // Resolve labels.
        for (at, label, patch_b) in std::mem::take(&mut cx.fixups) {
            let Some(target) = cx.labels[label] else {
                return err("unplaced label");
            };
            if patch_b {
                cx.code[at].b = u16::try_from(target).map_err(|_| EmitError {
                    message: "code too large for a 16-bit prologue target".into(),
                })?;
            } else {
                cx.code[at].a = target;
            }
        }
        self.protos[ix as usize] = Some(FuncProto {
            name,
            required: lam.required.len() as u32,
            optional: lam.optional.len() as u32,
            rest: lam.rest.is_some(),
            nslots: cx.nslots,
            ncaptures: cx.capture_order.len() as u32,
            code: cx.code,
            consts: cx.consts,
        });
        Ok(ix)
    }

    /// After a parameter slot holds its value: wrap it in a cell if
    /// closures capture it, or deep-bind it if it is special.
    fn finalize_param(&mut self, cx: &mut FnCtx, v: VarId) {
        let var = self.tree.var(v);
        let s = cx.slots[&v];
        if var.special {
            cx.op(Op::Load, s, 0);
            let k = cx.sym_const(&var.name);
            cx.op(Op::BindSpecial, k, 0);
            cx.specials += 1;
        } else if self.alloc(v) == VarAlloc::Heap {
            cx.op(Op::NewCell, s, 0);
        }
    }

    fn alloc(&self, v: VarId) -> VarAlloc {
        if self.tree.var(v).special {
            return VarAlloc::Special;
        }
        self.ann
            .binding
            .var_alloc
            .get(&v)
            .copied()
            .unwrap_or(VarAlloc::Stack)
    }

    /// Emits `node`; on every (reachable) exit exactly one value has
    /// been pushed.
    fn node(&mut self, cx: &mut FnCtx, node: NodeId, tail: bool) -> Result<(), EmitError> {
        match self.tree.kind(node).clone() {
            NodeKind::Constant(d) => {
                if matches!(d, Datum::Nil) {
                    cx.op(Op::Nil, 0, 0);
                } else {
                    let k = cx.konst(&d);
                    cx.op(Op::Const, k, 0);
                }
                cx.height += 1;
            }
            NodeKind::VarRef(v) => {
                self.read_var(cx, v)?;
            }
            NodeKind::Setq { var, value } => {
                self.node(cx, value, false)?;
                cx.op(Op::Dup, 0, 0);
                cx.height += 1;
                self.write_var(cx, var)?;
            }
            NodeKind::If { test, then, els } => {
                self.node(cx, test, false)?;
                let l_else = cx.new_label();
                let l_end = cx.new_label();
                cx.jump(Op::JumpIfNil, l_else);
                cx.height -= 1;
                let h = cx.height;
                self.node(cx, then, tail)?;
                cx.jump(Op::Jump, l_end);
                cx.place(l_else);
                cx.height = h;
                self.node(cx, els, tail)?;
                cx.place(l_end);
            }
            NodeKind::Progn(body) => {
                let (last, init) = body.split_last().ok_or(EmitError {
                    message: "empty progn".into(),
                })?;
                for &n in init {
                    self.node(cx, n, false)?;
                    cx.op(Op::Pop, 0, 0);
                    cx.height -= 1;
                }
                self.node(cx, *last, tail)?;
            }
            NodeKind::Call { func, args } => match func {
                CallFunc::Global(g) => self.global_call(cx, node, &g, &args, tail)?,
                CallFunc::Expr(e) => {
                    if let NodeKind::Lambda(lam) = self.tree.kind(e).clone() {
                        self.let_call(cx, &lam, &args, tail)?;
                    } else {
                        self.node(cx, e, false)?;
                        for &a in &args {
                            self.node(cx, a, false)?;
                        }
                        cx.op(Op::CallDyn, args.len() as u32, 0);
                        cx.height -= args.len() as u32;
                    }
                }
            },
            NodeKind::Lambda(lam) => {
                self.closure(cx, node, &lam)?;
            }
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => {
                self.node(cx, key, false)?;
                let tmp = cx.scratch();
                cx.op(Op::Store, tmp, 0);
                cx.height -= 1;
                let h = cx.height;
                let l_end = cx.new_label();
                let body_labels: Vec<usize> = clauses.iter().map(|_| cx.new_label()).collect();
                for (c, l) in clauses.iter().zip(&body_labels) {
                    for k in &c.keys {
                        cx.op(Op::Load, tmp, 0);
                        let kk = cx.konst(k);
                        cx.op(Op::Const, kk, 0);
                        cx.op(Op::Eql, 0, 0);
                        cx.jump(Op::JumpIfTrue, *l);
                    }
                }
                self.node(cx, default, tail)?;
                cx.jump(Op::Jump, l_end);
                for (c, l) in clauses.iter().zip(&body_labels) {
                    cx.place(*l);
                    cx.height = h;
                    self.node(cx, c.body, tail)?;
                    cx.jump(Op::Jump, l_end);
                }
                cx.place(l_end);
                cx.height = h + 1;
            }
            NodeKind::Catcher { tag, body } => {
                self.node(cx, tag, false)?;
                let l_handler = cx.new_label();
                let l_end = cx.new_label();
                cx.jump(Op::Catch, l_handler);
                cx.height -= 1;
                cx.catches += 1;
                let h = cx.height;
                self.node(cx, body, false)?;
                cx.catches -= 1;
                cx.op(Op::EndCatch, 0, 0);
                cx.jump(Op::Jump, l_end);
                cx.place(l_handler);
                cx.height = h + 1; // the thrown value
                cx.place(l_end);
            }
            NodeKind::Progbody(items) => {
                let end_label = cx.new_label();
                let mut tags = Vec::new();
                for item in &items {
                    if let ProgItem::Tag(t) = item {
                        tags.push((t.as_str().to_string(), cx.new_label()));
                    }
                }
                cx.progs.push(ProgScope {
                    base: cx.height,
                    specials: cx.specials,
                    catches: cx.catches,
                    tags,
                    end_label,
                });
                let base = cx.height;
                for item in &items {
                    match item {
                        ProgItem::Tag(t) => {
                            let scope = cx.progs.last().unwrap();
                            let label = scope
                                .tags
                                .iter()
                                .find(|(n, _)| n == t.as_str())
                                .map(|&(_, l)| l)
                                .unwrap();
                            cx.place(label);
                            cx.height = base;
                        }
                        ProgItem::Stmt(n) => {
                            self.node(cx, *n, false)?;
                            cx.op(Op::Pop, 0, 0);
                            cx.height -= 1;
                        }
                    }
                }
                cx.op(Op::Nil, 0, 0);
                cx.height = base + 1;
                cx.place(end_label);
                cx.progs.pop();
            }
            NodeKind::Go(tag) => {
                let h = cx.height;
                let found = cx.progs.iter().rev().find_map(|s| {
                    s.tags
                        .iter()
                        .find(|(n, _)| n == tag.as_str())
                        .map(|&(_, l)| (l, s.base, s.specials, s.catches))
                });
                let Some((label, base, specials, catches)) = found else {
                    return err(format!("go: no visible tag {tag}"));
                };
                if cx.catches > catches {
                    cx.op(Op::Uncatch, cx.catches - catches, 0);
                }
                if cx.specials > specials {
                    cx.op(Op::Unbind, cx.specials - specials, 0);
                }
                cx.op(Op::Crop, base, 0);
                cx.jump(Op::Jump, label);
                cx.height = h + 1; // unreachable continuation
            }
            NodeKind::Return(v) => {
                let h = cx.height;
                let Some(scope) = cx.progs.last() else {
                    return err("return: no enclosing progbody");
                };
                let (label, base, specials, catches) =
                    (scope.end_label, scope.base, scope.specials, scope.catches);
                self.node(cx, v, false)?;
                if cx.catches > catches {
                    cx.op(Op::Uncatch, cx.catches - catches, 0);
                }
                if cx.specials > specials {
                    cx.op(Op::Unbind, cx.specials - specials, 0);
                }
                cx.op(Op::CropKeep, base, 0);
                cx.jump(Op::Jump, label);
                cx.height = h + 1; // unreachable continuation
            }
        }
        Ok(())
    }

    fn read_var(&mut self, cx: &mut FnCtx, v: VarId) -> Result<(), EmitError> {
        let var = self.tree.var(v);
        if var.special {
            let k = cx.sym_const(&var.name);
            cx.op(Op::LoadSpecial, k, 0);
        } else if let Some(&c) = cx.captures.get(&v) {
            cx.op(Op::LoadCapture, c, 0);
        } else {
            let s = cx.slot(v);
            if self.alloc(v) == VarAlloc::Heap {
                cx.op(Op::LoadCell, s, 0);
            } else {
                cx.op(Op::Load, s, 0);
            }
        }
        cx.height += 1;
        Ok(())
    }

    /// Pops the top of stack into the variable.
    fn write_var(&mut self, cx: &mut FnCtx, v: VarId) -> Result<(), EmitError> {
        let var = self.tree.var(v);
        if var.special {
            let k = cx.sym_const(&var.name);
            cx.op(Op::StoreSpecial, k, 0);
        } else if let Some(&c) = cx.captures.get(&v) {
            cx.op(Op::StoreCapture, c, 0);
        } else {
            let s = cx.slot(v);
            if self.alloc(v) == VarAlloc::Heap {
                cx.op(Op::StoreCell, s, 0);
            } else {
                cx.op(Op::Store, s, 0);
            }
        }
        cx.height -= 1;
        Ok(())
    }

    fn global_call(
        &mut self,
        cx: &mut FnCtx,
        node: NodeId,
        g: &s1lisp_reader::Symbol,
        args: &[NodeId],
        tail: bool,
    ) -> Result<(), EmitError> {
        let name = g.as_str();
        // `throw` compiles straight to the unwinder.
        if name == "throw" && args.len() == 2 {
            let h = cx.height;
            self.node(cx, args[0], false)?;
            self.node(cx, args[1], false)?;
            cx.op(Op::Throw, 0, 0);
            cx.height = h + 1; // unreachable continuation
            return Ok(());
        }
        // `(%function 'f)` is a constant function value.
        if name == "%function" && args.len() == 1 {
            if let NodeKind::Constant(Datum::Sym(s)) = self.tree.kind(args[0]) {
                let k = cx.sym_const(&s.clone());
                cx.op(Op::GlobalFn, k, 0);
                cx.height += 1;
                return Ok(());
            }
        }
        // Fused numeric opcodes where representation analysis lowered
        // the generic operator to machine arithmetic.
        if args.len() == 2 && self.ann.rep.lowered.contains_key(&node) {
            let fused = match name {
                "+" => Some(Op::AddNum),
                "-" => Some(Op::SubNum),
                "*" => Some(Op::MulNum),
                "<" => Some(Op::LtNum),
                "=" => Some(Op::NumEq),
                _ => None,
            };
            if let Some(op) = fused {
                self.node(cx, args[0], false)?;
                self.node(cx, args[1], false)?;
                cx.op(op, 0, 0);
                cx.height -= 1;
                return Ok(());
            }
        }
        for &a in args {
            self.node(cx, a, false)?;
        }
        let k = cx.sym_const(g);
        let argc = u16::try_from(args.len()).map_err(|_| EmitError {
            message: "too many arguments".into(),
        })?;
        // A genuine tail call only when no handler or special binding
        // of this frame must survive the callee.
        let op = if tail && cx.catches == 0 && cx.specials == 0 {
            Op::TailCall
        } else {
            Op::Call
        };
        cx.op(op, k, argc);
        cx.height -= args.len() as u32;
        cx.height += 1;
        Ok(())
    }

    /// Immediate lambda application — `let`.  Argument count is known
    /// statically, so parameters bind without a call frame.
    fn let_call(
        &mut self,
        cx: &mut FnCtx,
        lam: &Lambda,
        args: &[NodeId],
        tail: bool,
    ) -> Result<(), EmitError> {
        let (min, max) = lam.arity();
        if args.len() < min || max.is_some_and(|m| args.len() > m) {
            return err("lambda application arity mismatch");
        }
        let params = lam.all_params();
        for &p in &params {
            cx.slot(p);
        }
        let npos = lam.required.len() + lam.optional.len();
        // Evaluate every argument left to right…
        for &a in args {
            self.node(cx, a, false)?;
        }
        // …then bind them (top of stack is the last argument).
        if let Some(rest) = lam.rest.filter(|_| args.len() > npos) {
            let extra = (args.len() - npos) as u32;
            cx.op(Op::List, extra, 0);
            cx.height -= extra - 1;
            let s = cx.slots[&rest];
            cx.op(Op::Store, s, 0);
            cx.height -= 1;
        }
        for i in (0..args.len().min(npos)).rev() {
            let s = cx.slots[&params[i]];
            cx.op(Op::Store, s, 0);
            cx.height -= 1;
        }
        // Forward pass: defaults for unsupplied optionals, then cell /
        // special finalization, in parameter order (a default sees every
        // earlier parameter already in its final home, as in the
        // interpreter).
        let mut bound_specials = 0u32;
        for (i, &p) in params.iter().enumerate() {
            if i >= args.len() && i < npos {
                let opt = &lam.optional[i - lam.required.len()];
                self.node(cx, opt.default, false)?;
                let s = cx.slots[&p];
                cx.op(Op::Store, s, 0);
                cx.height -= 1;
            }
            if i >= args.len() && i == npos && lam.rest.is_some() {
                let s = cx.slots[&p];
                cx.op(Op::Nil, 0, 0);
                cx.op(Op::Store, s, 0);
            }
            let before = cx.specials;
            self.finalize_param(cx, p);
            bound_specials += cx.specials - before;
        }
        let body_tail = tail && bound_specials == 0;
        self.node(cx, lam.body, body_tail)?;
        if bound_specials > 0 {
            cx.op(Op::Unbind, bound_specials, 0);
            cx.specials -= bound_specials;
        }
        Ok(())
    }

    /// A lambda in value position: a closure over the free variables.
    fn closure(&mut self, cx: &mut FnCtx, node: NodeId, lam: &Lambda) -> Result<(), EmitError> {
        // Free variables = those resolvable in the *enclosing* context.
        // The binding annotation's capture list covers the common case;
        // scanning the subtree keeps us honest when a lambda the
        // annotator classified differently still reaches value position.
        let mut caps: Vec<VarId> = Vec::new();
        for n in subtree_nodes(self.tree, node) {
            let v = match self.tree.kind(n) {
                NodeKind::VarRef(v) => *v,
                NodeKind::Setq { var, .. } => *var,
                _ => continue,
            };
            if self.tree.var(v).special || caps.contains(&v) {
                continue;
            }
            if cx.slots.contains_key(&v) || cx.captures.contains_key(&v) {
                caps.push(v);
            }
        }
        let mut inner_caps = HashMap::new();
        for (i, &v) in caps.iter().enumerate() {
            inner_caps.insert(v, i as u32);
        }
        let child = format!("{}::λ{}", self.entry, self.next_closure);
        self.next_closure += 1;
        let ix = self.emit_proto(child, lam.clone(), inner_caps, caps.clone())?;
        for &v in &caps {
            if let Some(&c) = cx.captures.get(&v) {
                cx.op(Op::PushCellCapture, c, 0);
            } else {
                let s = cx.slots[&v];
                if self.alloc(v) == VarAlloc::Heap {
                    cx.op(Op::PushCellSlot, s, 0);
                } else {
                    // A by-value snapshot: the annotator kept this
                    // variable on the stack, so nothing can mutate it
                    // behind the closure's back.
                    cx.op(Op::Load, s, 0);
                    cx.op(Op::BoxTop, 0, 0);
                }
            }
            cx.height += 1;
        }
        let ncaps = u16::try_from(caps.len()).map_err(|_| EmitError {
            message: "too many captures".into(),
        })?;
        cx.op(Op::MakeClosure, ix, ncaps);
        cx.height -= caps.len() as u32;
        cx.height += 1;
        Ok(())
    }
}
