//! The stack-frame bytecode evaluator.
//!
//! An explicit frame stack (no host recursion), a shared operand
//! stack, a deep-binding special stack, and a `catch`-handler stack.
//! Primitives are *not* reimplemented: every global that is not a
//! bytecode proto dispatches through [`s1lisp_interp::call_builtin`],
//! so both backends share one reference definition of `+`, `car`,
//! `$fadd`, and friends.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use s1lisp_interp::{call_builtin, Function, Value};
use s1lisp_reader::{Interner, Symbol};

use crate::{FuncProto, Module, Op};

/// A runtime trap: wrong arity, undefined function, uncaught throw,
/// fuel exhaustion, …  The cross-backend oracle treats any trap on
/// both sides as agreement (messages are backend-specific).
#[derive(Clone, Debug)]
pub struct BcTrap {
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for BcTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BcTrap {}

fn trap<T>(message: impl Into<String>) -> Result<T, BcTrap> {
    Err(BcTrap {
        message: message.into(),
    })
}

/// Runtime value: either a plain interpreter [`Value`], a heap value
/// cell (closure-shared storage), or a bytecode closure.
#[derive(Clone, Debug)]
enum BcValue {
    V(Value),
    Cell(Rc<RefCell<BcValue>>),
    Closure(Rc<BcClosure>),
}

#[derive(Debug)]
struct BcClosure {
    proto: usize,
    captures: Vec<Rc<RefCell<BcValue>>>,
    name: String,
}

impl BcValue {
    fn nil() -> BcValue {
        BcValue::V(Value::Nil)
    }

    fn is_true(&self) -> bool {
        match self {
            BcValue::V(v) => v.is_true(),
            _ => true,
        }
    }

    fn eql(&self, other: &BcValue) -> bool {
        match (self, other) {
            (BcValue::V(a), BcValue::V(b)) => a.eql_p(b),
            (BcValue::Closure(a), BcValue::Closure(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Converts for the builtin boundary (and for final results).
    /// Closures degrade to a named function value — they keep working
    /// through `funcall`/`apply` by name lookup, which is all the
    /// dialect's builtins ever do with them.
    fn as_value(&self) -> Result<Value, BcTrap> {
        match self {
            BcValue::V(v) => Ok(v.clone()),
            BcValue::Closure(c) => Ok(Value::Func(Function::Global(c.name.clone()))),
            BcValue::Cell(_) => trap("value cell escaped onto the data path"),
        }
    }
}

struct Frame {
    proto: Rc<FuncProto>,
    pc: usize,
    /// Operand-stack height at frame entry (crop targets are relative
    /// to this).
    base: usize,
    slots: Vec<BcValue>,
    captures: Vec<Rc<RefCell<BcValue>>>,
    argc: usize,
    specials_base: usize,
    handlers_base: usize,
}

struct Handler {
    tag: BcValue,
    pc: usize,
    frame_ix: usize,
    stack_h: usize,
    specials_h: usize,
}

/// Runs [`Module`] code under a fuel budget.
pub struct Evaluator {
    module: Module,
    /// Instruction budget per [`Evaluator::run`] call; exhaustion is a
    /// trap (the bytecode analog of the simulator's fuel).
    pub fuel_per_run: u64,
    /// Instructions retired by the most recent `run`.
    pub last_run_insns: u64,
    globals: HashMap<String, Value>,
    t: Symbol,
}

impl Evaluator {
    /// An evaluator over `module` with the default fuel budget.
    pub fn new(module: Module) -> Evaluator {
        let mut interner = Interner::new();
        Evaluator {
            module,
            fuel_per_run: 100_000_000,
            last_run_insns: 0,
            globals: HashMap::new(),
            t: interner.intern("t"),
        }
    }

    /// The module being run.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Sets a global variable (special values read fall back here, as
    /// with the simulator's global table).
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.insert(name.to_string(), value);
    }

    /// Calls `entry` with `args`, returning its value or a trap.
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<Value, BcTrap> {
        let Some(ix) = self.module.lookup(entry) else {
            return trap(format!("undefined function {entry}"));
        };
        let mut st = State {
            stack: Vec::new(),
            frames: Vec::new(),
            handlers: Vec::new(),
            specials: Vec::new(),
        };
        let argv: Vec<BcValue> = args.iter().map(|v| BcValue::V(v.clone())).collect();
        self.last_run_insns = 0;
        self.exec(&mut st, ix, argv)
    }

    fn exec(
        &mut self,
        st: &mut State,
        entry_ix: usize,
        args: Vec<BcValue>,
    ) -> Result<Value, BcTrap> {
        push_frame(&self.module, st, entry_ix, args, Vec::new())?;
        let mut fuel = self.fuel_per_run;
        loop {
            if fuel == 0 {
                return trap("fuel exhausted");
            }
            fuel -= 1;
            self.last_run_insns += 1;
            let frame = st.frames.last_mut().expect("live frame");
            let Some(&insn) = frame.proto.code.get(frame.pc) else {
                return trap("pc ran off the end of the code");
            };
            frame.pc += 1;
            let (a, b) = (insn.a as usize, insn.b as usize);
            match insn.op {
                Op::Const => {
                    let d = &frame.proto.consts[a];
                    st.stack.push(BcValue::V(Value::from_datum(d)));
                }
                Op::Nil => st.stack.push(BcValue::nil()),
                Op::Dup => {
                    let v = top(st)?.clone();
                    st.stack.push(v);
                }
                Op::Pop => {
                    pop(st)?;
                }
                Op::Load => {
                    let v = frame.slots[a].clone();
                    st.stack.push(v);
                }
                Op::Store => {
                    let v = pop(st)?;
                    st.frames.last_mut().unwrap().slots[a] = v;
                }
                Op::LoadCell => match &frame.slots[a] {
                    BcValue::Cell(c) => {
                        let v = c.borrow().clone();
                        st.stack.push(v);
                    }
                    _ => return trap("load through a non-cell slot"),
                },
                Op::StoreCell => {
                    let v = pop(st)?;
                    match &st.frames.last().unwrap().slots[a] {
                        BcValue::Cell(c) => *c.borrow_mut() = v,
                        _ => return trap("store through a non-cell slot"),
                    }
                }
                Op::NewCell => {
                    let old = std::mem::replace(&mut frame.slots[a], BcValue::nil());
                    frame.slots[a] = BcValue::Cell(Rc::new(RefCell::new(old)));
                }
                Op::PushCellSlot => match &frame.slots[a] {
                    BcValue::Cell(c) => st.stack.push(BcValue::Cell(c.clone())),
                    _ => return trap("capture of a non-cell slot"),
                },
                Op::LoadCapture => {
                    let v = frame.captures[a].borrow().clone();
                    st.stack.push(v);
                }
                Op::StoreCapture => {
                    let v = pop(st)?;
                    *st.frames.last().unwrap().captures[a].borrow_mut() = v;
                }
                Op::PushCellCapture => {
                    let c = frame.captures[a].clone();
                    st.stack.push(BcValue::Cell(c));
                }
                Op::BoxTop => {
                    let v = pop(st)?;
                    st.stack.push(BcValue::Cell(Rc::new(RefCell::new(v))));
                }
                Op::LoadSpecial => {
                    let name = self.const_name(&frame.proto, a)?;
                    let v = match st.specials.iter().rev().find(|(n, _)| *n == name) {
                        Some((_, v)) => v.clone(),
                        None => match self.globals.get(&name) {
                            Some(v) => BcValue::V(v.clone()),
                            None => return trap(format!("unbound variable {name}")),
                        },
                    };
                    st.stack.push(v);
                }
                Op::StoreSpecial => {
                    let name = self.const_name(&frame.proto, a)?;
                    let v = pop(st)?;
                    match st.specials.iter_mut().rev().find(|(n, _)| *n == name) {
                        Some(slot) => slot.1 = v,
                        None => {
                            self.globals.insert(name, v.as_value()?);
                        }
                    }
                }
                Op::BindSpecial => {
                    let name = self.const_name(&frame.proto, a)?;
                    let v = pop(st)?;
                    st.specials.push((name, v));
                }
                Op::Unbind => {
                    let n = st.specials.len().saturating_sub(a);
                    st.specials.truncate(n);
                }
                Op::Jump => st.frames.last_mut().unwrap().pc = a,
                Op::JumpIfNil => {
                    let v = pop(st)?;
                    if !v.is_true() {
                        st.frames.last_mut().unwrap().pc = a;
                    }
                }
                Op::JumpIfTrue => {
                    let v = pop(st)?;
                    if v.is_true() {
                        st.frames.last_mut().unwrap().pc = a;
                    }
                }
                Op::ArgSup => {
                    if frame.argc > a {
                        frame.pc = b;
                    }
                }
                Op::Call | Op::TailCall => {
                    let name = self.const_name(&frame.proto, a)?;
                    let args = pop_n(st, b)?;
                    let tail = insn.op == Op::TailCall;
                    if let Some(r) = self.call_global(st, &name, args, tail)? {
                        if let Some(v) = self.settle(st, r)? {
                            return Ok(v);
                        }
                    }
                }
                Op::CallDyn => {
                    let args = pop_n(st, a)?;
                    let callee = pop(st)?;
                    match callee {
                        BcValue::Closure(c) => {
                            push_frame(&self.module, st, c.proto, args, c.captures.clone())?;
                        }
                        BcValue::V(Value::Func(Function::Global(name))) => {
                            if let Some(r) = self.call_global(st, &name, args, false)? {
                                if let Some(v) = self.settle(st, r)? {
                                    return Ok(v);
                                }
                            }
                        }
                        other => {
                            return trap(format!("not a function: {}", other.as_value()?));
                        }
                    }
                }
                Op::MakeClosure => {
                    let cells = pop_n(st, b)?;
                    let mut captures = Vec::with_capacity(cells.len());
                    for c in cells {
                        match c {
                            BcValue::Cell(rc) => captures.push(rc),
                            _ => return trap("closure capture is not a cell"),
                        }
                    }
                    let name = self.module.proto(a).name.clone();
                    st.stack.push(BcValue::Closure(Rc::new(BcClosure {
                        proto: a,
                        captures,
                        name,
                    })));
                }
                Op::List => {
                    let items = pop_n(st, a)?;
                    let mut vs = Vec::with_capacity(items.len());
                    for i in &items {
                        vs.push(i.as_value()?);
                    }
                    st.stack.push(BcValue::V(Value::list(vs)));
                }
                Op::Eql => {
                    let y = pop(st)?;
                    let x = pop(st)?;
                    let v = self.bool_value(x.eql(&y));
                    st.stack.push(v);
                }
                Op::Return => {
                    let v = pop(st)?;
                    if let Some(out) = self.settle(st, v)? {
                        return Ok(out);
                    }
                }
                Op::Catch => {
                    let tag = pop(st)?;
                    st.handlers.push(Handler {
                        tag,
                        pc: a,
                        frame_ix: st.frames.len() - 1,
                        stack_h: st.stack.len(),
                        specials_h: st.specials.len(),
                    });
                }
                Op::EndCatch => {
                    if st.handlers.pop().is_none() {
                        return trap("end.catch without a handler");
                    }
                }
                Op::Uncatch => {
                    let n = st.handlers.len().saturating_sub(a);
                    st.handlers.truncate(n);
                }
                Op::Throw => {
                    let value = pop(st)?;
                    let tag = pop(st)?;
                    self.do_throw(st, tag, value)?;
                }
                Op::Crop => {
                    st.stack.truncate(frame.base + a);
                }
                Op::CropKeep => {
                    let v = pop(st)?;
                    st.stack.truncate(st.frames.last().unwrap().base + a);
                    st.stack.push(v);
                }
                Op::GlobalFn => {
                    let name = self.const_name(&frame.proto, a)?;
                    st.stack
                        .push(BcValue::V(Value::Func(Function::Global(name))));
                }
                Op::AddNum => self.arith(st, "+", |x, y| x.checked_add(y))?,
                Op::SubNum => self.arith(st, "-", |x, y| x.checked_sub(y))?,
                Op::MulNum => self.arith(st, "*", |x, y| x.checked_mul(y))?,
                Op::LtNum => self.compare(st, "<", |x, y| x < y)?,
                Op::NumEq => self.compare(st, "=", |x, y| x == y)?,
            }
        }
    }

    fn const_name(&self, proto: &FuncProto, a: usize) -> Result<String, BcTrap> {
        match proto.consts.get(a) {
            Some(s1lisp_reader::Datum::Sym(s)) => Ok(s.as_str().to_string()),
            _ => trap("name operand is not a symbol constant"),
        }
    }

    fn bool_value(&self, b: bool) -> BcValue {
        if b {
            BcValue::V(Value::Sym(self.t.clone()))
        } else {
            BcValue::nil()
        }
    }

    /// Fused arithmetic: fixnum fast path, with the interpreter builtin
    /// as the single source of truth for everything else (flonums,
    /// contagion, overflow).
    fn arith(
        &mut self,
        st: &mut State,
        name: &str,
        fast: fn(i64, i64) -> Option<i64>,
    ) -> Result<(), BcTrap> {
        let y = pop(st)?;
        let x = pop(st)?;
        if let (BcValue::V(Value::Fixnum(a)), BcValue::V(Value::Fixnum(b))) = (&x, &y) {
            if let Some(r) = fast(*a, *b) {
                st.stack.push(BcValue::V(Value::Fixnum(r)));
                return Ok(());
            }
        }
        let v = self.builtin(name, &[x.as_value()?, y.as_value()?])?;
        st.stack.push(BcValue::V(v));
        Ok(())
    }

    fn compare(
        &mut self,
        st: &mut State,
        name: &str,
        fast: fn(i64, i64) -> bool,
    ) -> Result<(), BcTrap> {
        let y = pop(st)?;
        let x = pop(st)?;
        if let (BcValue::V(Value::Fixnum(a)), BcValue::V(Value::Fixnum(b))) = (&x, &y) {
            let v = self.bool_value(fast(*a, *b));
            st.stack.push(v);
            return Ok(());
        }
        let v = self.builtin(name, &[x.as_value()?, y.as_value()?])?;
        st.stack.push(BcValue::V(v));
        Ok(())
    }

    fn builtin(&self, name: &str, args: &[Value]) -> Result<Value, BcTrap> {
        match call_builtin(name, args, &self.t) {
            Some(Ok(v)) => Ok(v),
            Some(Err(e)) => trap(e.to_string()),
            None => trap(format!("undefined function {name}")),
        }
    }

    /// Calls the named global: a module proto (frame push / frame
    /// replacement), a builtin, or the `throw`/`apply` special cases.
    /// `Ok(Some(v))` means a builtin produced `v` in tail position and
    /// the caller must settle it.
    fn call_global(
        &mut self,
        st: &mut State,
        name: &str,
        args: Vec<BcValue>,
        tail: bool,
    ) -> Result<Option<BcValue>, BcTrap> {
        if name == "throw" {
            if args.len() == 2 {
                let mut it = args.into_iter();
                let tag = it.next().unwrap();
                let value = it.next().unwrap();
                self.do_throw(st, tag, value)?;
                return Ok(None);
            }
            return trap("throw: wants tag and value");
        }
        if name == "apply" {
            return self.do_apply(st, args, tail);
        }
        if let Some(ix) = self.module.lookup(name) {
            if tail {
                replace_frame(&self.module, st, ix, args)?;
            } else {
                push_frame(&self.module, st, ix, args, Vec::new())?;
            }
            return Ok(None);
        }
        let mut argv = Vec::with_capacity(args.len());
        for a in &args {
            argv.push(a.as_value()?);
        }
        let v = BcValue::V(self.builtin(name, &argv)?);
        if tail {
            return Ok(Some(v));
        }
        st.stack.push(v);
        Ok(None)
    }

    /// `(apply f a b '(c d))` — the last argument spreads.
    fn do_apply(
        &mut self,
        st: &mut State,
        args: Vec<BcValue>,
        tail: bool,
    ) -> Result<Option<BcValue>, BcTrap> {
        if args.is_empty() {
            return trap("apply: wants a function");
        }
        let mut it = args.into_iter();
        let callee = it.next().unwrap();
        let mut spread: Vec<BcValue> = it.collect();
        let Some(last) = spread.pop() else {
            return trap("apply: wants an argument list");
        };
        let mut rest = last.as_value()?;
        loop {
            match rest {
                Value::Nil => break,
                Value::Cons(ref cell) => {
                    let car = cell.car.borrow().clone();
                    let cdr = cell.cdr.borrow().clone();
                    spread.push(BcValue::V(car));
                    rest = cdr;
                }
                _ => return trap("apply: last argument is not a list"),
            }
        }
        match callee {
            BcValue::Closure(c) => {
                push_frame(&self.module, st, c.proto, spread, c.captures.clone())?;
                Ok(None)
            }
            BcValue::V(Value::Func(Function::Global(name))) => {
                self.call_global(st, &name, spread, tail)
            }
            other => trap(format!("apply: not a function: {}", other.as_value()?)),
        }
    }

    /// Unwinds to the innermost armed handler whose tag is `eql`.
    fn do_throw(&mut self, st: &mut State, tag: BcValue, value: BcValue) -> Result<(), BcTrap> {
        let Some(ix) = st.handlers.iter().rposition(|h| h.tag.eql(&tag)) else {
            return trap(format!("no catcher for tag {}", tag.as_value()?));
        };
        let h = st.handlers.remove(ix);
        st.handlers.truncate(ix);
        st.frames.truncate(h.frame_ix + 1);
        st.stack.truncate(h.stack_h);
        st.specials.truncate(h.specials_h);
        st.frames.last_mut().unwrap().pc = h.pc;
        st.stack.push(value);
        Ok(())
    }

    /// Returns `result` from the current frame.  `Ok(Some(v))` when the
    /// run is complete (the entry frame returned).
    fn settle(&mut self, st: &mut State, result: BcValue) -> Result<Option<Value>, BcTrap> {
        let frame = st.frames.pop().expect("live frame");
        st.stack.truncate(frame.base);
        st.specials.truncate(frame.specials_base);
        st.handlers.truncate(frame.handlers_base);
        if st.frames.is_empty() {
            return Ok(Some(result.as_value()?));
        }
        st.stack.push(result);
        Ok(None)
    }
}

struct State {
    stack: Vec<BcValue>,
    frames: Vec<Frame>,
    handlers: Vec<Handler>,
    specials: Vec<(String, BcValue)>,
}

fn top(st: &State) -> Result<&BcValue, BcTrap> {
    match st.stack.last() {
        Some(v) => Ok(v),
        None => trap("operand stack underflow"),
    }
}

fn pop(st: &mut State) -> Result<BcValue, BcTrap> {
    match st.stack.pop() {
        Some(v) => Ok(v),
        None => trap("operand stack underflow"),
    }
}

/// Pops `n` values, restoring push (left-to-right) order.
fn pop_n(st: &mut State, n: usize) -> Result<Vec<BcValue>, BcTrap> {
    if st.stack.len() < n {
        return trap("operand stack underflow");
    }
    Ok(st.stack.split_off(st.stack.len() - n))
}

/// Binds `args` into a fresh frame for proto `ix`.  Parameters occupy
/// slots `0..n` in declaration order; excess arguments collect into the
/// `&rest` slot as a list.
fn push_frame(
    module: &Module,
    st: &mut State,
    ix: usize,
    args: Vec<BcValue>,
    captures: Vec<Rc<RefCell<BcValue>>>,
) -> Result<(), BcTrap> {
    let proto = module.proto(ix).clone();
    if proto.ncaptures as usize != captures.len() {
        return trap(format!("closure {} escaped its environment", proto.name));
    }
    let argc = args.len();
    let npos = (proto.required + proto.optional) as usize;
    if argc < proto.required as usize {
        return trap(format!("too few arguments to {}", proto.name));
    }
    if argc > npos && !proto.rest {
        return trap(format!("too many arguments to {}", proto.name));
    }
    let mut slots = vec![BcValue::nil(); proto.nslots as usize];
    let mut rest = Vec::new();
    for (i, v) in args.into_iter().enumerate() {
        if i < npos {
            slots[i] = v;
        } else {
            rest.push(v.as_value()?);
        }
    }
    if proto.rest {
        slots[npos] = BcValue::V(Value::list(rest));
    }
    st.frames.push(Frame {
        proto,
        pc: 0,
        base: st.stack.len(),
        slots,
        captures,
        argc,
        specials_base: st.specials.len(),
        handlers_base: st.handlers.len(),
    });
    Ok(())
}

/// Genuine tail call: the current frame is unwound first, so recursion
/// depth stays constant (the bytecode analog of the compiler's
/// tail-call-to-jump transformation).
fn replace_frame(
    module: &Module,
    st: &mut State,
    ix: usize,
    args: Vec<BcValue>,
) -> Result<(), BcTrap> {
    let old = st.frames.pop().expect("live frame");
    st.stack.truncate(old.base);
    st.specials.truncate(old.specials_base);
    st.handlers.truncate(old.handlers_base);
    push_frame(module, st, ix, args, Vec::new())
}
