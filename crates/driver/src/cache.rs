//! The content-addressed artifact cache.
//!
//! Two tiers.  The in-memory tier is an LRU map from cache key to
//! [`Artifact`], bounded by `capacity`; the optional on-disk tier
//! serializes each artifact to `<dir>/<key as 16 hex digits>.json` via
//! the `s1lisp-trace` JSON layer, so a cold process (or a second
//! service) can reuse a previous run's work.
//!
//! # A cache must never fail a batch
//!
//! Every disk failure mode degrades, none propagates:
//!
//! * Transient I/O errors on read or write are retried up to
//!   [`IO_ATTEMPTS`] times with a short deterministic backoff
//!   (`io_retries` counts the retries, `io_errors` the operations that
//!   exhausted them).
//! * Entries that read back but fail to parse — truncated writes,
//!   hand-edited files, version skew, injected corruption — count as
//!   `corrupt_reads` and degrade to misses.
//! * [`DISK_STRIKE_LIMIT`] *consecutive* exhausted-retry failures
//!   disable the disk tier for the rest of the cache's life; the
//!   memory tier keeps serving alone.
//! * When `disk_max_entries` is set, each successful write sweeps the
//!   directory oldest-first (modification time, then file name) so
//!   on-disk growth stays bounded (`disk_evictions`).
//!
//! A seeded [`FaultPlan`] can arm the `CacheRead`/`CacheWrite`/
//! `CacheCorrupt` sites to inject exactly these failures,
//! deterministically per cache key, for drills and tests.
//!
//! All methods take `&self`: the cache is shared across worker threads
//! behind one mutex (held only for map bookkeeping, never during
//! compilation or disk I/O on the read path's miss side).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use s1lisp::Artifact;
use s1lisp_trace::fault::{FaultPlan, FaultSite};
use s1lisp_trace::json;
use s1lisp_trace::metrics::{Counter, Histogram, MetricsRegistry, TIME_BUCKETS_US};

use crate::fsio::{self, IO_ATTEMPTS};

/// Consecutive exhausted-retry failures that disable the disk tier.
pub const DISK_STRIKE_LIMIT: u64 = 4;

/// Monotonic counters describing cache traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from either tier.
    pub hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// The subset of `hits` that came from the disk tier.
    pub disk_hits: u64,
    /// Disk I/O attempts retried after a transient failure.
    pub io_retries: u64,
    /// Disk I/O operations abandoned after exhausting every retry.
    pub io_errors: u64,
    /// Disk entries that read back but failed to parse.
    pub corrupt_reads: u64,
    /// On-disk entries removed by the max-entries sweep.
    pub disk_evictions: u64,
}

impl CacheStats {
    /// Hit ratio in permille (hits per 1000 lookups); 0 with no traffic.
    pub fn hit_rate_permille(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }

    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            disk_hits: self.disk_hits - earlier.disk_hits,
            io_retries: self.io_retries - earlier.io_retries,
            io_errors: self.io_errors - earlier.io_errors,
            corrupt_reads: self.corrupt_reads - earlier.corrupt_reads,
            disk_evictions: self.disk_evictions - earlier.disk_evictions,
        }
    }
}

struct Tier {
    map: HashMap<u64, Artifact>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

/// The two-tier cache.  See the module docs.
///
/// Traffic counters live in a [`MetricsRegistry`] (the cache holds
/// registry handles, not its own atomics), so [`ArtifactCache::stats`]
/// and a registry snapshot are the same numbers by construction.  Pass a
/// shared registry via [`ArtifactCache::with_metrics`] to aggregate the
/// cache's `cache.*` metrics alongside a service's; the plain
/// constructors use a private registry.
pub struct ArtifactCache {
    capacity: usize,
    dir: Option<PathBuf>,
    disk_max_entries: Option<usize>,
    fault_plan: Option<FaultPlan>,
    disk_disabled: AtomicBool,
    /// Consecutive exhausted-retry failures (reset by any completed
    /// disk operation).
    disk_strikes: AtomicU64,
    mem: Mutex<Tier>,
    metrics: Arc<MetricsRegistry>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    disk_hits: Counter,
    io_retries: Counter,
    io_errors: Counter,
    corrupt_reads: Counter,
    disk_evictions: Counter,
    /// Memory-tier probe latency (lock + map lookup), microseconds.
    mem_get_us: Histogram,
    /// Disk-tier read latency (only when the probe reaches disk).
    disk_get_us: Histogram,
    /// Full `put` latency (both tiers), microseconds.
    put_us: Histogram,
}

impl ArtifactCache {
    /// A cache bounded at `capacity` in-memory entries, with an on-disk
    /// tier under `dir` when given (the directory is created eagerly;
    /// creation failure silently disables the disk tier rather than
    /// failing compilation).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ArtifactCache {
        ArtifactCache::tuned(capacity, dir, None, None)
    }

    /// [`ArtifactCache::new`] with the robustness knobs: a bound on
    /// on-disk entries (swept oldest-first after each write) and a
    /// seeded fault plan arming the cache's injection sites.
    pub fn tuned(
        capacity: usize,
        dir: Option<PathBuf>,
        disk_max_entries: Option<usize>,
        fault_plan: Option<FaultPlan>,
    ) -> ArtifactCache {
        ArtifactCache::with_metrics(
            capacity,
            dir,
            disk_max_entries,
            fault_plan,
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// [`ArtifactCache::tuned`] reporting into a caller-supplied
    /// registry, so cache traffic lands in the same snapshot as the
    /// surrounding service's metrics.
    pub fn with_metrics(
        capacity: usize,
        dir: Option<PathBuf>,
        disk_max_entries: Option<usize>,
        fault_plan: Option<FaultPlan>,
        metrics: Arc<MetricsRegistry>,
    ) -> ArtifactCache {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        ArtifactCache {
            capacity: capacity.max(1),
            dir,
            disk_max_entries,
            fault_plan,
            disk_disabled: AtomicBool::new(false),
            disk_strikes: AtomicU64::new(0),
            mem: Mutex::new(Tier {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: metrics.counter("cache.hits"),
            misses: metrics.counter("cache.misses"),
            evictions: metrics.counter("cache.evictions"),
            disk_hits: metrics.counter("cache.disk_hits"),
            io_retries: metrics.counter("cache.io_retries"),
            io_errors: metrics.counter("cache.io_errors"),
            corrupt_reads: metrics.counter("cache.corrupt_reads"),
            disk_evictions: metrics.counter("cache.disk_evictions"),
            mem_get_us: metrics.histogram("cache.mem_get_us", TIME_BUCKETS_US),
            disk_get_us: metrics.histogram("cache.disk_get_us", TIME_BUCKETS_US),
            put_us: metrics.histogram("cache.put_us", TIME_BUCKETS_US),
            metrics,
        }
    }

    /// The registry this cache reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// True once persistent disk failures have demoted the cache to
    /// memory-only operation.
    pub fn disk_disabled(&self) -> bool {
        self.disk_disabled.load(Ordering::Relaxed)
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        if self.disk_disabled() {
            return None;
        }
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// How many attempts the fault plan dooms for `key` at `site`.
    fn injected_failures(&self, site: FaultSite, key: u64) -> u32 {
        self.fault_plan.as_ref().map_or(0, |p| {
            p.failure_count(site, &format!("{key:016x}"), IO_ATTEMPTS)
        })
    }

    /// A completed disk operation (success or clean not-found) clears
    /// the strike count.
    fn note_disk_ok(&self) {
        self.disk_strikes.store(0, Ordering::Relaxed);
    }

    /// An operation that exhausted its retries; enough in a row disable
    /// the tier.
    fn note_disk_error(&self) {
        self.io_errors.inc();
        let strikes = self.disk_strikes.fetch_add(1, Ordering::Relaxed) + 1;
        if strikes >= DISK_STRIKE_LIMIT {
            self.disk_disabled.store(true, Ordering::Relaxed);
        }
    }

    /// Looks `key` up in memory, then on disk.  A memory hit refreshes
    /// recency; a disk hit is promoted into the memory tier.
    pub fn get(&self, key: u64) -> Option<Artifact> {
        let mem_start = Instant::now();
        let mem_probe = {
            let mut tier = self.mem.lock().expect("cache lock");
            if let Some(a) = tier.map.get(&key).cloned() {
                tier.order.retain(|&k| k != key);
                tier.order.push_back(key);
                Some(a)
            } else {
                None
            }
        };
        self.mem_get_us
            .observe(mem_start.elapsed().as_micros() as u64);
        if let Some(a) = mem_probe {
            self.hits.inc();
            return Some(a);
        }
        // Decide before probing: disk_get itself can flip disk_disabled
        // (crossing DISK_STRIKE_LIMIT), and that slowest, retry-heavy
        // probe belongs in the same distribution as the earlier failures.
        let disk_timed = self.dir.is_some() && !self.disk_disabled();
        let disk_start = Instant::now();
        let disk_probe = self.disk_get(key);
        if disk_timed {
            self.disk_get_us
                .observe(disk_start.elapsed().as_micros() as u64);
        }
        if let Some(a) = disk_probe {
            self.insert_mem(key, a.clone());
            self.hits.inc();
            self.disk_hits.inc();
            return Some(a);
        }
        self.misses.inc();
        None
    }

    fn disk_get(&self, key: u64) -> Option<Artifact> {
        let path = self.disk_path(key)?;
        let doomed = self.injected_failures(FaultSite::CacheRead, key);
        // An absent entry maps to `Ok(None)` — a clean miss is not a
        // failure and must not burn retries.
        let read = fsio::with_io_retries(
            IO_ATTEMPTS,
            || self.io_retries.inc(),
            |attempt| {
                if attempt < doomed {
                    return Err(io::Error::other("injected fault: cache read I/O error"));
                }
                match std::fs::read_to_string(&path) {
                    Ok(t) => Ok(Some(t)),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
                    Err(e) => Err(e),
                }
            },
        );
        let text = match read {
            Ok(t) => {
                self.note_disk_ok();
                t
            }
            Err(_) => {
                self.note_disk_error();
                return None;
            }
        };
        let mut text = text?;
        if let Some(plan) = &self.fault_plan {
            if plan.fires(FaultSite::CacheCorrupt, &format!("{key:016x}")) {
                // Truncation always unbalances the JSON object, so the
                // parse below must fail and be counted.
                text.truncate(text.len() / 2);
            }
        }
        match json::parse(&text)
            .ok()
            .and_then(|p| Artifact::from_json(&p))
        {
            Some(a) => Some(a),
            None => {
                self.corrupt_reads.inc();
                None
            }
        }
    }

    /// Stores a clean artifact under `key` in both tiers.
    pub fn put(&self, key: u64, artifact: &Artifact) {
        let start = Instant::now();
        self.insert_mem(key, artifact.clone());
        self.disk_put(key, artifact);
        self.put_us.observe(start.elapsed().as_micros() as u64);
    }

    fn disk_put(&self, key: u64, artifact: &Artifact) {
        let Some(path) = self.disk_path(key) else {
            return;
        };
        let body = artifact.to_json().to_string();
        let doomed = self.injected_failures(FaultSite::CacheWrite, key);
        // Temp-then-rename (via the shared discipline) keeps a
        // concurrent reader (or a second process warming from the same
        // directory) from ever seeing a half-written entry.  No fsync:
        // a cache entry lost to a crash is just a future miss.
        let wrote = fsio::with_io_retries(
            IO_ATTEMPTS,
            || self.io_retries.inc(),
            |attempt| {
                if attempt < doomed {
                    return Err(io::Error::other("injected fault: cache write I/O error"));
                }
                fsio::atomic_write(&path, body.as_bytes(), false)
            },
        );
        match wrote {
            Ok(()) => {
                self.note_disk_ok();
                self.sweep_disk();
            }
            Err(_) => self.note_disk_error(),
        }
    }

    /// Removes the oldest on-disk entries (by modification time, file
    /// name as tie-break) until at most `disk_max_entries` remain.
    fn sweep_disk(&self) {
        let Some(max) = self.disk_max_entries else {
            return;
        };
        let Some(dir) = &self.dir else { return };
        let Ok(listing) = std::fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<(std::time::SystemTime, PathBuf)> = listing
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .filter_map(|p| {
                let mtime = std::fs::metadata(&p).ok()?.modified().ok()?;
                Some((mtime, p))
            })
            .collect();
        if entries.len() <= max {
            return;
        }
        entries.sort();
        let excess = entries.len() - max;
        for (_, path) in entries.into_iter().take(excess) {
            if std::fs::remove_file(&path).is_ok() {
                self.disk_evictions.inc();
            }
        }
    }

    fn insert_mem(&self, key: u64, artifact: Artifact) {
        let mut tier = self.mem.lock().expect("cache lock");
        if tier.map.insert(key, artifact).is_none() {
            tier.order.push_back(key);
        } else {
            tier.order.retain(|&k| k != key);
            tier.order.push_back(key);
        }
        while tier.map.len() > self.capacity {
            if let Some(old) = tier.order.pop_front() {
                tier.map.remove(&old);
                self.evictions.inc();
            }
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").map.len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters, read back from the registry
    /// handles (the registry is the only bookkeeping).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            disk_hits: self.disk_hits.get(),
            io_retries: self.io_retries.get(),
            io_errors: self.io_errors.get(),
            corrupt_reads: self.corrupt_reads.get(),
            disk_evictions: self.disk_evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &str) -> Artifact {
        Artifact {
            name: name.into(),
            backend: "s1".into(),
            fingerprint: 1,
            converted: "(lambda () 'nil)".into(),
            optimized: "(lambda () 'nil)".into(),
            transformations: 0,
            rules: Vec::new(),
            phase_spans: vec![("Code generation".into(), 1)],
            tn_map: Vec::new(),
            coercions: Vec::new(),
            assembly: "(RET)".into(),
            insns: 1,
            dossier: format!("dossier for {name}"),
            degraded: false,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("s1lisp-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2, None);
        cache.put(1, &art("a"));
        cache.put(2, &art("b"));
        assert!(cache.get(1).is_some()); // refresh 1; 2 is now coldest
        cache.put(3, &art("c"));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_corruption() {
        let dir = tempdir("roundtrip");
        {
            let cache = ArtifactCache::new(4, Some(dir.clone()));
            cache.put(7, &art("seven"));
        }
        // A fresh cache (cold memory) warms from disk.
        let cache = ArtifactCache::new(4, Some(dir.clone()));
        let got = cache.get(7).expect("disk hit");
        assert_eq!(got.name, "seven");
        assert_eq!(cache.stats().disk_hits, 1);
        // Corrupt entries degrade to misses and are counted.
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{not json").unwrap();
        let fresh = ArtifactCache::new(4, Some(dir.clone()));
        assert!(fresh.get(9).is_none());
        assert_eq!(fresh.stats().misses, 1);
        assert_eq!(fresh.stats().corrupt_reads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_retry_then_recover_or_miss() {
        let dir = tempdir("readfault");
        {
            let clean = ArtifactCache::new(4, Some(dir.clone()));
            for key in 0..8u64 {
                clean.put(key, &art(&format!("fn{key}")));
            }
        }
        let plan = FaultPlan::new(21).arm(FaultSite::CacheRead, 1000);
        let cache = ArtifactCache::tuned(16, Some(dir.clone()), None, Some(plan.clone()));
        for key in 0..8u64 {
            let doomed = plan.failure_count(FaultSite::CacheRead, &format!("{key:016x}"), 3);
            let before = cache.stats();
            let got = cache.get(key);
            let after = cache.stats();
            if doomed < IO_ATTEMPTS {
                // Retried past the transient failures and hit.
                assert!(got.is_some(), "key {key}");
                assert_eq!(after.io_retries - before.io_retries, u64::from(doomed));
            } else {
                // All attempts doomed: a contained error, a miss.
                assert!(got.is_none(), "key {key}");
                assert_eq!(after.io_errors - before.io_errors, 1);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_write_failures_disable_the_disk_tier() {
        // Pick a seed whose plan dooms all IO_ATTEMPTS for at least
        // DISK_STRIKE_LIMIT consecutive put keys — the decision function
        // is pure, so the search is deterministic and the found seed
        // replays forever.
        let seed = (0..1000u64)
            .find(|&s| {
                let plan = FaultPlan::new(s).arm(FaultSite::CacheWrite, 1000);
                let mut run = 0u64;
                (0..64u64).any(|key| {
                    let doomed =
                        plan.failure_count(FaultSite::CacheWrite, &format!("{key:016x}"), 3);
                    run = if doomed >= IO_ATTEMPTS { run + 1 } else { 0 };
                    run >= DISK_STRIKE_LIMIT
                })
            })
            .expect("some small seed dooms a long enough run");
        let dir = tempdir("writefault");
        let plan = FaultPlan::new(seed).arm(FaultSite::CacheWrite, 1000);
        let cache = ArtifactCache::tuned(128, Some(dir.clone()), None, Some(plan));
        for key in 0..64u64 {
            cache.put(key, &art(&format!("fn{key}")));
        }
        assert!(cache.disk_disabled());
        assert!(cache.stats().io_errors >= DISK_STRIKE_LIMIT);
        // The memory tier still serves every entry: no batch fails.
        for key in 0..64u64 {
            assert!(cache.get(key).is_some(), "key {key}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_counts_and_misses() {
        let dir = tempdir("corrupt");
        {
            let clean = ArtifactCache::new(4, Some(dir.clone()));
            clean.put(3, &art("three"));
        }
        let plan = FaultPlan::new(1).arm(FaultSite::CacheCorrupt, 1000);
        let cache = ArtifactCache::tuned(4, Some(dir.clone()), None, Some(plan));
        assert!(cache.get(3).is_none());
        let s = cache.stats();
        assert_eq!(s.corrupt_reads, 1);
        assert_eq!(s.misses, 1);
        // The on-disk entry itself is untouched: corruption is injected
        // on the read path, and a clean reader still hits.
        let clean = ArtifactCache::new(4, Some(dir.clone()));
        assert!(cache.disk_path(3).is_some());
        assert!(clean.get(3).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_registry_snapshot_are_the_same_numbers() {
        let reg = Arc::new(MetricsRegistry::new());
        let cache = ArtifactCache::with_metrics(2, None, None, None, Arc::clone(&reg));
        cache.put(1, &art("a"));
        cache.put(2, &art("b"));
        cache.put(3, &art("c")); // evicts 1
        assert!(cache.get(2).is_some());
        assert!(cache.get(1).is_none());
        let s = cache.stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(s.hits));
        assert_eq!(snap.counter("cache.misses"), Some(s.misses));
        assert_eq!(snap.counter("cache.evictions"), Some(s.evictions));
        assert_eq!(s.hit_rate_permille(), 500);
        // Latency histograms saw every lookup and store.
        let mem = snap.histogram("cache.mem_get_us").unwrap();
        assert_eq!(mem.count, 2);
        assert_eq!(snap.histogram("cache.put_us").unwrap().count, 3);
        // No disk tier: the disk histogram exists but stays empty.
        assert_eq!(snap.histogram("cache.disk_get_us").unwrap().count, 0);
    }

    #[test]
    fn disk_sweep_bounds_on_disk_entries() {
        let dir = tempdir("sweep");
        let cache = ArtifactCache::tuned(64, Some(dir.clone()), Some(3), None);
        for key in 0..9u64 {
            cache.put(key, &art(&format!("fn{key}")));
        }
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(on_disk, 3);
        assert_eq!(cache.stats().disk_evictions, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
