//! The content-addressed artifact cache.
//!
//! Two tiers.  The in-memory tier is an LRU map from cache key to
//! [`Artifact`], bounded by `capacity`; the optional on-disk tier
//! serializes each artifact to `<dir>/<key as 16 hex digits>.json` via
//! the `s1lisp-trace` JSON layer, so a cold process (or a second
//! service) can reuse a previous run's work.  Disk reads that fail to
//! parse — truncated writes, hand-edited files, version skew — are
//! treated as misses, never as errors.
//!
//! All methods take `&self`: the cache is shared across worker threads
//! behind one mutex (held only for map bookkeeping, never during
//! compilation or disk I/O on the read path's miss side).

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use s1lisp::Artifact;
use s1lisp_trace::json;

/// Monotonic counters describing cache traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from either tier.
    pub hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// The subset of `hits` that came from the disk tier.
    pub disk_hits: u64,
}

impl CacheStats {
    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            disk_hits: self.disk_hits - earlier.disk_hits,
        }
    }
}

struct Tier {
    map: HashMap<u64, Artifact>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

/// The two-tier cache.  See the module docs.
pub struct ArtifactCache {
    capacity: usize,
    dir: Option<PathBuf>,
    mem: Mutex<Tier>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
}

impl ArtifactCache {
    /// A cache bounded at `capacity` in-memory entries, with an on-disk
    /// tier under `dir` when given (the directory is created eagerly;
    /// creation failure silently disables the disk tier rather than
    /// failing compilation).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ArtifactCache {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        ArtifactCache {
            capacity: capacity.max(1),
            dir,
            mem: Mutex::new(Tier {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Looks `key` up in memory, then on disk.  A memory hit refreshes
    /// recency; a disk hit is promoted into the memory tier.
    pub fn get(&self, key: u64) -> Option<Artifact> {
        {
            let mut tier = self.mem.lock().expect("cache lock");
            if let Some(a) = tier.map.get(&key).cloned() {
                tier.order.retain(|&k| k != key);
                tier.order.push_back(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(a);
            }
        }
        if let Some(a) = self.disk_get(key) {
            self.insert_mem(key, a.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(a);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn disk_get(&self, key: u64) -> Option<Artifact> {
        let path = self.disk_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let parsed = json::parse(&text).ok()?;
        Artifact::from_json(&parsed)
    }

    /// Stores a clean artifact under `key` in both tiers.
    pub fn put(&self, key: u64, artifact: &Artifact) {
        self.insert_mem(key, artifact.clone());
        if let Some(path) = self.disk_path(key) {
            // Temp-then-rename keeps a concurrent reader (or a second
            // process warming from the same directory) from ever seeing
            // a half-written entry.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if std::fs::write(&tmp, artifact.to_json().to_string()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    fn insert_mem(&self, key: u64, artifact: Artifact) {
        let mut tier = self.mem.lock().expect("cache lock");
        if tier.map.insert(key, artifact).is_none() {
            tier.order.push_back(key);
        } else {
            tier.order.retain(|&k| k != key);
            tier.order.push_back(key);
        }
        while tier.map.len() > self.capacity {
            if let Some(old) = tier.order.pop_front() {
                tier.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").map.len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &str) -> Artifact {
        Artifact {
            name: name.into(),
            fingerprint: 1,
            converted: "(lambda () 'nil)".into(),
            optimized: "(lambda () 'nil)".into(),
            transformations: 0,
            rules: Vec::new(),
            phase_spans: vec![("Code generation".into(), 1)],
            tn_map: Vec::new(),
            coercions: Vec::new(),
            assembly: "(RET)".into(),
            insns: 1,
            dossier: format!("dossier for {name}"),
            degraded: false,
        }
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2, None);
        cache.put(1, &art("a"));
        cache.put(2, &art("b"));
        assert!(cache.get(1).is_some()); // refresh 1; 2 is now coldest
        cache.put(3, &art("c"));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("s1lisp-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ArtifactCache::new(4, Some(dir.clone()));
            cache.put(7, &art("seven"));
        }
        // A fresh cache (cold memory) warms from disk.
        let cache = ArtifactCache::new(4, Some(dir.clone()));
        let got = cache.get(7).expect("disk hit");
        assert_eq!(got.name, "seven");
        assert_eq!(cache.stats().disk_hits, 1);
        // Corrupt entries degrade to misses.
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{not json").unwrap();
        let fresh = ArtifactCache::new(4, Some(dir.clone()));
        assert!(fresh.get(9).is_none());
        assert_eq!(fresh.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
