//! The parallel compilation service.
//!
//! The paper's compiler (§4, Table 1) runs its phase pipeline one
//! function at a time; this crate lifts that per-function pipeline into
//! a batch service without touching phase semantics:
//!
//! * **Fan-out** — a [`CompileService`] splits compilation units into
//!   hermetic per-function jobs and runs them on `jobs` worker threads
//!   (`std::thread` + `mpsc`; `jobs = 1` degenerates to the serial path
//!   on the caller's thread).
//! * **Memoization** — an [`ArtifactCache`] keyed by the converted
//!   tree's structural fingerprint mixed with an option fingerprint;
//!   LRU in memory, optionally persisted to disk as JSON.  A cache hit
//!   skips every phase after Preliminary.
//! * **Robustness** — per-function panic isolation (`catch_unwind`), an
//!   optional per-function time budget with a watchdog thread, and
//!   graceful degradation: a function whose pipeline panics or runs
//!   over budget is recompiled with transformations off and the fault
//!   is recorded as an [`Incident`].
//! * **Observability** — cache hit/miss/evict counters, queue depth,
//!   per-worker and per-phase totals, one [`JobRecord`] per function,
//!   all serializable for `report --json service`.
//! * **Guarded compilation** — with [`ServiceConfig::guard`] set, every
//!   job runs the phase validators (Table-2 well-formedness and the
//!   back-translation round trip) and a differential execution oracle
//!   compares each [`OracleCase`] against a transformations-off
//!   reference compile on the simulator; a seeded [`FaultPlan`] can
//!   deterministically inject cache I/O errors, corrupt reads, phase
//!   panics, watchdog overruns, and miscompiles to drill the whole
//!   containment surface ([`GuardReport`]).
//!
//! ```
//! use s1lisp_driver::{CompileService, ServiceConfig, SourceUnit};
//!
//! let service = CompileService::new(ServiceConfig::with_jobs(4));
//! let units = [SourceUnit::new("demo", "(defun sq (x) (* x x))")];
//! let batch = service.compile_batch(&units);
//! assert_eq!(batch.artifacts.len(), 1);
//! assert!(batch.artifact("sq").unwrap().assembly.contains("RET"));
//! // Recompiling the same unit is pure cache traffic.
//! let again = service.compile_batch(&units);
//! assert_eq!(again.hit_rate_percent(), 100);
//! ```

#![warn(missing_docs)]

mod cache;
pub mod fsio;
mod service;

pub use cache::{ArtifactCache, CacheStats};
pub use s1lisp::{BackendKind, FaultPlan, FaultSite};
pub use service::{
    unit_decls, BatchResult, BatchStats, CompileService, CrossVerdict, GuardReport, Incident,
    IncidentKind, JobRecord, OracleVerdict, Outcome, WorkerStats,
};

use std::path::PathBuf;
use std::time::Duration;

/// One compilation unit: a named batch of top-level forms.
#[derive(Clone, Debug)]
pub struct SourceUnit {
    /// A label for reports (a file name, an experiment id, …).
    pub name: String,
    /// The top-level forms (`defun`/`defvar`/`proclaim`).
    pub source: String,
}

impl SourceUnit {
    /// Builds a unit from anything string-like.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> SourceUnit {
        SourceUnit {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// Where and how to force a pipeline fault (test/demo hook for the
/// degradation machinery).
#[derive(Clone, Debug)]
pub struct FaultInjection {
    /// The function whose compilation should fault.
    pub function: String,
    /// Panic, or stall (to trip the time budget).
    pub mode: FaultMode,
}

/// The kind of injected fault.
#[derive(Clone, Copy, Debug)]
pub enum FaultMode {
    /// Panic between conversion and compilation, as an optimizer bug
    /// would.
    Panic,
    /// Sleep this long first, so a per-function time budget expires.
    Hang(Duration),
}

/// One differential-oracle case: after a guarded batch, call `entry`
/// with the given arguments on both the batch-configured compilation
/// and a transformations-off reference compilation, and demand
/// identical results.  Arguments are printed datums (`"3"`, `"-1.5"`,
/// `"(1 2)"`) so the configuration stays plain cross-thread data.
#[derive(Clone, Debug)]
pub struct OracleCase {
    /// The function to call.
    pub entry: String,
    /// Printed-datum arguments.
    pub args: Vec<String>,
}

impl OracleCase {
    /// Builds a case from anything string-like.
    pub fn new(
        entry: impl Into<String>,
        args: impl IntoIterator<Item = impl Into<String>>,
    ) -> OracleCase {
        OracleCase {
            entry: entry.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }
}

/// Per-batch adjustments a multi-tenant caller (the compile server)
/// threads through the shared worker pool without cloning the service.
///
/// The default is inert: [`CompileService::compile_batch`] is exactly
/// `compile_batch_with(units, BatchTuning::default())`, and a zero salt
/// leaves every cache key untouched, so single-tenant callers see
/// byte-identical behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchTuning {
    /// XORed into every artifact-cache key.  A tenant fingerprint here
    /// partitions the shared cache: two tenants compiling the same form
    /// under the same options get distinct keys, so neither can warm-hit
    /// (or even observe the existence of) the other's artifacts.
    pub key_salt: u64,
    /// Compile with every source-level transformation off (and CSE
    /// disabled) — the configuration a tenant is demoted to once its
    /// incident budget is exhausted.  Unlike the per-job degraded
    /// *retry*, these are clean first-attempt compiles: they cache
    /// normally (under the transformations-off option fingerprint) and
    /// their artifacts are not marked degraded.
    pub transformations_off: bool,
}

/// Which code generator a batch compiles with.
///
/// [`BackendSelect::Both`] is the cross-backend oracle mode: jobs
/// compile (and cache, and ship) S-1 artifacts exactly as
/// [`BackendSelect::S1`] does, and after the batch every
/// [`OracleCase`] additionally runs on a bytecode compilation of the
/// same units — S-1 on the simulator against bytecode on the stack
/// evaluator, under the same fuel.  A disagreement is an
/// [`IncidentKind::Miscompile`]; the S-1 artifact is what ships either
/// way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendSelect {
    /// The paper's S-1 backend (code generation + peephole).
    #[default]
    S1,
    /// The portable bytecode backend.
    Bytecode,
    /// Compile S-1, cross-check every oracle case against bytecode.
    Both,
}

impl BackendSelect {
    /// Parses a report/CLI label (`"s1"`, `"bytecode"`/`"bc"`,
    /// `"both"`).
    pub fn parse(s: &str) -> Option<BackendSelect> {
        match s {
            "both" => Some(BackendSelect::Both),
            _ => BackendKind::parse(s).map(|k| match k {
                BackendKind::S1 => BackendSelect::S1,
                BackendKind::Bytecode => BackendSelect::Bytecode,
            }),
        }
    }

    /// Lower-case label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendSelect::S1 => "s1",
            BackendSelect::Bytecode => "bytecode",
            BackendSelect::Both => "both",
        }
    }

    /// The backend batch jobs compile with (what the artifacts carry).
    pub fn primary(self) -> BackendKind {
        match self {
            BackendSelect::Bytecode => BackendKind::Bytecode,
            BackendSelect::S1 | BackendSelect::Both => BackendKind::S1,
        }
    }

    /// True when the post-batch cross-backend oracle runs.
    pub fn cross_checked(self) -> bool {
        self == BackendSelect::Both
    }
}

/// How a batch's job queue is ordered before the workers drain it.
///
/// Because every job is hermetic and results are reassembled in source
/// order, queue order affects only wall-clock, never output — pinned by
/// the schedule-invariance test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Source order, as split.
    Fifo,
    /// Largest function first, by the complexity analysis's
    /// whole-function object-code size estimate
    /// ([`s1lisp::PendingFunction::complexity_estimate`]); ties keep
    /// source order.  The longest compilations start before the queue
    /// thins out, so the batch does not end with one worker grinding a
    /// big function while the rest idle.
    LargestFirst,
}

impl Schedule {
    /// Lower-case label for reports (`"fifo"` / `"sorted"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::Fifo => "fifo",
            Schedule::LargestFirst => "sorted",
        }
    }
}

/// Service configuration.  The compiler options mirror the fields of
/// [`s1lisp::Compiler`] and participate in the cache key; the rest
/// shape scheduling and robustness.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (`1` = serial on the caller's thread).
    pub jobs: usize,
    /// Queue order for each batch.  Output-invariant; the default
    /// ([`Schedule::LargestFirst`]) minimizes straggler time.
    pub schedule: Schedule,
    /// Source-level optimization switches for every job.
    pub opt_options: s1lisp::OptOptions,
    /// Whether jobs run the CSE phase.
    pub cse: bool,
    /// Code-generation switches for every job.
    pub codegen_options: s1lisp::CodegenOptions,
    /// Whether jobs run branch tensioning.
    pub tension_branches: bool,
    /// Which backend jobs compile with, and whether the post-batch
    /// cross-backend oracle runs ([`BackendSelect::Both`]).  The
    /// backend salts the option fingerprint, so the artifact cache is
    /// partitioned per backend automatically.
    pub backend: BackendSelect,
    /// Per-function wall-clock budget; `None` disables the watchdog.
    pub time_budget: Option<Duration>,
    /// Per-*pass* wall-clock budget, enforced by the pipeline itself
    /// between passes: an overrun fails the function with a structured
    /// [`s1lisp::PassOverrun`] naming the slow pass, and the service
    /// routes it to the degraded path like a watchdog timeout.  Unlike
    /// [`ServiceConfig::time_budget`] it needs no watchdog thread, but
    /// it cannot interrupt a pass that hangs outright — configure both
    /// for full coverage.  `None` disables it.
    pub pass_budget: Option<Duration>,
    /// In-memory cache entries to keep (LRU beyond this).
    pub cache_capacity: usize,
    /// Directory for the persistent cache tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Bound on entries in the persistent tier (the oldest are swept
    /// after each write); `None` leaves on-disk growth unbounded.
    pub disk_max_entries: Option<usize>,
    /// Forced fault, for exercising the degraded path.
    pub fault: Option<FaultInjection>,
    /// Guarded compilation: run the phase validators (well-formedness +
    /// back-translation round trip) on every job, route violations to
    /// the degraded path, and run the differential oracle over
    /// [`ServiceConfig::oracle`] after the batch.
    pub guard: bool,
    /// Seeded deterministic fault plan arming the cache, phase,
    /// overrun, and oracle injection sites; `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Differential-oracle cases, run when `guard` is set.
    pub oracle: Vec<OracleCase>,
    /// Instruction budget per oracle execution (both sides), so a
    /// diverging or runaway artifact traps instead of hanging.
    pub oracle_fuel: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 1,
            schedule: Schedule::LargestFirst,
            opt_options: s1lisp::OptOptions::default(),
            cse: false,
            codegen_options: s1lisp::CodegenOptions::default(),
            tension_branches: true,
            backend: BackendSelect::S1,
            time_budget: None,
            pass_budget: None,
            cache_capacity: 512,
            cache_dir: None,
            disk_max_entries: None,
            fault: None,
            guard: false,
            fault_plan: None,
            oracle: Vec::new(),
            oracle_fuel: 100_000_000,
        }
    }
}

impl ServiceConfig {
    /// The default configuration at a given worker count.
    pub fn with_jobs(jobs: usize) -> ServiceConfig {
        ServiceConfig {
            jobs,
            ..ServiceConfig::default()
        }
    }
}
