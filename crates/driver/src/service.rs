//! Batch compilation: unit splitting, the worker pool, fault handling,
//! and result assembly.
//!
//! # Determinism
//!
//! Each job is *hermetic*: the worker receives the printed `defun` form,
//! the specials proclaimed before it in its unit, and the option set —
//! nothing else — and builds a private [`Compiler`] around them.  A
//! function's artifact therefore depends only on `(form, specials,
//! options)`, never on which worker ran it, in what order, or what else
//! was in the batch; results are reassembled in source order.  This is
//! also why the cache key is sound: the fingerprint covers exactly the
//! inputs the job can observe.
//!
//! One visible consequence: generated names (`or%3`, loop tags) restart
//! per function instead of counting across a whole
//! [`Compiler::compile_str`] unit, so service output can differ
//! cosmetically from the classic serial path in multi-`defun` units.
//! The pinned contract is jobs-invariance — `jobs = 1`, `2` and `8`
//! byte-identical — not equality with `compile_str`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use s1lisp::{Artifact, BackendKind, CompileError, Compiler, FaultPlan, FaultSite, Machine, Value};
use s1lisp_ast::Fnv1a64;
use s1lisp_reader::{read_all_str, read_str, Datum, Interner};
use s1lisp_trace::json::Json;
use s1lisp_trace::metrics::{Histogram, MetricsRegistry, TIME_BUCKETS_US};

use crate::cache::{ArtifactCache, CacheStats};
use crate::{BatchTuning, FaultMode, OracleCase, Schedule, ServiceConfig, SourceUnit};

/// One function's worth of work: everything a worker needs, as plain
/// data that crosses threads freely.
#[derive(Clone, Debug)]
struct Job {
    seq: usize,
    unit: String,
    fn_name: String,
    /// The printed `defun` form (print∘read is the identity for the
    /// reader, pinned by property test).
    form: String,
    /// Special variables proclaimed (or `defvar`ed) before this form in
    /// its unit, in order.
    specials: Vec<String>,
    /// XORed into the cache key ([`BatchTuning::key_salt`]); zero for
    /// plain batches, a tenant fingerprint under the compile server.
    salt: u64,
}

/// How one job was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the artifact cache; only the Preliminary phase ran.
    Hit,
    /// Compiled through the full pipeline and cached.
    Compiled,
    /// Recompiled with transformations off after a panic or timeout.
    Degraded,
    /// No artifact: the function failed to convert or compile (and, if
    /// it panicked or timed out first, the degraded retry failed too).
    Failed,
}

impl Outcome {
    /// Lower-case label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Compiled => "compiled",
            Outcome::Degraded => "degraded",
            Outcome::Failed => "failed",
        }
    }
}

/// What went wrong before a degraded recompile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// The pipeline panicked.
    Panic,
    /// The pipeline exceeded the per-function time budget.
    Timeout,
    /// A guarded-compilation validator rejected the tree.
    Guard,
    /// The differential oracle caught the optimized artifact computing
    /// a different answer than the reference compile.
    Miscompile,
    /// A durable-state recovery fault: the compile server found a
    /// tenant's on-disk snapshot or journal corrupted mid-log and
    /// quarantined the tenant to a fresh namespace.
    Recovery,
}

impl IncidentKind {
    /// Lower-case label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentKind::Panic => "panic",
            IncidentKind::Timeout => "timeout",
            IncidentKind::Guard => "guard",
            IncidentKind::Miscompile => "miscompile",
            IncidentKind::Recovery => "recovery",
        }
    }
}

/// A recorded pipeline fault: one function panicked, ran over budget,
/// failed a guard validator, or miscompiled under the oracle; the
/// batch carried on, and a degraded recompile (or reference artifact)
/// was attempted.
#[derive(Clone, Debug)]
pub struct Incident {
    /// The function whose compilation faulted.
    pub function: String,
    /// The compilation unit it came from.
    pub unit: String,
    /// Panic, timeout, guard violation, or oracle mismatch.
    pub kind: IncidentKind,
    /// The panic message, or a description of the violated invariant.
    pub detail: String,
    /// True when the degraded recompile produced an artifact.
    pub recovered: bool,
}

/// Telemetry for one job: who ran it, how it resolved, and which phases
/// it went through (phase name, spans, wall microseconds).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Source-order index across the whole batch.
    pub seq: usize,
    /// The compilation unit.
    pub unit: String,
    /// The function name.
    pub function: String,
    /// Which worker ran the job (scheduling-dependent).
    pub worker: usize,
    /// How the job resolved.
    pub outcome: Outcome,
    /// Wall time the worker spent on the job, in microseconds.
    pub wall_us: u64,
    /// Time the job sat in the queue before a worker picked it up, in
    /// microseconds (the per-job sample behind the
    /// `service.queue_wait_us` histogram).
    pub queue_us: u64,
    /// Phase spans recorded while resolving the job.  On a cache hit
    /// this is the Preliminary phase alone — the pinned evidence that
    /// hits skip every downstream phase.
    pub phase_spans: Vec<(String, u64, u64)>,
}

/// Per-worker totals.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index, `0..workers_used`.
    pub worker: usize,
    /// Jobs this worker resolved.
    pub jobs: u64,
    /// Total wall time across its jobs, in microseconds.
    pub wall_us: u64,
}

/// Batch-level telemetry.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Worker threads actually used (≤ the configured `jobs`).
    pub workers_used: usize,
    /// Queue order the batch ran with.
    pub schedule: Schedule,
    /// Functions fanned out.
    pub functions: usize,
    /// Cache traffic caused by this batch.
    pub cache: CacheStats,
    /// Jobs enqueued at the start (the queue only drains).
    pub queue_peak: usize,
    /// Per-worker totals, by worker index.
    pub workers: Vec<WorkerStats>,
    /// Phase spans merged across every job: (phase, spans, wall
    /// microseconds), in first-seen source order.
    pub phase_totals: Vec<(String, u64, u64)>,
}

/// One differential-oracle verdict: the printed outcome (value or
/// trap) of `entry` on the optimized and reference compilations.
#[derive(Clone, Debug)]
pub struct OracleVerdict {
    /// The function that was called.
    pub entry: String,
    /// True when both compilations agreed.
    pub matched: bool,
    /// Printed outcome of the batch-configured compilation.
    pub optimized: String,
    /// Printed outcome of the transformations-off reference.
    pub reference: String,
    /// True when a fault-plan site (`SimTrap`/`Miscompile`) perturbed
    /// the optimized side.
    pub injected: bool,
}

/// One cross-backend oracle verdict: the printed outcome of `entry`
/// under the S-1 backend (on the register simulator) and the bytecode
/// backend (on the stack evaluator), compiled from the same units with
/// the same options and run under the same fuel.
///
/// Traps agree *as traps*: each engine words its diagnostics
/// differently (and meters fuel in its own instructions), so two
/// trapping runs count as a match even when the messages differ.  A
/// value-vs-value difference, or a value on one side and a trap on the
/// other, is a miscompile.
#[derive(Clone, Debug)]
pub struct CrossVerdict {
    /// The function that was called.
    pub entry: String,
    /// True when the backends agreed.
    pub matched: bool,
    /// Printed outcome of the S-1 compilation on the simulator.
    pub s1: String,
    /// Printed outcome of the bytecode compilation on the evaluator.
    pub bytecode: String,
    /// True when a [`FaultSite::Miscompile`] plan site perturbed the
    /// bytecode side.
    pub injected: bool,
}

/// The guarded-compilation summary attached to a batch when
/// [`ServiceConfig::guard`](crate::ServiceConfig::guard) is set.
#[derive(Clone, Debug)]
pub struct GuardReport {
    /// The fault plan's seed (0 when no plan was armed).
    pub seed: u64,
    /// Armed fault sites as `(site, permille)`.
    pub armed: Vec<(String, u16)>,
    /// Differential-oracle verdicts, in case order.
    pub oracle: Vec<OracleVerdict>,
    /// True when persistent disk failures demoted the cache to
    /// memory-only operation during the batch.
    pub disk_disabled: bool,
    /// The containment verdict: no function was lost — every fault
    /// became a recovered incident and the failure list is empty.
    pub contained: bool,
}

impl GuardReport {
    /// The machine-readable form embedded in `report --json guard`.
    pub fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let armed = self
            .armed
            .iter()
            .map(|(site, rate)| {
                obj(vec![
                    ("site", Json::str(site)),
                    ("permille", Json::uint(u64::from(*rate))),
                ])
            })
            .collect();
        let oracle = self
            .oracle
            .iter()
            .map(|v| {
                obj(vec![
                    ("entry", Json::str(&v.entry)),
                    ("matched", Json::Bool(v.matched)),
                    ("optimized", Json::str(&v.optimized)),
                    ("reference", Json::str(&v.reference)),
                    ("injected", Json::Bool(v.injected)),
                ])
            })
            .collect();
        obj(vec![
            ("seed", Json::uint(self.seed)),
            ("armed", Json::Arr(armed)),
            ("oracle", Json::Arr(oracle)),
            ("disk_disabled", Json::Bool(self.disk_disabled)),
            ("contained", Json::Bool(self.contained)),
        ])
    }
}

/// Everything a batch compile produced.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Artifacts in source order (degraded ones included, marked).
    pub artifacts: Vec<Artifact>,
    /// One record per job, in source order.
    pub records: Vec<JobRecord>,
    /// Pipeline faults, in source order.
    pub incidents: Vec<Incident>,
    /// Failures as `(scope, message)`, where scope is `unit <name>` for
    /// split failures and the function name for per-job ones.
    pub failures: Vec<(String, String)>,
    /// `defvar` globals seen while splitting: (name, printed initial
    /// value).
    pub globals: Vec<(String, String)>,
    /// Batch telemetry.
    pub stats: BatchStats,
    /// Guarded-compilation summary; `None` unless the batch ran with
    /// [`ServiceConfig::guard`](crate::ServiceConfig::guard).
    pub guard: Option<GuardReport>,
    /// Cross-backend oracle verdicts, in case order; empty unless the
    /// batch ran with [`BackendSelect::Both`](crate::BackendSelect::Both).
    pub cross: Vec<CrossVerdict>,
}

impl BatchResult {
    /// The artifact for `name`, if the batch produced one (last
    /// definition wins, as in [`Compiler::function`]).
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().rev().find(|a| a.name == name)
    }

    /// Every dossier, concatenated in source order — the byte-stable
    /// rendering the determinism tests pin across `jobs` settings.
    pub fn render_artifacts(&self) -> String {
        let mut out = String::new();
        for a in &self.artifacts {
            out.push_str(&a.dossier);
            out.push('\n');
        }
        out
    }

    /// Installs the batch's `defvar` globals into a machine, making a
    /// batch-compiled program directly runnable like a serial
    /// [`Compiler::machine`]: each printed initializer is re-read,
    /// converted to a value (one `quote` level stripped, as `defvar`
    /// does), and set as the global.  Returns the number installed.
    ///
    /// # Errors
    ///
    /// A string naming the global whose initializer failed to re-read
    /// or install.
    pub fn load_globals(&self, m: &mut Machine) -> Result<usize, String> {
        let mut interner = Interner::new();
        let mut installed = 0;
        for (name, init) in &self.globals {
            let datum = read_str(init, &mut interner).map_err(|e| format!("global {name}: {e}"))?;
            let quoted = datum
                .car()
                .and_then(|h| h.as_symbol().cloned())
                .is_some_and(|s| s.as_str() == "quote");
            let datum = if quoted {
                datum
                    .cdr()
                    .and_then(|d| d.car())
                    .ok_or_else(|| format!("global {name}: malformed quote"))?
            } else {
                datum
            };
            let value = Value::from_datum(&datum);
            m.set_global(name, &value)
                .map_err(|t| format!("global {name}: {t}"))?;
            installed += 1;
        }
        Ok(installed)
    }

    /// Cache hits as a percentage of functions, rounded down (100 ⇔
    /// every job was served from cache).
    pub fn hit_rate_percent(&self) -> u64 {
        if self.stats.functions == 0 {
            return 0;
        }
        self.stats.cache.hits * 100 / self.stats.functions as u64
    }

    /// The machine-readable form behind `report --json service`.
    pub fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let cache = obj(vec![
            ("hits", Json::uint(self.stats.cache.hits)),
            ("misses", Json::uint(self.stats.cache.misses)),
            ("evictions", Json::uint(self.stats.cache.evictions)),
            ("disk_hits", Json::uint(self.stats.cache.disk_hits)),
            ("io_retries", Json::uint(self.stats.cache.io_retries)),
            ("io_errors", Json::uint(self.stats.cache.io_errors)),
            ("corrupt_reads", Json::uint(self.stats.cache.corrupt_reads)),
            (
                "disk_evictions",
                Json::uint(self.stats.cache.disk_evictions),
            ),
        ]);
        let workers = self
            .stats
            .workers
            .iter()
            .map(|w| {
                obj(vec![
                    ("worker", Json::uint(w.worker as u64)),
                    ("jobs", Json::uint(w.jobs)),
                    ("wall_us", Json::uint(w.wall_us)),
                ])
            })
            .collect();
        let phases = self
            .stats
            .phase_totals
            .iter()
            .map(|(phase, spans, wall)| {
                obj(vec![
                    ("phase", Json::str(phase)),
                    ("spans", Json::uint(*spans)),
                    ("wall_us", Json::uint(*wall)),
                ])
            })
            .collect();
        let records = self
            .records
            .iter()
            .map(|r| {
                obj(vec![
                    ("seq", Json::uint(r.seq as u64)),
                    ("unit", Json::str(&r.unit)),
                    ("function", Json::str(&r.function)),
                    ("worker", Json::uint(r.worker as u64)),
                    ("outcome", Json::str(r.outcome.as_str())),
                    ("wall_us", Json::uint(r.wall_us)),
                    ("queue_us", Json::uint(r.queue_us)),
                    (
                        "phase_spans",
                        Json::Map(
                            r.phase_spans
                                .iter()
                                .map(|(p, spans, _)| (p.clone(), Json::uint(*spans)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let incidents = self
            .incidents
            .iter()
            .map(|i| {
                obj(vec![
                    ("function", Json::str(&i.function)),
                    ("unit", Json::str(&i.unit)),
                    ("kind", Json::str(i.kind.as_str())),
                    ("detail", Json::str(&i.detail)),
                    ("recovered", Json::Bool(i.recovered)),
                ])
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|(scope, error)| {
                obj(vec![
                    ("scope", Json::str(scope)),
                    ("error", Json::str(error)),
                ])
            })
            .collect();
        let globals = self
            .globals
            .iter()
            .map(|(name, init)| obj(vec![("name", Json::str(name)), ("init", Json::str(init))]))
            .collect();
        let cross = self
            .cross
            .iter()
            .map(|v| {
                obj(vec![
                    ("entry", Json::str(&v.entry)),
                    ("matched", Json::Bool(v.matched)),
                    ("s1", Json::str(&v.s1)),
                    ("bytecode", Json::str(&v.bytecode)),
                    ("injected", Json::Bool(v.injected)),
                ])
            })
            .collect();
        let artifacts = self.artifacts.iter().map(Artifact::to_json).collect();
        obj(vec![
            ("workers_used", Json::uint(self.stats.workers_used as u64)),
            ("schedule", Json::str(self.stats.schedule.as_str())),
            ("functions", Json::uint(self.stats.functions as u64)),
            ("hit_rate_percent", Json::uint(self.hit_rate_percent())),
            ("queue_peak", Json::uint(self.stats.queue_peak as u64)),
            ("cache", cache),
            ("workers", Json::Arr(workers)),
            ("phases", Json::Arr(phases)),
            ("records", Json::Arr(records)),
            ("incidents", Json::Arr(incidents)),
            ("failures", Json::Arr(failures)),
            ("globals", Json::Arr(globals)),
            (
                "guard",
                self.guard.as_ref().map_or(Json::Null, GuardReport::to_json),
            ),
            ("cross", Json::Arr(cross)),
            ("artifacts", Json::Arr(artifacts)),
        ])
    }
}

/// The batch-compilation service: a worker pool over hermetic
/// per-function jobs, in front of a content-addressed [`ArtifactCache`]
/// that persists across [`CompileService::compile_batch`] calls.
///
/// The service and its cache share one [`MetricsRegistry`]
/// ([`CompileService::metrics`]): `service.*` covers queue wait, job
/// wall time, outcomes, and incidents by kind; `cache.*` the cache's
/// traffic and latency.
pub struct CompileService {
    config: ServiceConfig,
    cache: ArtifactCache,
    metrics: Arc<MetricsRegistry>,
    queue_wait_us: Histogram,
    job_wall_us: Histogram,
}

/// The cache key: the converted tree's structural fingerprint mixed
/// with the option fingerprint.
fn cache_key(tree_fp: u64, options_fp: u64) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_u64(tree_fp);
    h.write_u64(options_fp);
    h.finish()
}

/// A compiler configured for one job.  `degraded` switches every
/// source-level transformation off (the recovery path after a fault)
/// and also drops the guard validators and injected faults: the retry
/// must run clean.
fn job_compiler(config: &ServiceConfig, specials: &[String], degraded: bool) -> Compiler {
    let mut c = Compiler::new();
    c.opt_options = if degraded {
        s1lisp::OptOptions::none()
    } else {
        config.opt_options.clone()
    };
    c.cse = config.cse && !degraded;
    c.codegen_options = config.codegen_options.clone();
    c.tension_branches = config.tension_branches;
    // The backend salts the option fingerprint, so jobs for different
    // backends can never collide in the shared artifact cache.
    c.backend = config.backend.primary();
    c.guard = config.guard && !degraded;
    c.fault_plan = if degraded {
        None
    } else {
        config.fault_plan.clone()
    };
    // The degraded retry runs with no per-pass budget: it exists to
    // salvage an artifact, and the function already has an incident.
    c.pass_budget = if degraded { None } else { config.pass_budget };
    c.enable_trace();
    for s in specials {
        c.proclaim_special(s);
    }
    c
}

fn sink_phase_spans(c: &Compiler) -> Vec<(String, u64, u64)> {
    c.trace().map_or_else(Vec::new, |sink| {
        sink.phases()
            .iter()
            .map(|p| {
                (
                    p.phase.to_string(),
                    p.spans,
                    u64::try_from(p.wall.as_micros()).unwrap_or(u64::MAX),
                )
            })
            .collect()
    })
}

struct AttemptOk {
    artifact: Artifact,
    phase_spans: Vec<(String, u64, u64)>,
}

/// A failed attempt; `guard` marks validator rejections and `overrun`
/// marks per-pass budget overruns, both of which take the
/// degraded-recompile path instead of failing the function outright.
struct AttemptErr {
    guard: bool,
    overrun: bool,
    detail: String,
}

impl AttemptErr {
    fn plain(detail: impl Into<String>) -> AttemptErr {
        AttemptErr {
            guard: false,
            overrun: false,
            detail: detail.into(),
        }
    }

    fn from_compile(e: &CompileError) -> AttemptErr {
        AttemptErr {
            guard: matches!(e, CompileError::Guard(_)),
            overrun: matches!(e, CompileError::Overrun(_)),
            detail: e.to_string(),
        }
    }
}

/// One self-contained compilation attempt: builds a private compiler,
/// converts, (optionally) trips the injected faults, and compiles.
/// Runs inline or on a watchdogged thread; owns no shared state.
fn attempt(job: &Job, config: &ServiceConfig, degraded: bool) -> Result<AttemptOk, AttemptErr> {
    let mut c = job_compiler(config, &job.specials, degraded);
    let mut pending = c
        .convert_str(&job.form)
        .map_err(|e| AttemptErr::from_compile(&e))?;
    let Some(p) = pending.pop().filter(|_| pending.is_empty()) else {
        return Err(AttemptErr::plain(format!(
            "expected exactly one function in job {}",
            job.fn_name
        )));
    };
    if !degraded {
        if let Some(fault) = config.fault.as_ref().filter(|f| f.function == job.fn_name) {
            match fault.mode {
                FaultMode::Panic => {
                    panic!("injected optimizer fault in {}", job.fn_name)
                }
                FaultMode::Hang(d) => std::thread::sleep(d),
            }
        }
        // A planned overrun only makes sense when a watchdog is armed
        // to catch it: sleep just past the budget.
        if let (Some(plan), Some(budget)) = (&config.fault_plan, config.time_budget) {
            if plan.fires(FaultSite::Overrun, &job.fn_name) {
                std::thread::sleep(budget + budget / 4 + std::time::Duration::from_millis(20));
            }
        }
    }
    let name = c
        .compile_pending(p)
        .map_err(|e| AttemptErr::from_compile(&e))?;
    let mut artifact = c
        .artifact(&name)
        .ok_or_else(|| AttemptErr::plain(format!("no artifact for {name}")))?;
    artifact.degraded = degraded;
    Ok(AttemptOk {
        artifact,
        phase_spans: sink_phase_spans(&c),
    })
}

enum AttemptOutcome {
    Ok(Box<AttemptOk>),
    CompileError(AttemptErr),
    Panicked(String),
    TimedOut,
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs an attempt with panic isolation, and — when a time budget is
/// configured — under a watchdog: the attempt runs on its own thread
/// and the worker waits at most the budget.  A thread that runs over
/// is abandoned (threads cannot be killed); it owns only job-local
/// state, so the leak is bounded by process exit.
fn guarded_attempt(job: &Job, config: &ServiceConfig, degraded: bool) -> AttemptOutcome {
    match config.time_budget {
        None => match catch_unwind(AssertUnwindSafe(|| attempt(job, config, degraded))) {
            Ok(Ok(ok)) => AttemptOutcome::Ok(Box::new(ok)),
            Ok(Err(e)) => AttemptOutcome::CompileError(e),
            Err(payload) => AttemptOutcome::Panicked(panic_detail(payload.as_ref())),
        },
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            let job = job.clone();
            let config = config.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("s1lisp-attempt-{}", job.fn_name))
                .spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| attempt(&job, &config, degraded)))
                        .map_err(|p| panic_detail(p.as_ref()));
                    let _ = tx.send(r);
                });
            if spawned.is_err() {
                return AttemptOutcome::CompileError(AttemptErr::plain(
                    "could not spawn attempt thread",
                ));
            }
            match rx.recv_timeout(budget) {
                Ok(Ok(Ok(ok))) => AttemptOutcome::Ok(Box::new(ok)),
                Ok(Ok(Err(e))) => AttemptOutcome::CompileError(e),
                Ok(Err(detail)) => AttemptOutcome::Panicked(detail),
                Err(mpsc::RecvTimeoutError::Timeout) => AttemptOutcome::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    AttemptOutcome::Panicked("attempt thread died without reporting".into())
                }
            }
        }
    }
}

struct JobResult {
    record: JobRecord,
    artifact: Option<Artifact>,
    incident: Option<Incident>,
    failure: Option<(String, String)>,
}

/// Resolves one job end to end: probe the cache, compile on a miss,
/// degrade on a fault.
fn process_job(
    job: &Job,
    config: &ServiceConfig,
    cache: &ArtifactCache,
    worker: usize,
) -> JobResult {
    let start = Instant::now();
    let mut incident = None;
    let mut failure = None;
    let phase_spans;
    // The cache probe needs the converted tree; conversion is the
    // Preliminary phase and never optimizes, so it runs outside the
    // fault/budget guard.
    let mut probe = job_compiler(config, &job.specials, false);
    // The *cache* key carries the tenant salt (partitioning the shared
    // cache); the *reported* fingerprint stays unsalted so the same
    // function compiles to byte-identical artifacts for every tenant —
    // the server-vs-`compile_batch` equivalence contract.
    let (key, fingerprint) = match probe.convert_str(&job.form) {
        Ok(pending) if pending.len() == 1 => {
            let base = cache_key(pending[0].tree_fingerprint(), probe.options_fingerprint());
            (base ^ job.salt, base)
        }
        Ok(_) => (0, 0),
        Err(e) => {
            return JobResult {
                record: JobRecord {
                    seq: job.seq,
                    unit: job.unit.clone(),
                    function: job.fn_name.clone(),
                    worker,
                    outcome: Outcome::Failed,
                    wall_us: elapsed_us(start),
                    queue_us: 0,
                    phase_spans: sink_phase_spans(&probe),
                },
                artifact: None,
                incident: None,
                failure: Some((job.fn_name.clone(), e.to_string())),
            }
        }
    };
    let (outcome, artifact) = if let Some(mut hit) = cache.get(key) {
        hit.fingerprint = fingerprint;
        phase_spans = sink_phase_spans(&probe);
        (Outcome::Hit, Some(hit))
    } else {
        match guarded_attempt(job, config, false) {
            AttemptOutcome::Ok(mut ok) => {
                ok.artifact.fingerprint = fingerprint;
                cache.put(key, &ok.artifact);
                phase_spans = ok.phase_spans;
                (Outcome::Compiled, Some(ok.artifact))
            }
            AttemptOutcome::CompileError(e) if !e.guard && !e.overrun => {
                failure = Some((job.fn_name.clone(), e.detail));
                phase_spans = Vec::new();
                (Outcome::Failed, None)
            }
            faulted => {
                let (kind, detail) = match faulted {
                    AttemptOutcome::TimedOut => (
                        IncidentKind::Timeout,
                        format!(
                            "exceeded the {:?} per-function budget",
                            config.time_budget.unwrap_or_default()
                        ),
                    ),
                    AttemptOutcome::Panicked(d) => (IncidentKind::Panic, d),
                    // Only guard rejections and pass-budget overruns
                    // reach here; plain compile errors took the arm
                    // above.  An overrun is a timeout incident — same
                    // containment contract as the watchdog, but the
                    // detail names the pass.
                    AttemptOutcome::CompileError(e) if e.overrun => {
                        (IncidentKind::Timeout, e.detail)
                    }
                    AttemptOutcome::CompileError(e) => (IncidentKind::Guard, e.detail),
                    AttemptOutcome::Ok(_) => unreachable!("handled above"),
                };
                // Graceful degradation: transformations off, no fault
                // injection, no validators, panic-isolated.  Degraded
                // artifacts are never cached — the cache holds only
                // clean output.
                let retry = catch_unwind(AssertUnwindSafe(|| attempt(job, config, true)));
                let (outcome, artifact, recovered) = match retry {
                    Ok(Ok(mut ok)) => {
                        ok.artifact.fingerprint = fingerprint;
                        phase_spans = ok.phase_spans;
                        (Outcome::Degraded, Some(ok.artifact), true)
                    }
                    Ok(Err(e)) => {
                        failure = Some((job.fn_name.clone(), e.detail));
                        phase_spans = Vec::new();
                        (Outcome::Failed, None, false)
                    }
                    Err(payload) => {
                        failure = Some((job.fn_name.clone(), panic_detail(payload.as_ref())));
                        phase_spans = Vec::new();
                        (Outcome::Failed, None, false)
                    }
                };
                incident = Some(Incident {
                    function: job.fn_name.clone(),
                    unit: job.unit.clone(),
                    kind,
                    detail,
                    recovered,
                });
                (outcome, artifact)
            }
        }
    };
    JobResult {
        record: JobRecord {
            seq: job.seq,
            unit: job.unit.clone(),
            function: job.fn_name.clone(),
            worker,
            outcome,
            wall_us: elapsed_us(start),
            queue_us: 0,
            phase_spans,
        },
        artifact,
        incident,
        failure,
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The size estimate a job is scheduled by: convert the form with the
/// job's own option set and read the complexity analysis's
/// whole-function object-code estimate.  A form that fails to convert
/// estimates 0 — the job still runs (and records its failure) wherever
/// it lands in the queue.
fn size_estimate(job: &Job, config: &ServiceConfig) -> u32 {
    let mut probe = job_compiler(config, &job.specials, false);
    match probe.convert_str(&job.form) {
        Ok(pending) if pending.len() == 1 => pending[0].complexity_estimate(),
        _ => 0,
    }
}

/// The per-job metric handles a worker observes into: queue wait is the
/// time a job sat in the queue (from queue open to dequeue), job wall
/// the time the worker spent resolving it.
struct WorkerMetrics<'a> {
    queue_opened: Instant,
    queue_wait_us: &'a Histogram,
    job_wall_us: &'a Histogram,
}

fn worker_loop(
    worker: usize,
    queue: &Mutex<VecDeque<Job>>,
    config: &ServiceConfig,
    cache: &ArtifactCache,
    metrics: &WorkerMetrics<'_>,
    tx: &mpsc::Sender<JobResult>,
) {
    loop {
        let job = queue.lock().expect("job queue lock").pop_front();
        let Some(job) = job else { break };
        let queue_us = elapsed_us(metrics.queue_opened);
        metrics.queue_wait_us.observe(queue_us);
        let mut result = process_job(&job, config, cache, worker);
        result.record.queue_us = queue_us;
        metrics.job_wall_us.observe(result.record.wall_us);
        if tx.send(result).is_err() {
            break;
        }
    }
}

impl CompileService {
    /// A service over a fresh cache.
    pub fn new(config: ServiceConfig) -> CompileService {
        let metrics = Arc::new(MetricsRegistry::new());
        let cache = ArtifactCache::with_metrics(
            config.cache_capacity,
            config.cache_dir.clone(),
            config.disk_max_entries,
            config.fault_plan.clone(),
            Arc::clone(&metrics),
        );
        let queue_wait_us = metrics.histogram("service.queue_wait_us", TIME_BUCKETS_US);
        let job_wall_us = metrics.histogram("service.job_wall_us", TIME_BUCKETS_US);
        CompileService {
            config,
            cache,
            metrics,
            queue_wait_us,
            job_wall_us,
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The registry this service (and its cache) report into.  Lifetime
    /// totals across every batch; snapshot it between batches for
    /// deltas.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Lifetime cache traffic (across every batch this service ran).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Splits `units` into per-function jobs, fans them across the
    /// worker pool, and reassembles results in source order.  The cache
    /// is consulted per function and persists across calls, so
    /// recompiling an unchanged batch is pure cache traffic.
    ///
    /// Unlike [`Compiler::compile_str`], failures are isolated: a
    /// function that fails to convert, compile, or recover is recorded
    /// in [`BatchResult::failures`] while the rest of the batch
    /// completes.
    pub fn compile_batch(&self, units: &[SourceUnit]) -> BatchResult {
        self.compile_batch_with(units, BatchTuning::default())
    }

    /// [`CompileService::compile_batch`] with per-batch [`BatchTuning`]:
    /// the compile server's entry point, where each request batch
    /// carries its tenant's cache-key salt and (once the tenant's
    /// incident budget is exhausted) the transformations-off demotion.
    /// `compile_batch` is exactly this call with the default (inert)
    /// tuning.
    pub fn compile_batch_with(&self, units: &[SourceUnit], tuning: BatchTuning) -> BatchResult {
        let config = self.effective_config(tuning);
        let before = self.cache.stats();
        let mut jobs = Vec::new();
        let mut globals = Vec::new();
        let mut failures = Vec::new();
        for unit in units {
            match split_unit(unit, jobs.len()) {
                Ok(split) => {
                    jobs.extend(split.jobs);
                    globals.extend(split.globals);
                }
                Err(e) => failures.push((format!("unit {}", unit.name), e)),
            }
        }
        for j in &mut jobs {
            j.salt = tuning.key_salt;
        }
        let functions = jobs.len();
        let queue_peak = functions;
        let workers_used = config.jobs.max(1).min(functions.max(1));
        if config.schedule == Schedule::LargestFirst && jobs.len() > 1 {
            // Largest first: the biggest compilations start before the
            // queue thins out.  Results are reassembled by `seq`, so
            // this affects wall-clock only, never output.
            let mut keyed: Vec<(u32, Job)> = jobs
                .into_iter()
                .map(|j| (size_estimate(&j, &config), j))
                .collect();
            keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.seq.cmp(&b.1.seq)));
            jobs = keyed.into_iter().map(|(_, j)| j).collect();
        }
        let queue = Mutex::new(jobs.into_iter().collect::<VecDeque<_>>());
        let worker_metrics = WorkerMetrics {
            queue_opened: Instant::now(),
            queue_wait_us: &self.queue_wait_us,
            job_wall_us: &self.job_wall_us,
        };
        let (tx, rx) = mpsc::channel();
        if workers_used == 1 {
            // The degenerate serial path: same worker loop, caller's
            // thread, no pool.
            worker_loop(0, &queue, &config, &self.cache, &worker_metrics, &tx);
        } else {
            std::thread::scope(|s| {
                for worker in 0..workers_used {
                    let tx = tx.clone();
                    let queue = &queue;
                    let worker_metrics = &worker_metrics;
                    let config = &config;
                    s.spawn(move || {
                        worker_loop(worker, queue, config, &self.cache, worker_metrics, &tx);
                    });
                }
            });
        }
        drop(tx);
        let mut results: Vec<JobResult> = rx.into_iter().collect();
        results.sort_by_key(|r| r.record.seq);

        let mut workers: Vec<WorkerStats> = (0..workers_used)
            .map(|worker| WorkerStats {
                worker,
                jobs: 0,
                wall_us: 0,
            })
            .collect();
        let mut phase_totals: Vec<(String, u64, u64)> = Vec::new();
        let mut artifacts = Vec::new();
        let mut records = Vec::new();
        let mut incidents = Vec::new();
        for r in results {
            self.metrics
                .counter(&format!("service.outcome.{}", r.record.outcome.as_str()))
                .inc();
            if let Some(i) = &r.incident {
                self.metrics
                    .counter(&format!("service.incident.{}", i.kind.as_str()))
                    .inc();
            }
            if let Some(w) = workers.get_mut(r.record.worker) {
                w.jobs += 1;
                w.wall_us += r.record.wall_us;
            }
            for (phase, spans, wall) in &r.record.phase_spans {
                match phase_totals.iter_mut().find(|(p, _, _)| p == phase) {
                    Some(slot) => {
                        slot.1 += spans;
                        slot.2 += wall;
                    }
                    None => phase_totals.push((phase.clone(), *spans, *wall)),
                }
            }
            artifacts.extend(r.artifact);
            incidents.extend(r.incident);
            failures.extend(r.failure);
            records.push(r.record);
        }
        let mut batch = BatchResult {
            artifacts,
            records,
            incidents,
            failures,
            globals,
            stats: BatchStats {
                workers_used,
                schedule: config.schedule,
                functions,
                cache: self.cache.stats().since(&before),
                queue_peak,
                workers,
                phase_totals,
            },
            guard: None,
            cross: Vec::new(),
        };
        // Cross-backend first, so a guard report's containment verdict
        // sees any cross-backend miscompile incidents.
        if config.backend.cross_checked() {
            self.apply_cross_oracle(units, &mut batch);
        }
        if config.guard {
            self.apply_guard(units, &mut batch);
        }
        self.metrics.counter("service.batches").inc();
        self.metrics
            .counter("service.jobs")
            .add(batch.stats.functions as u64);
        self.metrics
            .gauge("service.queue_peak")
            .set(batch.stats.queue_peak as i64);
        self.metrics
            .gauge("cache.hit_rate_permille")
            .set(self.cache.stats().hit_rate_permille() as i64);
        batch
    }

    /// The configuration one batch actually compiles under: the
    /// service's, with the tenant demotion applied.  The salt is not a
    /// compiler option — it partitions cache keys only — so it does not
    /// appear here.
    fn effective_config(&self, tuning: BatchTuning) -> ServiceConfig {
        let mut cfg = self.config.clone();
        if tuning.transformations_off {
            cfg.opt_options = s1lisp::OptOptions::none();
            cfg.cse = false;
        }
        cfg
    }

    /// The post-batch guard pass: run the differential oracle over the
    /// configured cases, convert mismatches into [`IncidentKind::
    /// Miscompile`] incidents that ship the reference artifact, and
    /// attach the [`GuardReport`].
    fn apply_guard(&self, units: &[SourceUnit], batch: &mut BatchResult) {
        let plan = self
            .config
            .fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::new(0));
        let mut oracle = Vec::new();
        if !self.config.oracle.is_empty() {
            // Two serial compilations of the same units: one with the
            // batch's options, one with every transformation off.  The
            // reference side is the ground truth the paper's §7
            // transformations must preserve.
            let mut opt_c = self.oracle_compiler(false);
            let mut ref_c = self.oracle_compiler(true);
            for u in units {
                // A unit that fails here already failed in the batch;
                // the oracle is best-effort over what compiled.
                let _ = catch_unwind(AssertUnwindSafe(|| opt_c.compile_str(&u.source).map(drop)));
                let _ = catch_unwind(AssertUnwindSafe(|| ref_c.compile_str(&u.source).map(drop)));
            }
            for case in &self.config.oracle {
                match self.judge_case(case, &plan, &opt_c, &ref_c, batch) {
                    Ok(verdict) => oracle.push(verdict),
                    Err(e) => batch.failures.push((format!("oracle {}", case.entry), e)),
                }
            }
        }
        let contained = batch.failures.is_empty() && batch.incidents.iter().all(|i| i.recovered);
        batch.guard = Some(GuardReport {
            seed: plan.seed,
            armed: plan
                .armed_sites()
                .into_iter()
                .map(|(site, rate)| (site.to_string(), rate))
                .collect(),
            oracle,
            disk_disabled: self.cache.disk_disabled(),
            contained,
        });
    }

    /// A serial compiler for one side of the oracle.
    fn oracle_compiler(&self, reference: bool) -> Compiler {
        let mut c = Compiler::new();
        c.opt_options = if reference {
            s1lisp::OptOptions::none()
        } else {
            self.config.opt_options.clone()
        };
        c.cse = self.config.cse && !reference;
        c.codegen_options = self.config.codegen_options.clone();
        c.tension_branches = self.config.tension_branches;
        c.backend = self.config.backend.primary();
        c
    }

    /// A serial, batch-options compiler for one side of the
    /// cross-backend oracle.
    fn backend_compiler(&self, backend: BackendKind) -> Compiler {
        let mut c = self.oracle_compiler(false);
        c.backend = backend;
        c
    }

    /// The post-batch cross-backend pass ([`BackendSelect::Both`](crate::BackendSelect::Both)):
    /// recompile every unit for both backends, run each oracle case on
    /// the S-1 simulator and the bytecode evaluator under
    /// [`ServiceConfig::oracle_fuel`], and record any disagreement as a
    /// [`IncidentKind::Miscompile`].  The batch already holds the S-1
    /// artifacts, so the safe side is what ships either way.
    fn apply_cross_oracle(&self, units: &[SourceUnit], batch: &mut BatchResult) {
        if self.config.oracle.is_empty() {
            return;
        }
        let plan = self
            .config
            .fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::new(0));
        let mut s1_c = self.backend_compiler(BackendKind::S1);
        let mut bc_c = self.backend_compiler(BackendKind::Bytecode);
        for u in units {
            // A unit that fails here already failed in the batch; the
            // oracle is best-effort over what compiled.
            let _ = catch_unwind(AssertUnwindSafe(|| s1_c.compile_str(&u.source).map(drop)));
            let _ = catch_unwind(AssertUnwindSafe(|| bc_c.compile_str(&u.source).map(drop)));
        }
        for case in &self.config.oracle {
            match self.judge_cross(case, &plan, &s1_c, &bc_c, batch) {
                Ok(verdict) => batch.cross.push(verdict),
                Err(e) => batch
                    .failures
                    .push((format!("cross-oracle {}", case.entry), e)),
            }
        }
    }

    /// Runs one cross-backend case on both engines and, on a mismatch,
    /// records a miscompile incident.  Two traps agree as traps — the
    /// engines word (and meter) their diagnostics differently.
    fn judge_cross(
        &self,
        case: &OracleCase,
        plan: &FaultPlan,
        s1_c: &Compiler,
        bc_c: &Compiler,
        batch: &mut BatchResult,
    ) -> Result<CrossVerdict, String> {
        let mut interner = Interner::new();
        let mut args = Vec::new();
        for a in &case.args {
            let d = read_str(a, &mut interner).map_err(|e| format!("argument {a}: {e}"))?;
            args.push(Value::from_datum(&d));
        }
        let s1 = {
            let mut m = s1_c.machine();
            m.fuel_per_run = self.config.oracle_fuel;
            match m.run(&case.entry, &args) {
                Ok(v) => v.to_string(),
                Err(t) => format!("trap: {t}"),
            }
        };
        let mut bytecode = {
            let mut e = bc_c.evaluator();
            e.fuel_per_run = self.config.oracle_fuel;
            match e.run(&case.entry, &args) {
                Ok(v) => v.to_string(),
                Err(t) => format!("trap: {t}"),
            }
        };
        let mut injected = false;
        if plan.fires(FaultSite::Miscompile, &case.entry) {
            bytecode.push_str(" [injected miscompile]");
            injected = true;
        }
        let both_trap = s1.starts_with("trap:") && bytecode.starts_with("trap:");
        let matched = both_trap || s1 == bytecode;
        if !matched {
            // The batch compiled with the S-1 backend, so the shipped
            // artifact is already the reference side; recovery here
            // means confirming it is present.
            let recovered = batch
                .artifact(&case.entry)
                .is_some_and(|a| a.backend == BackendKind::S1.name());
            let unit = batch
                .records
                .iter()
                .find(|r| r.function == case.entry)
                .map_or_else(|| "cross-oracle".to_string(), |r| r.unit.clone());
            batch.incidents.push(Incident {
                function: case.entry.clone(),
                unit,
                kind: IncidentKind::Miscompile,
                detail: format!("cross-backend mismatch: s1 gave {s1}, bytecode gave {bytecode}"),
                recovered,
            });
        }
        Ok(CrossVerdict {
            entry: case.entry.clone(),
            matched,
            s1,
            bytecode,
            injected,
        })
    }

    /// Runs one oracle case on both sides and, on a mismatch, records a
    /// miscompile incident and ships the reference artifact.
    fn judge_case(
        &self,
        case: &OracleCase,
        plan: &FaultPlan,
        opt_c: &Compiler,
        ref_c: &Compiler,
        batch: &mut BatchResult,
    ) -> Result<OracleVerdict, String> {
        let mut interner = Interner::new();
        let mut args = Vec::new();
        for a in &case.args {
            let d = read_str(a, &mut interner).map_err(|e| format!("argument {a}: {e}"))?;
            args.push(Value::from_datum(&d));
        }
        let run = |c: &Compiler, batch: &BatchResult| -> String {
            // Under the bytecode backend both oracle sides run on the
            // stack evaluator (the compiler's own globals mirror the
            // batch's — both come from the same units' `defvar`s).
            if c.backend == BackendKind::Bytecode {
                let mut e = c.evaluator();
                e.fuel_per_run = self.config.oracle_fuel;
                return match e.run(&case.entry, &args) {
                    Ok(v) => v.to_string(),
                    Err(t) => format!("trap: {t}"),
                };
            }
            let mut m = Machine::new(c.program().clone());
            if let Err(e) = batch.load_globals(&mut m) {
                return format!("trap: {e}");
            }
            m.fuel_per_run = self.config.oracle_fuel;
            match m.run(&case.entry, &args) {
                Ok(v) => v.to_string(),
                Err(t) => format!("trap: {t}"),
            }
        };
        let reference = run(ref_c, batch);
        let mut optimized = run(opt_c, batch);
        let mut injected = false;
        if plan.fires(FaultSite::SimTrap, &case.entry) {
            optimized = "trap: injected simulator fault".to_string();
            injected = true;
        }
        if plan.fires(FaultSite::Miscompile, &case.entry) {
            optimized.push_str(" [injected miscompile]");
            injected = true;
        }
        let matched = optimized == reference;
        if !matched {
            // Ship the reference compiler's artifact in place of the
            // suspect one, marked degraded — the same contract as the
            // panic/timeout recovery path.
            let mut recovered = false;
            if let Some(mut a) = ref_c.artifact(&case.entry) {
                a.degraded = true;
                if let Some(slot) = batch
                    .artifacts
                    .iter_mut()
                    .rev()
                    .find(|x| x.name == case.entry)
                {
                    a.fingerprint = slot.fingerprint;
                    *slot = a;
                    recovered = true;
                }
            }
            let unit = batch
                .records
                .iter()
                .find(|r| r.function == case.entry)
                .map_or_else(|| "oracle".to_string(), |r| r.unit.clone());
            if let Some(r) = batch.records.iter_mut().find(|r| r.function == case.entry) {
                r.outcome = Outcome::Degraded;
            }
            batch.incidents.push(Incident {
                function: case.entry.clone(),
                unit,
                kind: IncidentKind::Miscompile,
                detail: format!(
                    "oracle mismatch: optimized gave {optimized}, reference gave {reference}"
                ),
                recovered,
            });
        }
        Ok(OracleVerdict {
            entry: case.entry.clone(),
            matched,
            optimized,
            reference,
            injected,
        })
    }
}

struct SplitUnit {
    jobs: Vec<Job>,
    globals: Vec<(String, String)>,
    /// Every special proclaimed (or `defvar`ed) anywhere in the unit,
    /// in declaration order.
    specials: Vec<String>,
}

/// The declarations one unit contributes to a long-lived session: the
/// specials it proclaims (or `defvar`s), in order, and its `defvar`
/// globals as `(name, printed constant initializer)` pairs.
pub type UnitDecls = (Vec<String>, Vec<(String, String)>);

/// Extracts the [`UnitDecls`] of one unit.
///
/// This is the compile server's linking hook: after serving a tenant's
/// unit, the tenant's namespace absorbs these so every *subsequent*
/// request compiles against them — the load-link-on-demand shape, with
/// exactly the dispatch rules of the batch splitter.
///
/// # Errors
///
/// A description of the first malformed or unsupported top-level form.
pub fn unit_decls(source: &str) -> Result<UnitDecls, String> {
    let unit = SourceUnit::new("decls", source);
    let split = split_unit(&unit, 0)?;
    Ok((split.specials, split.globals))
}

/// Splits one unit into hermetic jobs, mirroring the top-level dispatch
/// of `Frontend::convert_toplevel`: `defun`s become jobs; `proclaim`ed
/// and `defvar`ed names accumulate into the specials every *subsequent*
/// job carries; `defvar` constant initializers are recorded as globals.
fn split_unit(unit: &SourceUnit, first_seq: usize) -> Result<SplitUnit, String> {
    let mut interner = Interner::new();
    let forms = read_all_str(&unit.source, &mut interner).map_err(|e| e.to_string())?;
    let mut specials: Vec<String> = Vec::new();
    let mut jobs = Vec::new();
    let mut globals = Vec::new();
    for form in &forms {
        let head = form.car().and_then(|h| h.as_symbol().cloned());
        match head.as_ref().map(|s| s.as_str()) {
            Some("defun") => {
                let fn_name = form
                    .cdr()
                    .and_then(|d| d.car())
                    .and_then(|d| d.as_symbol().cloned())
                    .ok_or("malformed defun")?;
                jobs.push(Job {
                    seq: first_seq + jobs.len(),
                    unit: unit.name.clone(),
                    fn_name: fn_name.as_str().to_string(),
                    form: form.to_string(),
                    specials: specials.clone(),
                    salt: 0,
                });
            }
            Some("defvar") => {
                let rest = form.cdr().unwrap_or(Datum::Nil);
                let name = rest
                    .car()
                    .and_then(|d| d.as_symbol().cloned())
                    .ok_or("malformed defvar")?;
                specials.push(name.as_str().to_string());
                if let Some(init) = rest.cdr().and_then(|d| d.car()) {
                    let constant = init.is_self_evaluating()
                        || init.is_nil()
                        || init.as_symbol().is_some_and(|s| s.as_str() == "t")
                        || init
                            .car()
                            .and_then(|h| h.as_symbol().cloned())
                            .is_some_and(|s| s.as_str() == "quote");
                    if !constant {
                        return Err(format!("defvar initializer must be a constant: {form}"));
                    }
                    globals.push((name.as_str().to_string(), init.to_string()));
                }
            }
            Some("proclaim") => {
                let spec = form
                    .cdr()
                    .and_then(|d| d.car())
                    .and_then(|d| d.cdr()?.car())
                    .ok_or("malformed proclaim")?;
                let items = spec.proper_list().ok_or("malformed proclaim")?;
                if items
                    .first()
                    .and_then(|h| h.as_symbol().map(|s| s.as_str()))
                    == Some("special")
                {
                    for s in &items[1..] {
                        if let Some(sym) = s.as_symbol() {
                            specials.push(sym.as_str().to_string());
                        }
                    }
                }
            }
            _ => {
                return Err(format!(
                    "unsupported top-level form (want defun/defvar/proclaim): {form}"
                ))
            }
        }
    }
    Ok(SplitUnit {
        jobs,
        globals,
        specials,
    })
}
