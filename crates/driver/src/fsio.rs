//! The shared durable-write discipline.
//!
//! The artifact cache (PR 3/4) established how this workspace touches
//! disk: temp-then-rename so no reader ever sees a half-written file,
//! bounded retries with a short deterministic backoff so transient
//! failures stay transient, and strike-out accounting at the call site
//! so persistent failures degrade a tier instead of failing work.  The
//! compile server's write-ahead journal needs exactly the same
//! discipline — plus `fsync`, which a cache can skip (a lost cache
//! entry is a miss; a lost journal record is a lost acknowledgement).
//! This module is that discipline extracted once, shared by both.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// Attempts per disk I/O operation (1 initial + retries).
pub const IO_ATTEMPTS: u32 = 3;

/// The deterministic backoff before retry `attempt` (0-based):
/// 50 µs, 100 µs, 200 µs, …
pub fn io_backoff(attempt: u32) -> Duration {
    Duration::from_micros(50 << attempt)
}

/// Runs `op` up to `attempts` times, sleeping [`io_backoff`] between
/// tries and calling `on_retry` once per retry (so callers can count
/// them).  The closure receives the 0-based attempt index, which is how
/// fault plans doom a deterministic prefix of attempts.
///
/// # Errors
///
/// The last attempt's error once every retry is exhausted.
pub fn with_io_retries<T>(
    attempts: u32,
    mut on_retry: impl FnMut(),
    mut op: impl FnMut(u32) -> io::Result<T>,
) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 >= attempts.max(1) => return Err(e),
            Err(_) => {
                on_retry();
                std::thread::sleep(io_backoff(attempt));
                attempt += 1;
            }
        }
    }
}

/// Writes `bytes` to `path` atomically: the bytes land in a
/// process-unique temp file first and are renamed into place, so a
/// concurrent reader (or a crashed writer) never leaves a half-written
/// file at `path`.  With `durable` set the file is fsynced before the
/// rename and the containing directory after it — the write has reached
/// stable storage when this returns.  On failure the temp file is
/// removed.
///
/// # Errors
///
/// The first failing step (create, write, sync, or rename).
pub fn atomic_write(path: &Path, bytes: &[u8], durable: bool) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if durable {
            f.sync_all()?;
        }
        drop(f);
        std::fs::rename(&tmp, path)?;
        if durable {
            sync_parent_dir(path)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable.  A no-op when `path` has no parent.
///
/// # Errors
///
/// Propagates the open or sync failure.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => File::open(dir)?.sync_all(),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("s1lisp-fsio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tempdir("atomic");
        let path = dir.join("state.json");
        atomic_write(&path, b"one", false).unwrap();
        atomic_write(&path, b"two", true).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let stray = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(stray, 1, "temp files must not linger");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_cleans_up_its_temp() {
        let dir = tempdir("fail");
        // The destination's parent does not exist: create fails.
        let path = dir.join("missing").join("state.json");
        assert!(atomic_write(&path, b"x", false).is_err());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_are_counted_and_doom_prefixes_resolve() {
        let mut retries = 0;
        let out = with_io_retries(
            IO_ATTEMPTS,
            || retries += 1,
            |attempt| {
                if attempt < 2 {
                    Err(io::Error::other("doomed"))
                } else {
                    Ok(attempt)
                }
            },
        )
        .unwrap();
        assert_eq!(out, 2);
        assert_eq!(retries, 2);
        // All attempts doomed: the last error surfaces.
        let mut retries = 0;
        let out: io::Result<()> = with_io_retries(
            IO_ATTEMPTS,
            || retries += 1,
            |_| Err(io::Error::other("doomed")),
        );
        assert!(out.is_err());
        assert_eq!(retries, IO_ATTEMPTS as usize - 1);
    }
}
