//! TNBIND: global storage allocation by temporary names (§6.1).
//!
//! "In the TNBIND technique a TN (this term means 'temporary name', and
//! refers to a small data structure) is assigned to every computational
//! quantity in the program, both user variables and intermediate
//! results.  Each TN is annotated on the basis of the context of its use
//! as to the costs associated with allocating it to one or another kind
//! of storage location … After all TNs have been annotated, a global
//! packing process assigns each TN to a specific run-time storage
//! location."
//!
//! By "register allocation" the paper means "the compile-time
//! determination of storage locations for all computational quantities,
//! whether such storage locations be in registers, static memory, stack
//! frames, or the heap" — this crate does the same: every TN ends up in a
//! [`Location`]: a register or a stack-frame slot.
//!
//! The S-1-specific wrinkle is the RT registers: "many (though not all)
//! arithmetic operations must pass through one of the two special
//! registers RTA and RTB … for the best code a clever dance is often
//! needed."  TNs can declare an RT preference; the packer weighs it.
//!
//! "Compilation time can be traded for run-time efficiency here by
//! making the packing process more or less clever; for example, a
//! packing method that backtracks can potentially produce better packings
//! than one that does not" — both [`pack`] (greedy) and
//! [`pack_backtracking`] are provided, plus the [`pack_naive`]
//! all-in-memory baseline for the ablation experiments.
//!
//! # Examples
//!
//! ```
//! use s1lisp_tnbind::{Packing, PackRequest, TnPool, Location};
//!
//! let mut pool = TnPool::new();
//! let x = pool.new_tn("x");
//! pool.record_use(x, 0);
//! pool.record_use(x, 4);
//! let y = pool.new_tn("y");
//! pool.record_use(y, 1);
//! pool.record_use(y, 2);
//! let packing = s1lisp_tnbind::pack(&pool, &PackRequest::default());
//! // Both fit in registers (no calls intervene).
//! assert!(matches!(packing.location(x), Location::Reg(_)));
//! assert!(matches!(packing.location(y), Location::Reg(_)));
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;

/// Identifier of a temporary name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TnId(u32);

impl TnId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for TnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tn{}", self.0)
    }
}

/// A run-time storage location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Location {
    /// A machine register (by register number).
    Reg(u8),
    /// A stack-frame slot (by frame index).
    Slot(u16),
}

/// Storage-class constraints a TN may carry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageClass {
    /// Register or slot, packer's choice.
    #[default]
    Any,
    /// Must live in memory (e.g. pdl-number slots: "it must be allocated
    /// to the scratch (non-pointer) region of the stack, not to a
    /// register", §6.3).
    SlotOnly,
    /// Must live in a register.
    RegOnly,
}

/// One temporary name.
#[derive(Clone, Debug)]
pub struct Tn {
    /// Debugging label.
    pub name: String,
    /// First use position (in the linearized code order).
    pub first: u32,
    /// Last use position.
    pub last: u32,
    /// Number of uses (priority weight).
    pub uses: u32,
    /// Constraint.
    pub class: StorageClass,
    /// Prefers an RT register (operand of 2½-address arithmetic).
    pub rt_preference: bool,
    /// Affinity edges: TNs that would like the same location ("two
    /// others might desirably be allocated to the same place because one
    /// is logically copied to the other at some point").
    pub affinities: Vec<TnId>,
}

impl Tn {
    /// Do two TNs' live ranges intersect (so they may not share a
    /// location)?
    pub fn overlaps(&self, other: &Tn) -> bool {
        // Live ranges are inclusive: two TNs conflict when their ranges
        // intersect ("two TNs might be forbidden to occupy the same place
        // because their lifetimes overlap").
        self.first <= other.last && other.first <= self.last
    }
}

/// The collection of TNs for one function, plus the call sites that
/// clobber registers.
#[derive(Clone, Debug, Default)]
pub struct TnPool {
    tns: Vec<Tn>,
    /// Positions of full procedure calls ("calls to other procedures by
    /// convention may destroy nearly all registers", §7).
    pub call_positions: Vec<u32>,
    /// Loop regions `(start, end)`: control may jump from `end` back to
    /// `start`, so any lifetime touching the region effectively spans it.
    pub loop_regions: Vec<(u32, u32)>,
}

impl TnPool {
    /// An empty pool.
    pub fn new() -> TnPool {
        TnPool::default()
    }

    /// Creates a TN.
    pub fn new_tn(&mut self, name: &str) -> TnId {
        let id = TnId(self.tns.len() as u32);
        self.tns.push(Tn {
            name: name.to_string(),
            first: u32::MAX,
            last: 0,
            uses: 0,
            class: StorageClass::Any,
            rt_preference: false,
            affinities: Vec::new(),
        });
        id
    }

    /// Records a use of `tn` at code position `pos`.
    pub fn record_use(&mut self, tn: TnId, pos: u32) {
        let t = &mut self.tns[tn.index()];
        t.first = t.first.min(pos);
        t.last = t.last.max(pos);
        t.uses += 1;
    }

    /// Records a register-clobbering call at `pos`.
    pub fn record_call(&mut self, pos: u32) {
        self.call_positions.push(pos);
    }

    /// Records a loop region (a backward branch from `end` to `start`).
    pub fn record_loop(&mut self, start: u32, end: u32) {
        if start < end {
            self.loop_regions.push((start, end));
        }
    }

    /// The lifetime of `tn` extended across every loop it touches: a
    /// value live anywhere inside a loop is live for the whole loop,
    /// because the backward branch re-enters the region.
    pub fn effective_range(&self, tn: TnId) -> (u32, u32) {
        let t = &self.tns[tn.index()];
        let (mut f, mut l) = (t.first, t.last);
        loop {
            let mut changed = false;
            for &(rs, re) in &self.loop_regions {
                if f <= re && rs <= l && (rs < f || re > l) {
                    f = f.min(rs);
                    l = l.max(re);
                    changed = true;
                }
            }
            if !changed {
                return (f, l);
            }
        }
    }

    /// Constrains the TN's storage class.
    pub fn set_class(&mut self, tn: TnId, class: StorageClass) {
        self.tns[tn.index()].class = class;
    }

    /// Marks an RT-register preference.
    pub fn prefer_rt(&mut self, tn: TnId) {
        self.tns[tn.index()].rt_preference = true;
    }

    /// Declares that `a` and `b` would like the same location.
    pub fn add_affinity(&mut self, a: TnId, b: TnId) {
        self.tns[a.index()].affinities.push(b);
        self.tns[b.index()].affinities.push(a);
    }

    /// Access to a TN.
    pub fn tn(&self, id: TnId) -> &Tn {
        &self.tns[id.index()]
    }

    /// Number of TNs.
    pub fn len(&self) -> usize {
        self.tns.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.tns.is_empty()
    }

    /// All TN ids.
    pub fn ids(&self) -> impl Iterator<Item = TnId> {
        (0..self.tns.len() as u32).map(TnId)
    }

    /// Does the TN's lifetime cross a call (so a register would be
    /// clobbered)?  Matches §7's commentary on `testfn`: "TNBIND
    /// determined that e must survive the call to frotz … calls to other
    /// procedures by convention may destroy nearly all registers."
    pub fn crosses_call(&self, tn: TnId) -> bool {
        let (first, last) = self.effective_range(tn);
        self.call_positions.iter().any(|&c| first < c && c < last)
    }

    /// Number of edges in the TN conflict graph: unordered pairs of TNs
    /// whose lifetimes overlap.  O(n²) — telemetry only; the packers
    /// never materialize the graph.
    pub fn conflict_edges(&self) -> u64 {
        let ids: Vec<TnId> = self.ids().collect();
        let mut edges = 0u64;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if self.tn(a).overlaps(self.tn(b)) {
                    edges += 1;
                }
            }
        }
        edges
    }
}

/// Packing parameters.
#[derive(Clone, Debug)]
pub struct PackRequest {
    /// General-purpose register numbers available for allocation.
    pub registers: Vec<u8>,
    /// The RT (arithmetic bottleneck) register numbers.
    pub rt_registers: Vec<u8>,
    /// First frame slot index available for spills.
    pub first_slot: u16,
}

impl Default for PackRequest {
    fn default() -> PackRequest {
        PackRequest {
            // R9..R15 general, matching the codegen conventions.
            registers: (9..=15).collect(),
            rt_registers: vec![4, 6], // RTA, RTB
            first_slot: 0,
        }
    }
}

/// The result of packing.
#[derive(Clone, Debug)]
pub struct Packing {
    locations: Vec<Location>,
    /// Number of frame slots consumed.
    pub slots_used: u16,
    /// TNs that got registers.
    pub in_registers: usize,
}

impl Packing {
    /// The location assigned to `tn`.
    pub fn location(&self, tn: TnId) -> Location {
        self.locations[tn.index()]
    }
}

/// Greedy interval packing: highest-priority TNs get registers first;
/// RT-preferring TNs try the RT registers first; lifetimes crossing a
/// call are forced to memory.
pub fn pack(pool: &TnPool, req: &PackRequest) -> Packing {
    let mut order: Vec<TnId> = pool.ids().filter(|&t| pool.tn(t).uses > 0).collect();
    order.sort_by_key(|&t| {
        let tn = pool.tn(t);
        (std::cmp::Reverse(tn.uses), tn.last - tn.first, t)
    });
    pack_in_order(pool, req, &order)
}

/// The all-in-memory baseline (what a compiler without TNBIND would do);
/// used by the ablation experiments E5/E12.
pub fn pack_naive(pool: &TnPool, req: &PackRequest) -> Packing {
    let mut locations = vec![Location::Slot(0); pool.len()];
    let mut next = req.first_slot;
    for id in pool.ids() {
        if pool.tn(id).uses == 0 {
            continue;
        }
        locations[id.index()] = Location::Slot(next);
        next += 1;
    }
    Packing {
        locations,
        slots_used: next - req.first_slot,
        in_registers: 0,
    }
}

/// Backtracking packer: tries several priority orders and keeps the
/// packing with the most TNs in registers ("a packing method that
/// backtracks can potentially produce better packings", §6.1).
pub fn pack_backtracking(pool: &TnPool, req: &PackRequest, tries: usize) -> Packing {
    let mut best = pack(pool, req);
    let ids: Vec<TnId> = pool.ids().filter(|&t| pool.tn(t).uses > 0).collect();
    // Deterministic rotations of the priority order.
    for k in 1..tries.max(1) {
        if ids.is_empty() {
            break;
        }
        let mut order = ids.clone();
        let n = order.len();
        order.rotate_left(k % n);
        let candidate = pack_in_order(pool, req, &order);
        if candidate.in_registers > best.in_registers
            || (candidate.in_registers == best.in_registers
                && candidate.slots_used < best.slots_used)
        {
            best = candidate;
        }
    }
    best
}

fn pack_in_order(pool: &TnPool, req: &PackRequest, order: &[TnId]) -> Packing {
    let mut locations = vec![Location::Slot(u16::MAX); pool.len()];
    let mut assigned: HashMap<TnId, Location> = HashMap::new();
    let mut reg_intervals: HashMap<u8, Vec<(u32, u32)>> = HashMap::new();
    let mut slot_intervals: Vec<Vec<(u32, u32)>> = Vec::new();

    let fits = |intervals: &[(u32, u32)], range: (u32, u32)| {
        intervals
            .iter()
            .all(|&(f, l)| !(f <= range.1 && range.0 <= l))
    };

    for &id in order {
        let tn = pool.tn(id);
        let range = pool.effective_range(id);
        let reg_ok = tn.class != StorageClass::SlotOnly && !pool.crosses_call(id);

        // Affinity first: inherit a partner's location when legal.
        let mut chosen: Option<Location> = None;
        for &buddy in &tn.affinities {
            if let Some(&loc) = assigned.get(&buddy) {
                let legal = match loc {
                    Location::Reg(r) => {
                        reg_ok && fits(reg_intervals.get(&r).map_or(&[][..], |v| v), range)
                    }
                    Location::Slot(s) => fits(&slot_intervals[s as usize], range),
                };
                if legal {
                    chosen = Some(loc);
                    break;
                }
            }
        }
        // RT preference, then general registers.
        if chosen.is_none() && reg_ok {
            let pools: Vec<&[u8]> = if tn.rt_preference {
                vec![&req.rt_registers, &req.registers]
            } else {
                vec![&req.registers, &req.rt_registers]
            };
            'outer: for regs in pools {
                for &r in regs {
                    if fits(reg_intervals.get(&r).map_or(&[][..], |v| v), range) {
                        chosen = Some(Location::Reg(r));
                        break 'outer;
                    }
                }
            }
        }
        // Fall back to a frame slot, reusing dead ones.
        let loc = chosen.unwrap_or_else(|| {
            for (s, intervals) in slot_intervals.iter().enumerate() {
                if fits(intervals, range) {
                    return Location::Slot(req.first_slot + s as u16);
                }
            }
            slot_intervals.push(Vec::new());
            Location::Slot(req.first_slot + (slot_intervals.len() - 1) as u16)
        });
        if tn.class == StorageClass::RegOnly {
            assert!(
                matches!(loc, Location::Reg(_)),
                "TN {} requires a register but none fits",
                tn.name
            );
        }
        match loc {
            Location::Reg(r) => reg_intervals.entry(r).or_default().push(range),
            Location::Slot(s) => {
                let idx = (s - req.first_slot) as usize;
                slot_intervals[idx].push(range);
            }
        }
        locations[id.index()] = loc;
        assigned.insert(id, loc);
    }

    let in_registers = assigned
        .values()
        .filter(|l| matches!(l, Location::Reg(_)))
        .count();
    Packing {
        locations,
        slots_used: slot_intervals.len() as u16,
        in_registers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tn_with_range(pool: &mut TnPool, name: &str, first: u32, last: u32) -> TnId {
        let t = pool.new_tn(name);
        pool.record_use(t, first);
        pool.record_use(t, last);
        t
    }

    #[test]
    fn disjoint_lifetimes_share_a_register() {
        let mut pool = TnPool::new();
        let a = tn_with_range(&mut pool, "a", 0, 3);
        let b = tn_with_range(&mut pool, "b", 4, 7);
        let req = PackRequest {
            registers: vec![9],
            ..PackRequest::default()
        };
        let p = pack(&pool, &req);
        assert_eq!(p.location(a), p.location(b));
        assert!(matches!(p.location(a), Location::Reg(9)));
    }

    #[test]
    fn overlapping_lifetimes_conflict() {
        let mut pool = TnPool::new();
        let a = tn_with_range(&mut pool, "a", 0, 5);
        let b = tn_with_range(&mut pool, "b", 3, 8);
        let req = PackRequest {
            registers: vec![9],
            rt_registers: vec![],
            ..PackRequest::default()
        };
        let p = pack(&pool, &req);
        assert_ne!(p.location(a), p.location(b));
        // One spilled to a slot.
        let slots = [a, b]
            .iter()
            .filter(|&&t| matches!(p.location(t), Location::Slot(_)))
            .count();
        assert_eq!(slots, 1);
    }

    #[test]
    fn call_crossing_forces_memory() {
        // §7: e survives the call to frotz and therefore lives on the
        // stack; d does not and may have a register.
        let mut pool = TnPool::new();
        let d = tn_with_range(&mut pool, "d", 0, 4);
        let e = tn_with_range(&mut pool, "e", 1, 9);
        pool.record_call(5);
        let p = pack(&pool, &PackRequest::default());
        assert!(matches!(p.location(d), Location::Reg(_)));
        assert!(matches!(p.location(e), Location::Slot(_)));
        assert!(pool.crosses_call(e));
        assert!(!pool.crosses_call(d));
    }

    #[test]
    fn rt_preference_wins_rt_registers() {
        let mut pool = TnPool::new();
        let x = tn_with_range(&mut pool, "x", 0, 2);
        pool.prefer_rt(x);
        let p = pack(&pool, &PackRequest::default());
        assert!(matches!(p.location(x), Location::Reg(4 | 6)));
    }

    #[test]
    fn slot_only_class_is_respected() {
        // Pdl-number TNs must be stack slots.
        let mut pool = TnPool::new();
        let x = tn_with_range(&mut pool, "pdl", 0, 2);
        pool.set_class(x, StorageClass::SlotOnly);
        let p = pack(&pool, &PackRequest::default());
        assert!(matches!(p.location(x), Location::Slot(_)));
    }

    #[test]
    fn affinity_merges_locations() {
        let mut pool = TnPool::new();
        let a = tn_with_range(&mut pool, "a", 0, 3);
        let b = tn_with_range(&mut pool, "b", 4, 6);
        pool.add_affinity(a, b);
        let p = pack(&pool, &PackRequest::default());
        assert_eq!(p.location(a), p.location(b), "copy elimination");
    }

    #[test]
    fn naive_packing_uses_only_slots() {
        let mut pool = TnPool::new();
        let a = tn_with_range(&mut pool, "a", 0, 1);
        let b = tn_with_range(&mut pool, "b", 2, 3);
        let p = pack_naive(&pool, &PackRequest::default());
        assert!(matches!(p.location(a), Location::Slot(_)));
        assert!(matches!(p.location(b), Location::Slot(_)));
        assert_eq!(p.in_registers, 0);
        assert_eq!(p.slots_used, 2);
    }

    #[test]
    fn backtracking_never_does_worse() {
        let mut pool = TnPool::new();
        for i in 0..12 {
            let t = tn_with_range(&mut pool, &format!("t{i}"), i, i + 6);
            if i % 3 == 0 {
                pool.prefer_rt(t);
            }
        }
        pool.record_call(9);
        let req = PackRequest::default();
        let greedy = pack(&pool, &req);
        let better = pack_backtracking(&pool, &req, 8);
        assert!(better.in_registers >= greedy.in_registers);
    }

    #[test]
    fn loop_regions_extend_lifetimes() {
        // n is read at position 2 inside a loop [1, 10]; p is written at
        // 8 and read at 9.  Linearly disjoint, but the backedge makes n
        // live at 8–9 too: they must not share a register.
        let mut pool = TnPool::new();
        let n = tn_with_range(&mut pool, "n", 2, 2);
        let p = tn_with_range(&mut pool, "p", 8, 9);
        pool.record_loop(1, 10);
        assert_eq!(pool.effective_range(n), (1, 10));
        let q = pack(&pool, &PackRequest::default());
        assert_ne!(q.location(n), q.location(p));
        // A TN entirely outside the loop is unaffected.
        let o = tn_with_range(&mut pool, "o", 12, 14);
        assert_eq!(pool.effective_range(o), (12, 14));
    }

    #[test]
    fn slots_are_reused_after_death() {
        let mut pool = TnPool::new();
        pool.record_call(100); // force everything to memory
        let mut ids = Vec::new();
        for i in 0..6 {
            let t = tn_with_range(&mut pool, &format!("t{i}"), i * 10, i * 10 + 5);
            pool.record_use(t, 99);
            ids.push(t);
        }
        // All cross the call at 100? No: last use 99 < 100, so they
        // don't cross; force with class instead.
        for &t in &ids {
            pool.set_class(t, StorageClass::SlotOnly);
        }
        let p = pack(&pool, &PackRequest::default());
        // All overlap at 99 … so all need distinct slots.
        assert_eq!(p.slots_used, 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use s1lisp_trace::rng::SplitMix64;

    /// Packing invariant: TNs with overlapping lifetimes never share
    /// a location.
    #[test]
    fn no_overlapping_tns_share_locations() {
        let mut rng = SplitMix64::new(0x5115_0005);
        for _case in 0..256 {
            let ranges: Vec<(u32, u32)> = (0..rng.range_usize(1, 24))
                .map(|_| (rng.below(64) as u32, rng.below(16) as u32))
                .collect();
            let calls: Vec<u32> = (0..rng.range_usize(0, 4))
                .map(|_| rng.below(64) as u32)
                .collect();
            let mut pool = TnPool::new();
            let mut ids = Vec::new();
            for (i, &(start, len)) in ranges.iter().enumerate() {
                let t = pool.new_tn(&format!("t{i}"));
                pool.record_use(t, start);
                pool.record_use(t, start + len);
                ids.push(t);
            }
            for &c in &calls {
                pool.record_call(c);
            }
            let p = pack(&pool, &PackRequest::default());
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if pool.tn(a).overlaps(pool.tn(b)) {
                        assert_ne!(p.location(a), p.location(b));
                    }
                }
            }
            // And register TNs never cross calls.
            for &t in &ids {
                if matches!(p.location(t), Location::Reg(_)) {
                    assert!(!pool.crosses_call(t));
                }
            }
        }
    }
}
