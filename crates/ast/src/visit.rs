//! Tree traversal utilities.
//!
//! Code generation is "a single pass (a postorder tree walk) over the
//! internal tree" (§4); the analyses walk subtrees in both orders.

use crate::tree::{NodeId, Tree};

/// All nodes of the subtree rooted at `root`, parents before children
/// (preorder).
pub fn subtree_nodes(tree: &Tree, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        out.push(id);
        let mut kids = tree.children(id);
        kids.reverse();
        stack.extend(kids);
    }
    out
}

/// All nodes of the subtree rooted at `root`, children before parents
/// (postorder).
pub fn postorder(tree: &Tree, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    fn walk(tree: &Tree, id: NodeId, out: &mut Vec<NodeId>) {
        for c in tree.children(id) {
            walk(tree, c, out);
        }
        out.push(id);
    }
    walk(tree, root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::{Datum, Interner};

    #[test]
    fn orders_agree_on_membership() {
        let _i = Interner::new();
        let mut t = Tree::new();
        let a = t.constant(Datum::Fixnum(1));
        let b = t.constant(Datum::Fixnum(2));
        let c = t.constant(Datum::Fixnum(3));
        let if_ = t.if_(a, b, c);
        let mut pre = subtree_nodes(&t, if_);
        let mut post = postorder(&t, if_);
        assert_eq!(pre[0], if_);
        assert_eq!(*post.last().unwrap(), if_);
        pre.sort();
        post.sort();
        assert_eq!(pre, post);
        assert_eq!(pre.len(), 4);
    }

    #[test]
    fn preorder_parents_first() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let rx = t.var_ref(x);
        let lam = t.lambda(vec![x], rx);
        let arg = t.constant(Datum::Fixnum(5));
        let call = t.call_expr(lam, vec![arg]);
        let pre = subtree_nodes(&t, call);
        let pos = |n| pre.iter().position(|&x| x == n).unwrap();
        assert!(pos(call) < pos(lam));
        assert!(pos(lam) < pos(rx));
        let _ = i.intern("unused");
    }
}
