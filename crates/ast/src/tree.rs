//! Tree, node, and variable data structures.

use s1lisp_reader::{Datum, Symbol};

/// Index of a [`Node`] in a [`Tree`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a [`Var`] in a [`Tree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An optional type declaration attached to a variable (§2: declarations
/// are "treated as advice by the compiler").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeclaredType {
    /// Declared `fixnum`.
    Fixnum,
    /// Declared single-word flonum.
    Flonum,
}

/// The per-variable "little data structure" of §4.1.
///
/// Two variables with the same name may be distinct because of scoping
/// rules; alpha-renaming in the frontend additionally gives distinct
/// variables distinct [`Var::name`] spellings so back-translated code
/// stays unambiguous.
#[derive(Clone, Debug)]
pub struct Var {
    /// Source-level name (possibly alpha-renamed).
    pub name: Symbol,
    /// Whether the variable is dynamically scoped ("special").
    pub special: bool,
    /// The `lambda` node that binds this variable, or `None` for a global
    /// special.
    pub binder: Option<NodeId>,
    /// Back-pointers to every `VarRef` node (filled by
    /// [`Tree::rebuild_backlinks`]).
    pub refs: Vec<NodeId>,
    /// Back-pointers to every `Setq` node assigning this variable.
    pub setqs: Vec<NodeId>,
    /// Optional user type declaration.
    pub declared_type: Option<DeclaredType>,
}

/// An `&optional` parameter: the variable and the default-value
/// expression, which "may perform any computation, and may refer to other
/// parameters occurring earlier in the same formal parameter set" (§2).
#[derive(Clone, Debug)]
pub struct OptParam {
    /// The bound variable.
    pub var: VarId,
    /// Default-value expression node, evaluated when no argument is
    /// supplied.
    pub default: NodeId,
}

/// The parameter list and body of a `lambda` node.
#[derive(Clone, Debug)]
pub struct Lambda {
    /// Required parameters.
    pub required: Vec<VarId>,
    /// Optional parameters with default expressions.
    pub optional: Vec<OptParam>,
    /// `&rest` parameter receiving a list of excess arguments.
    pub rest: Option<VarId>,
    /// The body expression.
    pub body: NodeId,
}

impl Lambda {
    /// All parameter variables in order.
    pub fn all_params(&self) -> Vec<VarId> {
        let mut v = self.required.clone();
        v.extend(self.optional.iter().map(|o| o.var));
        v.extend(self.rest);
        v
    }

    /// Whether the lambda is "simple": required parameters only.
    pub fn is_simple(&self) -> bool {
        self.optional.is_empty() && self.rest.is_none()
    }

    /// Minimum and maximum (`None` = unbounded) argument counts.
    pub fn arity(&self) -> (usize, Option<usize>) {
        let min = self.required.len();
        let max = if self.rest.is_some() {
            None
        } else {
            Some(min + self.optional.len())
        };
        (min, max)
    }
}

/// The function position of a `call` node.
///
/// §4.1 Table 2: call "has three special cases of interest: calling a
/// lambda-expression (`let`), calling a known primitive operation (to be
/// compiled in-line), and calling a user- or system-defined function."
/// Lambda calls are `Expr` whose node is a `Lambda`; the primitive/user
/// distinction among `Global`s is made by the analysis crate's primop
/// table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallFunc {
    /// A named global function (primitive or user-defined).
    Global(Symbol),
    /// A computed function expression (most importantly a manifest
    /// lambda-expression, i.e. a `let`).
    Expr(NodeId),
}

/// One clause of a `caseq`: a set of keys and the consequent expression.
#[derive(Clone, Debug)]
pub struct CaseqClause {
    /// Keys compared against the dispatch value with `eql`.
    pub keys: Vec<Datum>,
    /// Consequent expression.
    pub body: NodeId,
}

/// One item in a `progbody` statement sequence: either a go-tag or a
/// statement.
#[derive(Clone, Debug)]
pub enum ProgItem {
    /// A go-tag.
    Tag(Symbol),
    /// A statement node, executed for effect.
    Stmt(NodeId),
}

/// The construct a node represents — exactly the basic internal constructs
/// of Table 2 of the paper.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// `quote` — a constant.  "All constants are internally explicitly
    /// quoted for uniformity."
    Constant(Datum),
    /// Variable reference.
    VarRef(VarId),
    /// `setq` — assignment to a variable.
    Setq {
        /// Assigned variable.
        var: VarId,
        /// Value expression.
        value: NodeId,
    },
    /// If-then-else.  (`cond` is expressed in terms of `if` because `if`
    /// "is simpler and symmetric, making program transformations easier".)
    If {
        /// The test.
        test: NodeId,
        /// Consequent.
        then: NodeId,
        /// Alternative.
        els: NodeId,
    },
    /// Sequential execution (`progn`), the equivalent of a begin-end
    /// block; value is the last form's.
    Progn(
        /// The body forms, in execution order (never empty).
        Vec<NodeId>,
    ),
    /// Function invocation.
    Call {
        /// Function position.
        func: CallFunc,
        /// Argument expressions.
        args: Vec<NodeId>,
    },
    /// A lambda-expression; its value is a function (a lexical closure).
    Lambda(Lambda),
    /// A case statement dispatching on `eql` keys.
    Caseq {
        /// Dispatch value.
        key: NodeId,
        /// Clauses tried in order.
        clauses: Vec<CaseqClause>,
        /// Default expression when no clause matches.
        default: NodeId,
    },
    /// Target for non-local exits (the MACLISP `catch` construct).
    Catcher {
        /// Tag expression (usually a quoted symbol).
        tag: NodeId,
        /// Body whose `throw`s to the tag land here.
        body: NodeId,
    },
    /// A construct that contains tagged statements; `go` can jump to a
    /// tag and `return` can exit the construct.
    Progbody(
        /// Tags and statements in order.
        Vec<ProgItem>,
    ),
    /// Goto statement targeting a tag of the nearest enclosing
    /// `progbody` that defines it.
    Go(
        /// The tag.
        Symbol,
    ),
    /// Exits the nearest enclosing `progbody` with the value of the
    /// expression.
    Return(
        /// Result expression.
        NodeId,
    ),
}

impl NodeKind {
    /// Short name of the construct, as in Table 2.
    pub fn construct_name(&self) -> &'static str {
        match self {
            NodeKind::Constant(_) => "quote",
            NodeKind::VarRef(_) => "variable",
            NodeKind::Setq { .. } => "setq",
            NodeKind::If { .. } => "if",
            NodeKind::Progn(_) => "progn",
            NodeKind::Call { .. } => "call",
            NodeKind::Lambda(_) => "lambda",
            NodeKind::Caseq { .. } => "caseq",
            NodeKind::Catcher { .. } => "catcher",
            NodeKind::Progbody(_) => "progbody",
            NodeKind::Go(_) => "go",
            NodeKind::Return(_) => "return",
        }
    }
}

/// A tree node: a construct plus the "extra data slots … filled in by
/// successive phases".
#[derive(Clone, Debug)]
pub struct Node {
    /// The construct.
    pub kind: NodeKind,
    /// Parent link (one of the paper's "extra cross-links that effectively
    /// make it a general graph").  Maintained by
    /// [`Tree::rebuild_backlinks`].
    pub parent: Option<NodeId>,
    /// Per-node re-analysis flag: "a system of flags, one per node to
    /// indicate which nodes require re-analysis, effectively permits
    /// re-analysis to be performed incrementally" (§4.2).
    pub dirty: bool,
}

/// The internal program tree: an arena of nodes and variables.
///
/// Transformations replace node kinds in place; nodes detached by a
/// transformation simply become unreachable from [`Tree::root`].
///
/// # Examples
///
/// ```
/// use s1lisp_ast::{Tree, NodeKind};
/// use s1lisp_reader::{Datum, Interner};
///
/// let mut i = Interner::new();
/// let mut t = Tree::new();
/// let one = t.constant(Datum::Fixnum(1));
/// let two = t.constant(Datum::Fixnum(2));
/// let call = t.call_global(i.intern("+"), vec![one, two]);
/// t.root = call;
/// t.rebuild_backlinks();
/// assert_eq!(s1lisp_ast::unparse(&t, call).to_string(), "(+ '1 '2)");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tree {
    nodes: Vec<Node>,
    vars: Vec<Var>,
    /// The root expression (typically the whole-function `lambda`).
    pub root: NodeId,
}

impl Tree {
    /// Creates an empty tree whose root is a placeholder nil constant.
    pub fn new() -> Tree {
        let mut t = Tree {
            nodes: Vec::new(),
            vars: Vec::new(),
            root: NodeId(0),
        };
        t.root = t.constant(Datum::Nil);
        t
    }

    /// Adds a node with the given kind, returning its id.
    pub fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: None,
            dirty: true,
        });
        id
    }

    /// Adds a fresh lexical variable.
    pub fn add_var(&mut self, name: Symbol) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Var {
            name,
            special: false,
            binder: None,
            refs: Vec::new(),
            setqs: Vec::new(),
            declared_type: None,
        });
        id
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.  Marks it dirty.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let n = &mut self.nodes[id.index()];
        n.dirty = true;
        n
    }

    /// Shorthand for the node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// Replaces the construct at `id`, marking the node dirty.
    pub fn replace(&mut self, id: NodeId, kind: NodeKind) {
        self.node_mut(id).kind = kind;
    }

    /// Immutable access to a variable.
    #[inline]
    pub fn var(&self, id: VarId) -> &Var {
        &self.vars[id.index()]
    }

    /// Mutable access to a variable.
    #[inline]
    pub fn var_mut(&mut self, id: VarId) -> &mut Var {
        &mut self.vars[id.index()]
    }

    /// Number of nodes ever allocated (including detached ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables ever allocated.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over all variable ids ever allocated.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    // ---- convenience constructors ----

    /// A `quote` node.
    pub fn constant(&mut self, d: Datum) -> NodeId {
        self.add(NodeKind::Constant(d))
    }

    /// A variable-reference node.
    pub fn var_ref(&mut self, v: VarId) -> NodeId {
        self.add(NodeKind::VarRef(v))
    }

    /// An `if` node.
    pub fn if_(&mut self, test: NodeId, then: NodeId, els: NodeId) -> NodeId {
        self.add(NodeKind::If { test, then, els })
    }

    /// A `progn` node.
    pub fn progn(&mut self, body: Vec<NodeId>) -> NodeId {
        assert!(!body.is_empty(), "progn must have at least one form");
        self.add(NodeKind::Progn(body))
    }

    /// A call to a named global function.
    pub fn call_global(&mut self, f: Symbol, args: Vec<NodeId>) -> NodeId {
        self.add(NodeKind::Call {
            func: CallFunc::Global(f),
            args,
        })
    }

    /// A call whose function position is an expression (e.g. a manifest
    /// lambda — a `let`).
    pub fn call_expr(&mut self, f: NodeId, args: Vec<NodeId>) -> NodeId {
        self.add(NodeKind::Call {
            func: CallFunc::Expr(f),
            args,
        })
    }

    /// A simple (required-parameters-only) lambda node.
    pub fn lambda(&mut self, required: Vec<VarId>, body: NodeId) -> NodeId {
        let id = self.add(NodeKind::Lambda(Lambda {
            required: required.clone(),
            optional: Vec::new(),
            rest: None,
            body,
        }));
        for v in required {
            self.var_mut(v).binder = Some(id);
        }
        id
    }

    /// The direct children of a node, in evaluation-relevant order
    /// (lambda default expressions and bodies included).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match self.kind(id) {
            NodeKind::Constant(_) | NodeKind::VarRef(_) | NodeKind::Go(_) => Vec::new(),
            NodeKind::Setq { value, .. } => vec![*value],
            NodeKind::Return(v) => vec![*v],
            NodeKind::If { test, then, els } => vec![*test, *then, *els],
            NodeKind::Progn(body) => body.clone(),
            NodeKind::Call { func, args } => {
                let mut v = Vec::new();
                if let CallFunc::Expr(f) = func {
                    v.push(*f);
                }
                v.extend(args.iter().copied());
                v
            }
            NodeKind::Lambda(l) => {
                let mut v: Vec<NodeId> = l.optional.iter().map(|o| o.default).collect();
                v.push(l.body);
                v
            }
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => {
                let mut v = vec![*key];
                v.extend(clauses.iter().map(|c| c.body));
                v.push(*default);
                v
            }
            NodeKind::Catcher { tag, body } => vec![*tag, *body],
            NodeKind::Progbody(items) => items
                .iter()
                .filter_map(|i| match i {
                    ProgItem::Stmt(s) => Some(*s),
                    ProgItem::Tag(_) => None,
                })
                .collect(),
        }
    }

    /// Rewrites every child slot of `id` using `f` (used by transformations
    /// that splice subtrees).
    pub fn map_children(&mut self, id: NodeId, mut f: impl FnMut(NodeId) -> NodeId) {
        let mut kind = self.node(id).kind.clone();
        match &mut kind {
            NodeKind::Constant(_) | NodeKind::VarRef(_) | NodeKind::Go(_) => {}
            NodeKind::Setq { value, .. } => *value = f(*value),
            NodeKind::Return(v) => *v = f(*v),
            NodeKind::If { test, then, els } => {
                *test = f(*test);
                *then = f(*then);
                *els = f(*els);
            }
            NodeKind::Progn(body) => {
                for b in body {
                    *b = f(*b);
                }
            }
            NodeKind::Call { func, args } => {
                if let CallFunc::Expr(fx) = func {
                    *fx = f(*fx);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            NodeKind::Lambda(l) => {
                for o in &mut l.optional {
                    o.default = f(o.default);
                }
                l.body = f(l.body);
            }
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => {
                *key = f(*key);
                for c in clauses {
                    c.body = f(c.body);
                }
                *default = f(*default);
            }
            NodeKind::Catcher { tag, body } => {
                *tag = f(*tag);
                *body = f(*body);
            }
            NodeKind::Progbody(items) => {
                for i in items {
                    if let ProgItem::Stmt(s) = i {
                        *s = f(*s);
                    }
                }
            }
        }
        self.replace(id, kind);
    }

    /// Recomputes parent links and per-variable reference/assignment
    /// back-pointers for the whole tree reachable from [`Tree::root`].
    ///
    /// Call after any batch of transformations.
    pub fn rebuild_backlinks(&mut self) {
        for n in &mut self.nodes {
            n.parent = None;
        }
        for v in &mut self.vars {
            v.refs.clear();
            v.setqs.clear();
        }
        let mut stack = vec![self.root];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.kind(id).clone() {
                NodeKind::VarRef(v) => self.vars[v.index()].refs.push(id),
                NodeKind::Setq { var, .. } => self.vars[var.index()].setqs.push(id),
                NodeKind::Lambda(ref l) => {
                    for p in l.all_params() {
                        self.vars[p.index()].binder = Some(id);
                    }
                }
                _ => {}
            }
            for c in self.children(id) {
                self.nodes[c.index()].parent = Some(id);
                stack.push(c);
            }
        }
    }

    /// Deep structural equality of two subtrees (used by common
    /// sub-expression elimination and by tests).  Variables must be
    /// identical (`VarId`-equal), which is correct after alpha-renaming.
    pub fn subtree_equal(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let (na, nb) = (self.kind(a), self.kind(b));
        let shallow = match (na, nb) {
            (NodeKind::Constant(x), NodeKind::Constant(y)) => x.equal(y),
            (NodeKind::VarRef(x), NodeKind::VarRef(y)) => x == y,
            (NodeKind::Setq { var: x, .. }, NodeKind::Setq { var: y, .. }) => x == y,
            (NodeKind::If { .. }, NodeKind::If { .. }) => true,
            (NodeKind::Progn(x), NodeKind::Progn(y)) => x.len() == y.len(),
            (NodeKind::Call { func: fa, args: xa }, NodeKind::Call { func: fb, args: xb }) => {
                xa.len() == xb.len()
                    && match (fa, fb) {
                        (CallFunc::Global(g), CallFunc::Global(h)) => g == h,
                        (CallFunc::Expr(_), CallFunc::Expr(_)) => true,
                        _ => false,
                    }
            }
            (NodeKind::Lambda(la), NodeKind::Lambda(lb)) => {
                la.required == lb.required
                    && la.rest == lb.rest
                    && la.optional.len() == lb.optional.len()
                    && la
                        .optional
                        .iter()
                        .zip(&lb.optional)
                        .all(|(x, y)| x.var == y.var)
            }
            (NodeKind::Go(x), NodeKind::Go(y)) => x == y,
            (NodeKind::Return(_), NodeKind::Return(_)) => true,
            (NodeKind::Catcher { .. }, NodeKind::Catcher { .. }) => true,
            (NodeKind::Caseq { clauses: ca, .. }, NodeKind::Caseq { clauses: cb, .. }) => {
                ca.len() == cb.len()
                    && ca.iter().zip(cb).all(|(x, y)| {
                        x.keys.len() == y.keys.len()
                            && x.keys.iter().zip(&y.keys).all(|(p, q)| p.equal(q))
                    })
            }
            (NodeKind::Progbody(xa), NodeKind::Progbody(xb)) => {
                xa.len() == xb.len()
                    && xa.iter().zip(xb).all(|(p, q)| match (p, q) {
                        (ProgItem::Tag(s), ProgItem::Tag(t)) => s == t,
                        (ProgItem::Stmt(_), ProgItem::Stmt(_)) => true,
                        _ => false,
                    })
            }
            _ => false,
        };
        if !shallow {
            return false;
        }
        let (ca, cb) = (self.children(a), self.children(b));
        ca.len() == cb.len() && ca.iter().zip(&cb).all(|(&x, &y)| self.subtree_equal(x, y))
    }

    /// Makes a *hygienic* deep copy of the subtree at `id`: every
    /// variable bound by a lambda inside the subtree is replaced by a
    /// fresh variable (named by `rename`), with all its references and
    /// assignments remapped.  Free variables remain shared.  This is the
    /// "lambda can be viewed as a renaming operator" machinery that
    /// procedure integration and loop unrolling need.
    pub fn copy_subtree_renaming(
        &mut self,
        id: NodeId,
        rename: &mut dyn FnMut(&s1lisp_reader::Symbol) -> s1lisp_reader::Symbol,
    ) -> NodeId {
        use std::collections::HashMap;
        // Collect every variable bound within the subtree.
        let mut bound = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let NodeKind::Lambda(l) = self.kind(n) {
                bound.extend(l.all_params());
            }
            stack.extend(self.children(n));
        }
        let mut map: HashMap<VarId, VarId> = HashMap::new();
        for v in bound {
            if map.contains_key(&v) {
                continue;
            }
            let old = self.var(v).clone();
            let fresh = self.add_var(rename(&old.name));
            self.var_mut(fresh).special = old.special;
            self.var_mut(fresh).declared_type = old.declared_type;
            map.insert(v, fresh);
        }
        self.copy_remap(id, &map)
    }

    fn copy_remap(&mut self, id: NodeId, map: &std::collections::HashMap<VarId, VarId>) -> NodeId {
        let mut kind = self.node(id).kind.clone();
        let remap = |v: VarId| map.get(&v).copied().unwrap_or(v);
        match &mut kind {
            NodeKind::VarRef(v) => *v = remap(*v),
            NodeKind::Setq { var, .. } => *var = remap(*var),
            NodeKind::Lambda(l) => {
                for p in &mut l.required {
                    *p = remap(*p);
                }
                for o in &mut l.optional {
                    o.var = remap(o.var);
                }
                if let Some(r) = &mut l.rest {
                    *r = remap(*r);
                }
            }
            _ => {}
        }
        let new = self.add(kind);
        let children: Vec<NodeId> = self.children(new);
        let copies: Vec<NodeId> = children.iter().map(|&c| self.copy_remap(c, map)).collect();
        let mut i = 0;
        self.map_children(new, |_| {
            let c = copies[i];
            i += 1;
            c
        });
        new
    }

    /// Makes a deep copy of the subtree at `id`, returning the new root.
    /// Variables are shared, not copied (copying is the caller's business
    /// when required for hygiene).
    pub fn copy_subtree(&mut self, id: NodeId) -> NodeId {
        let kind = self.node(id).kind.clone();
        let new = self.add(kind);
        let children: Vec<NodeId> = self.children(new);
        let copies: Vec<NodeId> = children.iter().map(|&c| self.copy_subtree(c)).collect();
        let mut i = 0;
        self.map_children(new, |_| {
            let c = copies[i];
            i += 1;
            c
        });
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::Interner;

    fn small_tree() -> (Tree, Interner, NodeId) {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let rx = t.var_ref(x);
        let one = t.constant(Datum::Fixnum(1));
        let call = t.call_global(i.intern("+"), vec![rx, one]);
        let lam = t.lambda(vec![x], call);
        t.root = lam;
        t.rebuild_backlinks();
        (t, i, lam)
    }

    #[test]
    fn backlinks_are_rebuilt() {
        let (t, _i, lam) = small_tree();
        let NodeKind::Lambda(l) = t.kind(lam) else {
            panic!()
        };
        let body = l.body;
        assert_eq!(t.node(body).parent, Some(lam));
        let x = l.required[0];
        assert_eq!(t.var(x).refs.len(), 1);
        assert_eq!(t.var(x).binder, Some(lam));
        assert_eq!(t.node(t.var(x).refs[0]).parent, Some(body));
    }

    #[test]
    fn children_cover_every_construct() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let v = t.add_var(i.intern("v"));
        let c1 = t.constant(Datum::Fixnum(1));
        let c2 = t.constant(Datum::Fixnum(2));
        let c3 = t.constant(Datum::Fixnum(3));
        let if_ = t.if_(c1, c2, c3);
        assert_eq!(t.children(if_).len(), 3);
        let sq = t.add(NodeKind::Setq { var: v, value: if_ });
        assert_eq!(t.children(sq), vec![if_]);
        let g = t.add(NodeKind::Go(i.intern("loop")));
        assert!(t.children(g).is_empty());
        let pb = t.add(NodeKind::Progbody(vec![
            ProgItem::Tag(i.intern("loop")),
            ProgItem::Stmt(sq),
            ProgItem::Stmt(g),
        ]));
        assert_eq!(t.children(pb).len(), 2);
        let r = t.add(NodeKind::Return(c1));
        assert_eq!(t.children(r), vec![c1]);
    }

    #[test]
    fn subtree_equality() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let a1 = t.var_ref(x);
        let b1 = t.constant(Datum::Fixnum(1));
        let e1 = t.call_global(i.intern("+"), vec![a1, b1]);
        let a2 = t.var_ref(x);
        let b2 = t.constant(Datum::Fixnum(1));
        let e2 = t.call_global(i.intern("+"), vec![a2, b2]);
        assert!(t.subtree_equal(e1, e2));
        let b3 = t.constant(Datum::Fixnum(2));
        let e3 = t.call_global(i.intern("+"), vec![a1, b3]);
        assert!(!t.subtree_equal(e1, e3));
    }

    #[test]
    fn copy_subtree_is_deep() {
        let (mut t, _i, lam) = small_tree();
        let NodeKind::Lambda(l) = t.kind(lam).clone() else {
            panic!()
        };
        let copy = t.copy_subtree(l.body);
        assert_ne!(copy, l.body);
        assert!(t.subtree_equal(copy, l.body));
        // Mutating the copy leaves the original intact.
        t.replace(copy, NodeKind::Constant(Datum::Nil));
        assert!(!t.subtree_equal(copy, l.body));
    }

    #[test]
    fn map_children_rewrites_slots() {
        let (mut t, mut i, lam) = small_tree();
        let NodeKind::Lambda(l) = t.kind(lam).clone() else {
            panic!()
        };
        let nil = t.constant(Datum::Nil);
        t.map_children(l.body, |_| nil);
        let NodeKind::Call { args, .. } = t.kind(l.body) else {
            panic!()
        };
        assert!(args.iter().all(|&a| a == nil));
        let _ = i.intern("unused");
    }

    #[test]
    fn arity_of_lambda_forms() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let a = t.add_var(i.intern("a"));
        let b = t.add_var(i.intern("b"));
        let r = t.add_var(i.intern("r"));
        let d = t.constant(Datum::Fixnum(0));
        let body = t.constant(Datum::Nil);
        let l = Lambda {
            required: vec![a],
            optional: vec![OptParam { var: b, default: d }],
            rest: Some(r),
            body,
        };
        assert_eq!(l.arity(), (1, None));
        assert!(!l.is_simple());
        assert_eq!(l.all_params(), vec![a, b, r]);
    }
}

#[cfg(test)]
mod hygiene_tests {
    use super::*;
    use s1lisp_reader::Interner;

    #[test]
    fn hygienic_copy_renames_bound_keeps_free() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let free = t.add_var(i.intern("free"));
        let bound = t.add_var(i.intern("b"));
        // (lambda (b) (+ b free))
        let rb = t.var_ref(bound);
        let rf = t.var_ref(free);
        let call = t.call_global(i.intern("+"), vec![rb, rf]);
        let lam = t.lambda(vec![bound], call);
        t.root = lam;
        t.rebuild_backlinks();
        let mut counter = 0;
        let copy = t.copy_subtree_renaming(lam, &mut |name| {
            counter += 1;
            i.intern(&format!("{name}%u{counter}"))
        });
        // Structure equal apart from variable identity.
        let NodeKind::Lambda(lc) = t.kind(copy).clone() else {
            panic!()
        };
        assert_ne!(lc.required[0], bound, "bound variable is fresh");
        assert_eq!(t.var(lc.required[0]).name.as_str(), "b%u1");
        // The copy's body references the fresh bound var and the SAME
        // free var.
        let NodeKind::Call { args, .. } = t.kind(lc.body).clone() else {
            panic!()
        };
        assert!(matches!(*t.kind(args[0]), NodeKind::VarRef(v) if v == lc.required[0]));
        assert!(matches!(*t.kind(args[1]), NodeKind::VarRef(v) if v == free));
        // The original is untouched.
        let NodeKind::Lambda(lo) = t.kind(lam).clone() else {
            panic!()
        };
        assert_eq!(lo.required[0], bound);
    }
}
