//! The internal expression tree of the `s1lisp` compiler.
//!
//! §4.1 of the paper: "The source program is converted to an internal tree
//! format whose structure reflects the expression structure of the
//! program. … Each node of the tree has extra data slots; these are filled
//! in by successive phases of the compiler.  Occasionally the tree is
//! transformed."
//!
//! Each node corresponds to one of the small set of basic constructs of
//! Table 2 (`quote`, `variable`, `caseq`, `catcher`, `go`, `if`, `lambda`,
//! `progbody`, `progn`, `return`, `setq`, `call`), so the tree can always
//! be back-translated into valid source code ([`unparse`]).
//!
//! There is no central symbol table: "with every distinct variable … is
//! associated a little data structure; the construct that binds the
//! variable and all references to the variable all point to the data
//! structure, which has back-pointers to the binding and all the
//! references" — that little structure is [`Var`], and the back-pointers
//! are maintained by [`Tree::rebuild_backlinks`].

#![warn(missing_docs)]

mod hash;
mod tree;
mod unparse;
mod validate;
mod visit;

pub use hash::{fingerprint, fnv1a_str, Fnv1a64};
pub use tree::{
    CallFunc, CaseqClause, DeclaredType, Lambda, Node, NodeId, NodeKind, OptParam, ProgItem, Tree,
    Var, VarId,
};
pub use unparse::{clip_form, unparse, unparse_declared};
pub use validate::{well_formed, WellFormedError};
pub use visit::{postorder, subtree_nodes};
