//! Structural fingerprinting of program trees.
//!
//! The compilation service content-addresses its artifact cache by a
//! structural hash of the *converted* tree (the output of the
//! Preliminary phase): two compilations whose converted trees are
//! identical — same constructs, same variable spellings, same constants
//! — produce identical artifacts under identical options, so the hash
//! plus an options fingerprint is a sound cache key.
//!
//! The hash is an in-tree FNV-1a-64 ([`Fnv1a64`]): dependency-free,
//! deterministic across runs and platforms, and cheap enough to compute
//! on every compilation.  It is *not* cryptographic; the cache tolerates
//! collisions the way any content-addressed store does — astronomically
//! unlikely at 64 bits over the handful of entries a compiler sees.

use crate::tree::{CallFunc, NodeId, NodeKind, ProgItem, Tree};

/// The 64-bit FNV-1a hasher (offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Fnv1a64 {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64(Self::OFFSET)
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Feeds a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Feeds a string, followed by a separator byte so adjacent strings
    /// cannot run together (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_u8(0xff);
    }

    /// Feeds a 64-bit integer (little-endian).
    pub fn write_u64(&mut self, n: u64) {
        self.write_bytes(&n.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a-64 of a string (convenience for option fingerprints).
pub fn fnv1a_str(s: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_str(s);
    h.finish()
}

/// The structural fingerprint of the subtree reachable from
/// [`Tree::root`].
///
/// Covered: every node's construct, constants by printed form, variables
/// by spelling plus their special flag and declared type (spellings are
/// unique identities after the frontend's uniform alpha-renaming),
/// called-function names, `caseq` keys, `go` targets and `progbody`
/// tags, and the exact child structure.  Node and variable *arena
/// indices* are not hashed, so detached garbage nodes left behind by
/// earlier transformations do not perturb the fingerprint.
pub fn fingerprint(tree: &Tree) -> u64 {
    let mut h = Fnv1a64::new();
    hash_node(tree, &mut h, tree.root);
    h.finish()
}

fn hash_var(tree: &Tree, h: &mut Fnv1a64, v: crate::tree::VarId) {
    let var = tree.var(v);
    h.write_str(var.name.as_str());
    h.write_u8(u8::from(var.special));
    h.write_u8(match var.declared_type {
        None => 0,
        Some(crate::tree::DeclaredType::Fixnum) => 1,
        Some(crate::tree::DeclaredType::Flonum) => 2,
    });
}

fn hash_node(tree: &Tree, h: &mut Fnv1a64, id: NodeId) {
    match tree.kind(id) {
        NodeKind::Constant(d) => {
            h.write_u8(1);
            h.write_str(&d.to_string());
        }
        NodeKind::VarRef(v) => {
            h.write_u8(2);
            hash_var(tree, h, *v);
        }
        NodeKind::Setq { var, .. } => {
            h.write_u8(3);
            hash_var(tree, h, *var);
        }
        NodeKind::If { .. } => h.write_u8(4),
        NodeKind::Progn(_) => h.write_u8(5),
        NodeKind::Call { func, .. } => {
            h.write_u8(6);
            match func {
                CallFunc::Global(s) => {
                    h.write_u8(1);
                    h.write_str(s.as_str());
                }
                CallFunc::Expr(_) => h.write_u8(2),
            }
        }
        NodeKind::Lambda(l) => {
            h.write_u8(7);
            h.write_u64(l.required.len() as u64);
            h.write_u64(l.optional.len() as u64);
            h.write_u8(u8::from(l.rest.is_some()));
            for &p in &l.required {
                hash_var(tree, h, p);
            }
            for o in &l.optional {
                hash_var(tree, h, o.var);
            }
            if let Some(r) = l.rest {
                hash_var(tree, h, r);
            }
        }
        NodeKind::Caseq { clauses, .. } => {
            h.write_u8(8);
            h.write_u64(clauses.len() as u64);
            for c in clauses {
                h.write_u64(c.keys.len() as u64);
                for k in &c.keys {
                    h.write_str(&k.to_string());
                }
            }
        }
        NodeKind::Catcher { .. } => h.write_u8(9),
        NodeKind::Progbody(items) => {
            h.write_u8(10);
            for item in items {
                match item {
                    ProgItem::Tag(t) => {
                        h.write_u8(1);
                        h.write_str(t.as_str());
                    }
                    ProgItem::Stmt(_) => h.write_u8(2),
                }
            }
        }
        NodeKind::Go(t) => {
            h.write_u8(11);
            h.write_str(t.as_str());
        }
        NodeKind::Return(_) => h.write_u8(12),
    }
    let children = tree.children(id);
    h.write_u64(children.len() as u64);
    for c in children {
        hash_node(tree, h, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::{Datum, Interner};

    fn plus_tree(i: &mut Interner, constant: i64) -> Tree {
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let rx = t.var_ref(x);
        let k = t.constant(Datum::Fixnum(constant));
        let call = t.call_global(i.intern("+"), vec![rx, k]);
        let lam = t.lambda(vec![x], call);
        t.root = lam;
        t.rebuild_backlinks();
        t
    }

    #[test]
    fn identical_trees_hash_identically() {
        let mut i = Interner::new();
        let a = fingerprint(&plus_tree(&mut i, 1));
        let b = fingerprint(&plus_tree(&mut i, 1));
        assert_eq!(a, b);
        // Even from a different interner: spellings, not pointers.
        let mut j = Interner::new();
        assert_eq!(a, fingerprint(&plus_tree(&mut j, 1)));
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let mut i = Interner::new();
        let a = fingerprint(&plus_tree(&mut i, 1));
        assert_ne!(a, fingerprint(&plus_tree(&mut i, 2)));
        // A different variable spelling changes it too.
        let mut t = Tree::new();
        let y = t.add_var(i.intern("y"));
        let ry = t.var_ref(y);
        let k = t.constant(Datum::Fixnum(1));
        let call = t.call_global(i.intern("+"), vec![ry, k]);
        let lam = t.lambda(vec![y], call);
        t.root = lam;
        assert_ne!(a, fingerprint(&t));
    }

    #[test]
    fn detached_nodes_do_not_perturb_the_hash() {
        let mut i = Interner::new();
        let mut t = plus_tree(&mut i, 1);
        let clean = fingerprint(&t);
        // Allocate garbage that stays unreachable from the root.
        let _ = t.constant(Datum::Fixnum(999));
        let _ = t.add_var(i.intern("garbage"));
        assert_eq!(clean, fingerprint(&t));
    }

    #[test]
    fn special_and_declared_type_are_significant() {
        let mut i = Interner::new();
        let mut t = plus_tree(&mut i, 1);
        let clean = fingerprint(&t);
        let v = t.var_ids().next().unwrap();
        t.var_mut(v).declared_type = Some(crate::tree::DeclaredType::Fixnum);
        assert_ne!(clean, fingerprint(&t));
    }

    #[test]
    fn fnv_str_vectors() {
        // Distinct strings, distinct hashes; stable across calls.
        assert_eq!(fnv1a_str("a"), fnv1a_str("a"));
        assert_ne!(fnv1a_str("a"), fnv1a_str("b"));
        assert_ne!(fnv1a_str("ab"), fnv1a_str("a"));
    }
}
