//! Table-2 well-formedness checks.
//!
//! §7's guarantee is that every transformation preserves the invariants
//! of the internal representation: variables remain lexically
//! resolvable, manifest (`let`-style) lambda applications remain fully
//! applied, and `go`s keep a target tag in an enclosing `progbody`.
//! [`well_formed`] checks exactly those invariants over the tree
//! reachable from the root, so the guard pipeline can catch a
//! transformation that breaks scope *before* code is emitted for it.

use crate::tree::{CallFunc, NodeId, NodeKind, ProgItem, Tree, VarId};

/// A violation of the Table-2 invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WellFormedError {
    /// A lexical (non-special) variable is referenced or assigned
    /// outside any lambda that binds it.
    UnresolvableVar {
        /// The variable's (possibly alpha-renamed) spelling.
        name: String,
        /// `"reference"` or `"assignment"`.
        usage: &'static str,
    },
    /// A manifest lambda application's argument count falls outside the
    /// lambda's arity.
    LambdaArity {
        /// Minimum arity.
        min: usize,
        /// Maximum arity (`None` = `&rest`).
        max: Option<usize>,
        /// Arguments actually supplied.
        got: usize,
    },
    /// A `go` targets a tag no enclosing `progbody` defines.
    UnresolvableGo {
        /// The missing tag.
        tag: String,
    },
}

impl std::fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WellFormedError::UnresolvableVar { name, usage } => {
                write!(f, "lexical variable {name} has an unbound {usage}")
            }
            WellFormedError::LambdaArity { min, max, got } => match max {
                Some(max) => write!(f, "applied lambda wants {min}..={max} arguments, got {got}"),
                None => write!(
                    f,
                    "applied lambda wants at least {min} arguments, got {got}"
                ),
            },
            WellFormedError::UnresolvableGo { tag } => {
                write!(
                    f,
                    "go targets tag {tag} with no enclosing progbody binding it"
                )
            }
        }
    }
}

/// Checks the subtree reachable from [`Tree::root`] against the Table-2
/// invariants, returning the first violation found (deterministic:
/// depth-first, evaluation order).
pub fn well_formed(tree: &Tree) -> Result<(), WellFormedError> {
    let mut scope: Vec<VarId> = Vec::new();
    let mut tags: Vec<Vec<String>> = Vec::new();
    check(tree, tree.root, &mut scope, &mut tags)
}

fn check(
    tree: &Tree,
    id: NodeId,
    scope: &mut Vec<VarId>,
    tags: &mut Vec<Vec<String>>,
) -> Result<(), WellFormedError> {
    match tree.kind(id) {
        NodeKind::VarRef(v) => resolve(tree, *v, scope, "reference"),
        NodeKind::Setq { var, value } => {
            resolve(tree, *var, scope, "assignment")?;
            check(tree, *value, scope, tags)
        }
        NodeKind::Lambda(_) => check_lambda(tree, id, scope, tags),
        NodeKind::Call { func, args } => {
            if let CallFunc::Expr(fx) = func {
                if let NodeKind::Lambda(l) = tree.kind(*fx) {
                    let (min, max) = l.arity();
                    let got = args.len();
                    if got < min || max.is_some_and(|m| got > m) {
                        return Err(WellFormedError::LambdaArity { min, max, got });
                    }
                }
                check(tree, *fx, scope, tags)?;
            }
            for a in args {
                check(tree, *a, scope, tags)?;
            }
            Ok(())
        }
        NodeKind::Progbody(items) => {
            let frame: Vec<String> = items
                .iter()
                .filter_map(|i| match i {
                    ProgItem::Tag(t) => Some(t.as_str().to_string()),
                    ProgItem::Stmt(_) => None,
                })
                .collect();
            tags.push(frame);
            for i in items {
                if let ProgItem::Stmt(s) = i {
                    check(tree, *s, scope, tags)?;
                }
            }
            tags.pop();
            Ok(())
        }
        NodeKind::Go(tag) => {
            if tags
                .iter()
                .any(|frame| frame.iter().any(|t| t == tag.as_str()))
            {
                Ok(())
            } else {
                Err(WellFormedError::UnresolvableGo {
                    tag: tag.as_str().to_string(),
                })
            }
        }
        _ => {
            for c in tree.children(id) {
                check(tree, c, scope, tags)?;
            }
            Ok(())
        }
    }
}

fn check_lambda(
    tree: &Tree,
    id: NodeId,
    scope: &mut Vec<VarId>,
    tags: &mut Vec<Vec<String>>,
) -> Result<(), WellFormedError> {
    let NodeKind::Lambda(l) = tree.kind(id) else {
        unreachable!()
    };
    // Optional defaults may refer to earlier parameters only (§2);
    // conversion enforces that, so checking them inside the full
    // parameter scope stays sound for transformed trees too.
    let before = scope.len();
    scope.extend(l.all_params());
    for o in &l.optional {
        check(tree, o.default, scope, tags)?;
    }
    let body = l.body;
    check(tree, body, scope, tags)?;
    scope.truncate(before);
    Ok(())
}

fn resolve(
    tree: &Tree,
    v: VarId,
    scope: &[VarId],
    usage: &'static str,
) -> Result<(), WellFormedError> {
    let var = tree.var(v);
    if var.special || scope.contains(&v) {
        Ok(())
    } else {
        Err(WellFormedError::UnresolvableVar {
            name: var.name.as_str().to_string(),
            usage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::{Datum, Interner};

    #[test]
    fn bound_and_special_variables_resolve() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let s = t.add_var(i.intern("*s*"));
        t.var_mut(s).special = true;
        let rx = t.var_ref(x);
        let rs = t.var_ref(s);
        let call = t.call_global(i.intern("+"), vec![rx, rs]);
        let lam = t.lambda(vec![x], call);
        t.root = lam;
        assert_eq!(well_formed(&t), Ok(()));
    }

    #[test]
    fn escaped_lexical_is_caught() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        // `x` referenced at the root with no binder in sight.
        let rx = t.var_ref(x);
        t.root = rx;
        assert_eq!(
            well_formed(&t),
            Err(WellFormedError::UnresolvableVar {
                name: "x".into(),
                usage: "reference",
            })
        );
    }

    #[test]
    fn applied_lambda_arity_is_checked() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let x = t.add_var(i.intern("x"));
        let rx = t.var_ref(x);
        let lam = t.lambda(vec![x], rx);
        let a = t.constant(Datum::Fixnum(1));
        let b = t.constant(Datum::Fixnum(2));
        let call = t.call_expr(lam, vec![a, b]);
        t.root = call;
        assert_eq!(
            well_formed(&t),
            Err(WellFormedError::LambdaArity {
                min: 1,
                max: Some(1),
                got: 2,
            })
        );
    }

    #[test]
    fn go_needs_an_enclosing_tag() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let g = t.add(NodeKind::Go(i.intern("loop")));
        let pb = t.add(NodeKind::Progbody(vec![
            ProgItem::Tag(i.intern("top")),
            ProgItem::Stmt(g),
        ]));
        t.root = pb;
        assert_eq!(
            well_formed(&t),
            Err(WellFormedError::UnresolvableGo { tag: "loop".into() })
        );
        let ok = t.add(NodeKind::Progbody(vec![
            ProgItem::Tag(i.intern("loop")),
            ProgItem::Stmt(g),
        ]));
        t.root = ok;
        assert_eq!(well_formed(&t), Ok(()));
    }
}
