//! Back-translation of the internal tree into source form.
//!
//! §4.1: "the internal tree can always be back-translated into valid
//! source code, equivalent to, though not necessarily identical to, the
//! original source.  (Such a back-translation facility has been written as
//! a debugging aid for the compiler writers.)"
//!
//! Following the paper's transcript conventions, constants print without
//! their `quote` wrapper when they are self-evaluating ("for readability
//! the back-translator actually omits quote-forms around numbers").

use s1lisp_reader::{Datum, Symbol};

use crate::tree::{CallFunc, DeclaredType, Lambda, NodeId, NodeKind, ProgItem, Tree};

/// Back-translates the subtree at `id` into a source datum.
///
/// The output is valid source for the frontend: re-converting it yields a
/// tree with the same semantics (integration tests assert this round
/// trip).
///
/// # Examples
///
/// ```
/// use s1lisp_ast::{unparse, Tree};
/// use s1lisp_reader::{Datum, Interner};
///
/// let mut i = Interner::new();
/// let mut t = Tree::new();
/// let a = t.constant(Datum::Fixnum(1));
/// let b = t.constant(Datum::Flonum(2.0));
/// let e = t.call_global(i.intern("+$f"), vec![a, b]);
/// assert_eq!(unparse(&t, e).to_string(), "(+$f '1 '2.0)");
/// ```
pub fn unparse(tree: &Tree, id: NodeId) -> Datum {
    let mut u = Unparser {
        tree,
        declares: false,
    };
    u.node(id)
}

/// Back-translation that *preserves the variable annotations*: each
/// lambda body opens with a `(declare (special …) (fixnum …)
/// (flonum …))` form covering its parameters, and bare
/// variable-reference statements inside `progbody` are wrapped in
/// `(progn …)` so the reader cannot mistake them for go-tags.
///
/// `unparse` drops declarations (matching the paper's transcripts);
/// this variant exists for the guard pipeline's round-trip check, where
/// re-converting the output must reproduce the *exact* tree fingerprint
/// — including specialness and declared types.
pub fn unparse_declared(tree: &Tree, id: NodeId) -> Datum {
    let mut u = Unparser {
        tree,
        declares: true,
    };
    u.node(id)
}

/// A one-line rendering of a subtree, clipped to 48 characters for
/// event logs (telemetry events, dossier verdict lines).
pub fn clip_form(tree: &Tree, node: NodeId) -> String {
    let s = unparse(tree, node).to_string();
    if s.chars().count() <= 48 {
        s
    } else {
        let head: String = s.chars().take(47).collect();
        format!("{head}…")
    }
}

struct Unparser<'a> {
    tree: &'a Tree,
    declares: bool,
}

impl Unparser<'_> {
    fn sym(&self, name: &Symbol) -> Datum {
        Datum::Sym(name.clone())
    }

    fn node(&mut self, id: NodeId) -> Datum {
        match self.tree.kind(id) {
            NodeKind::Constant(d) => {
                // All constants are internally explicitly quoted for
                // uniformity; we keep the quote so the output is exact.
                Datum::list([self.raw_sym("quote"), d.clone()])
            }
            NodeKind::VarRef(v) => self.sym(&self.tree.var(*v).name),
            NodeKind::Setq { var, value } => Datum::list([
                self.raw_sym("setq"),
                self.sym(&self.tree.var(*var).name),
                self.node(*value),
            ]),
            NodeKind::If { test, then, els } => Datum::list([
                self.raw_sym("if"),
                self.node(*test),
                self.node(*then),
                self.node(*els),
            ]),
            NodeKind::Progn(body) => {
                let mut items = vec![self.raw_sym("progn")];
                items.extend(body.iter().map(|&b| self.node(b)));
                Datum::list(items)
            }
            NodeKind::Call { func, args } => {
                let head = match func {
                    CallFunc::Global(g) => self.sym(g),
                    CallFunc::Expr(e) => self.node(*e),
                };
                let mut items = vec![head];
                items.extend(args.iter().map(|&a| self.node(a)));
                Datum::list(items)
            }
            NodeKind::Lambda(l) => {
                let mut params: Vec<Datum> = l
                    .required
                    .iter()
                    .map(|v| self.sym(&self.tree.var(*v).name))
                    .collect();
                if !l.optional.is_empty() {
                    params.push(self.raw_sym("&optional"));
                    for o in &l.optional {
                        params.push(Datum::list([
                            self.sym(&self.tree.var(o.var).name),
                            self.node(o.default),
                        ]));
                    }
                }
                if let Some(r) = l.rest {
                    params.push(self.raw_sym("&rest"));
                    params.push(self.sym(&self.tree.var(r).name));
                }
                let mut items = vec![self.raw_sym("lambda"), Datum::list(params)];
                if self.declares {
                    if let Some(d) = self.declare_form(l) {
                        items.push(d);
                    }
                }
                items.push(self.node(l.body));
                Datum::list(items)
            }
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => {
                let mut items = vec![self.raw_sym("caseq"), self.node(*key)];
                for c in clauses {
                    items.push(Datum::list([
                        Datum::list(c.keys.iter().cloned()),
                        self.node(c.body),
                    ]));
                }
                items.push(Datum::list([self.raw_sym("t"), self.node(*default)]));
                Datum::list(items)
            }
            NodeKind::Catcher { tag, body } => {
                Datum::list([self.raw_sym("catch"), self.node(*tag), self.node(*body)])
            }
            NodeKind::Progbody(items) => {
                let mut out = vec![self.raw_sym("progbody")];
                for i in items {
                    out.push(match i {
                        ProgItem::Tag(t) => Datum::Sym(t.clone()),
                        ProgItem::Stmt(s) => {
                            let d = self.node(*s);
                            // In declare-preserving mode a bare symbol
                            // statement would re-read as a go-tag; keep
                            // it a statement with a `progn` wrapper
                            // (which re-converts to the plain node).
                            if self.declares && matches!(d, Datum::Sym(_)) {
                                Datum::list([self.raw_sym("progn"), d])
                            } else {
                                d
                            }
                        }
                    });
                }
                Datum::list(out)
            }
            NodeKind::Go(tag) => Datum::list([self.raw_sym("go"), Datum::Sym(tag.clone())]),
            NodeKind::Return(v) => Datum::list([self.raw_sym("return"), self.node(*v)]),
        }
    }

    /// The `(declare …)` form for a lambda's parameter annotations, or
    /// `None` when no parameter is special or type-declared.
    fn declare_form(&self, l: &Lambda) -> Option<Datum> {
        let mut specials = Vec::new();
        let mut fixnums = Vec::new();
        let mut flonums = Vec::new();
        for p in l.all_params() {
            let v = self.tree.var(p);
            if v.special {
                specials.push(self.sym(&v.name));
            }
            match v.declared_type {
                Some(DeclaredType::Fixnum) => fixnums.push(self.sym(&v.name)),
                Some(DeclaredType::Flonum) => flonums.push(self.sym(&v.name)),
                None => {}
            }
        }
        let mut clauses = Vec::new();
        for (head, names) in [
            ("special", specials),
            ("fixnum", fixnums),
            ("flonum", flonums),
        ] {
            if !names.is_empty() {
                let mut c = vec![self.raw_sym(head)];
                c.extend(names);
                clauses.push(Datum::list(c));
            }
        }
        if clauses.is_empty() {
            return None;
        }
        let mut d = vec![self.raw_sym("declare")];
        d.extend(clauses);
        Some(Datum::list(d))
    }

    /// Head symbols of special forms: these spellings are fixed by the
    /// language, so we can synthesize them without an interner — but they
    /// must compare equal to the frontend's interned versions when the
    /// output is re-read, which the reader guarantees by interning on
    /// read.  We therefore emit *fresh* symbols here; textual round-trips
    /// go through the reader and re-intern.
    fn raw_sym(&self, s: &str) -> Datum {
        Datum::Sym(crate::unparse::fresh_symbol(s))
    }
}

/// Creates an uninterned symbol with the given spelling (display-equal,
/// not `eq`, to interned symbols of the same name).  Only used for the
/// fixed special-form head words in back-translated output, which is
/// consumed textually.
fn fresh_symbol(s: &str) -> Symbol {
    // A tiny private interner would also work; a one-off allocation keeps
    // the unparser free of &mut Interner plumbing.
    let mut scratch = s1lisp_reader::Interner::new();
    scratch.intern(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Lambda, OptParam};
    use s1lisp_reader::Interner;

    #[test]
    fn constants_print_quoted() {
        let mut t = Tree::new();
        let c = t.constant(Datum::Fixnum(42));
        assert_eq!(unparse(&t, c).to_string(), "'42");
    }

    #[test]
    fn if_and_progn() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let p = t.add_var(i.intern("p"));
        let rp = t.var_ref(p);
        let a = t.constant(Datum::Fixnum(1));
        let b = t.constant(Datum::Fixnum(2));
        let pg = t.progn(vec![a, b]);
        let e = t.if_(rp, pg, b);
        assert_eq!(unparse(&t, e).to_string(), "(if p (progn '1 '2) '2)");
    }

    #[test]
    fn lambda_with_optionals_unparsed() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let a = t.add_var(i.intern("a"));
        let b = t.add_var(i.intern("b"));
        let d = t.constant(Datum::Flonum(3.0));
        let body = t.var_ref(a);
        let lam = t.add(NodeKind::Lambda(Lambda {
            required: vec![a],
            optional: vec![OptParam { var: b, default: d }],
            rest: None,
            body,
        }));
        assert_eq!(
            unparse(&t, lam).to_string(),
            "(lambda (a &optional (b '3.0)) a)"
        );
    }

    #[test]
    fn let_shape_survives() {
        // ((lambda (d) d) '1) — the paper's let rendering.
        let mut i = Interner::new();
        let mut t = Tree::new();
        let d = t.add_var(i.intern("d"));
        let rd = t.var_ref(d);
        let lam = t.lambda(vec![d], rd);
        let one = t.constant(Datum::Fixnum(1));
        let call = t.call_expr(lam, vec![one]);
        assert_eq!(unparse(&t, call).to_string(), "((lambda (d) d) '1)");
    }

    #[test]
    fn progbody_go_return() {
        let mut i = Interner::new();
        let mut t = Tree::new();
        let g = t.add(NodeKind::Go(i.intern("top")));
        let one = t.constant(Datum::Fixnum(1));
        let r = t.add(NodeKind::Return(one));
        let pb = t.add(NodeKind::Progbody(vec![
            ProgItem::Tag(i.intern("top")),
            ProgItem::Stmt(r),
            ProgItem::Stmt(g),
        ]));
        assert_eq!(
            unparse(&t, pb).to_string(),
            "(progbody top (return '1) (go top))"
        );
    }
}
