//! The transformation rules.
//!
//! Each rule inspects one node and either rewrites it (returning `true`)
//! or leaves it alone.  One driver scan applies the *first* applicable
//! rule and returns, so backlinks and analyses are recomputed between
//! rewrites — the paper's incremental re-analysis, made simple.

use std::collections::HashMap;

use s1lisp_analysis::{complexity, effects, primop, Complexity, Effects};
use s1lisp_ast::{subtree_nodes, unparse, CallFunc, Lambda, NodeId, NodeKind, Tree, VarId};
use s1lisp_reader::Datum;

use crate::Optimizer;

/// The single-precision approximation of 1/2π used by the paper's
/// `sin$f` → `sinc$f` conversion ("the conversion factor is a
/// floating-point approximation to 1/2π", §7).
pub const INVERSE_TWO_PI: f64 = 0.159154942;

/// Loop unrolling by self-integration (§5): each self-call is replaced
/// by a hygienically renamed copy of the whole function body bound as a
/// let — "integration of the procedure within itself".  One level only;
/// the copied body's own self-calls remain real calls.  Returns the
/// number of call sites integrated.
pub(crate) fn unroll_once(o: &mut Optimizer, tree: &mut Tree, self_name: &str) -> usize {
    let NodeKind::Lambda(root) = tree.kind(tree.root).clone() else {
        return 0;
    };
    if !root.is_simple() {
        return 0;
    }
    // Unrolling doubles the body: keep it to small loops.
    let sizes = complexity(tree);
    if sizes
        .get(&root.body)
        .map(|c| *c > Complexity(40))
        .unwrap_or(true)
    {
        return 0;
    }
    let sites: Vec<NodeId> = subtree_nodes(tree, root.body)
        .into_iter()
        .filter(|&n| {
            matches!(tree.kind(n),
                NodeKind::Call { func: CallFunc::Global(g), args }
                    if g.as_str() == self_name && args.len() == root.required.len())
        })
        .collect();
    let mut count = 0;
    for site in sites {
        let NodeKind::Call { args, .. } = tree.kind(site).clone() else {
            continue;
        };
        let b = before(o, tree, site);
        // A fresh copy of the whole function as a manifest lambda,
        // called with the site's arguments: ((lambda (params') body')
        // args…).  The beta rules then integrate it.
        let copy = {
            let mut namer = |sym: &s1lisp_reader::Symbol| o.gensym(sym.as_str());
            tree.copy_subtree_renaming(tree.root, &mut namer)
        };
        tree.replace(
            site,
            NodeKind::Call {
                func: CallFunc::Expr(copy),
                args,
            },
        );
        record(o, tree, "META-UNROLL-INTEGRATE-SELF", b, site);
        count += 1;
    }
    tree.rebuild_backlinks();
    count
}

/// Scans the tree and applies the first applicable transformation.
/// Returns 1 if something fired, 0 at fixpoint.
pub(crate) fn run_round(o: &mut Optimizer, tree: &mut Tree) -> usize {
    let cx = Cx::analyze(tree);
    // Canonicalizing rules run to quiescence before the beta-conversion
    // rules, matching the paper's transcript order (assoc/commut
    // reduction and sin→sinc appear before the substitutions in §7).
    for node in subtree_nodes(tree, tree.root) {
        if apply_canonical(o, tree, node) {
            return 1;
        }
    }
    for node in subtree_nodes(tree, tree.root) {
        if apply_beta(o, tree, node, &cx) {
            return 1;
        }
    }
    0
}

/// Cached analyses for the current scan.
struct Cx {
    effects: HashMap<NodeId, Effects>,
    complexity: HashMap<NodeId, Complexity>,
}

impl Cx {
    fn analyze(tree: &Tree) -> Cx {
        Cx {
            effects: effects(tree),
            complexity: complexity(tree),
        }
    }

    fn eff(&self, n: NodeId) -> Effects {
        self.effects.get(&n).copied().unwrap_or_default()
    }

    fn size(&self, n: NodeId) -> Complexity {
        self.complexity.get(&n).copied().unwrap_or(Complexity(99))
    }
}

#[allow(clippy::nonminimal_bool)] // each && guards one switchable rule
fn apply_canonical(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let opts = o.options.clone();
    (opts.if_simplify && if_constant_test(o, tree, node))
        || (opts.if_simplify && caseq_constant_key(o, tree, node))
        || (opts.if_simplify && if_known_test(o, tree, node))
        || (opts.if_lift && if_lift(o, tree, node))
        || (opts.if_distribution && if_distribute(o, tree, node))
        || (opts.assoc_commut && assoc_commut_nary(o, tree, node))
        || (opts.assoc_commut && reverse_arguments(o, tree, node))
        || (opts.assoc_commut && identity_elimination(o, tree, node))
        || (opts.constant_fold && constant_fold(o, tree, node))
        || (opts.sin_to_cycles && sin_to_cycles(o, tree, node))
}

#[allow(clippy::nonminimal_bool)] // each && guards one switchable rule
fn apply_beta(o: &mut Optimizer, tree: &mut Tree, node: NodeId, cx: &Cx) -> bool {
    let opts = o.options.clone();
    (opts.call_lambda && call_lambda(o, tree, node))
        || (opts.unused_args && delete_unused_argument(o, tree, node, cx))
        || (opts.substitution && substitute(o, tree, node, cx))
}

/// Records a transformation, with before-form captured by the caller.
fn record(o: &mut Optimizer, tree: &Tree, rule: &'static str, before: String, node: NodeId) {
    if o.options.trace {
        let after = unparse(tree, node).to_string();
        o.transcript.record(rule, before, after);
    }
}

fn before(o: &Optimizer, tree: &Tree, node: NodeId) -> String {
    if o.options.trace {
        unparse(tree, node).to_string()
    } else {
        String::new()
    }
}

/// The called manifest lambda of a let, if `node` is one.
fn let_lambda(tree: &Tree, node: NodeId) -> Option<(NodeId, Lambda, Vec<NodeId>)> {
    let NodeKind::Call {
        func: CallFunc::Expr(f),
        args,
    } = tree.kind(node)
    else {
        return None;
    };
    let NodeKind::Lambda(l) = tree.kind(*f) else {
        return None;
    };
    Some((*f, l.clone(), args.clone()))
}

// ---------------------------------------------------------------- if rules

/// Dead-code elimination: `(if 'k x y)` picks an arm at compile time.
fn if_constant_test(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::If { test, then, els } = *tree.kind(node) else {
        return false;
    };
    let NodeKind::Constant(d) = tree.kind(test) else {
        return false;
    };
    let chosen = if d.is_true() { then } else { els };
    let b = before(o, tree, node);
    let kind = tree.kind(chosen).clone();
    tree.replace(node, kind);
    record(o, tree, "META-IF-CONSTANT-TEST", b, node);
    true
}

/// Dead-code elimination for `caseq` with a constant key.
fn caseq_constant_key(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Caseq {
        key,
        clauses,
        default,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    let NodeKind::Constant(d) = tree.kind(key) else {
        return false;
    };
    let mut chosen = default;
    'search: for c in &clauses {
        for k in &c.keys {
            if k.eql(d) {
                chosen = c.body;
                break 'search;
            }
        }
    }
    let b = before(o, tree, node);
    let kind = tree.kind(chosen).clone();
    tree.replace(node, kind);
    record(o, tree, "META-CASEQ-CONSTANT-KEY", b, node);
    true
}

/// "Realizing that `b` is true in the inner `if` by virtue of the test in
/// the outer one" (§5): inside the arms of `(if v …)` where `v` is an
/// immutable lexical variable, inner tests of `v` are decided.
fn if_known_test(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::If { test, then, els } = *tree.kind(node) else {
        return false;
    };
    let NodeKind::VarRef(v) = *tree.kind(test) else {
        return false;
    };
    let var = tree.var(v);
    if var.special || !var.setqs.is_empty() {
        return false;
    }
    for (arm, truth) in [(then, true), (els, false)] {
        for inner in subtree_nodes(tree, arm) {
            let NodeKind::If {
                test: it,
                then: ithen,
                els: iels,
            } = *tree.kind(inner)
            else {
                continue;
            };
            if !matches!(*tree.kind(it), NodeKind::VarRef(w) if w == v) {
                continue;
            }
            let b = before(o, tree, inner);
            let chosen = if truth { ithen } else { iels };
            let kind = tree.kind(chosen).clone();
            tree.replace(inner, kind);
            record(o, tree, "META-IF-KNOWN-TEST", b, inner);
            return true;
        }
    }
    false
}

/// Semi-canonicalization (§5): `(if (progn a … q) x y)` ⇒
/// `(progn a … (if q x y))`, and `(if ((lambda (…) body) args) x y)` ⇒
/// `((lambda (…) (if body x y)) args)` — "the latter being valid only
/// because all variables … have effectively been uniformly renamed".
fn if_lift(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::If { test, then, els } = *tree.kind(node) else {
        return false;
    };
    match tree.kind(test).clone() {
        NodeKind::Progn(body) => {
            let b = before(o, tree, node);
            let (&last, init) = body.split_last().expect("progn non-empty");
            let inner_if = tree.if_(last, then, els);
            let mut new_body = init.to_vec();
            new_body.push(inner_if);
            tree.replace(node, NodeKind::Progn(new_body));
            record(o, tree, "META-IF-LIFT", b, node);
            true
        }
        NodeKind::Call {
            func: CallFunc::Expr(f),
            args,
        } => {
            let NodeKind::Lambda(mut l) = tree.kind(f).clone() else {
                return false;
            };
            if !l.is_simple() {
                return false;
            }
            let b = before(o, tree, node);
            let inner_if = tree.if_(l.body, then, els);
            l.body = inner_if;
            tree.replace(f, NodeKind::Lambda(l));
            tree.replace(
                node,
                NodeKind::Call {
                    func: CallFunc::Expr(f),
                    args,
                },
            );
            record(o, tree, "META-IF-LIFT", b, node);
            true
        }
        _ => false,
    }
}

/// The if-distribution transformation (§5) — "the essence of the boolean
/// short-circuiting idea":
///
/// ```text
/// (if (if x y z) v w)
///   ⇒ ((lambda (f g) (if x (if y (f) (g)) (if z (f) (g))))
///      (lambda () v)
///      (lambda () w))
/// ```
///
/// "The functions f and g are introduced to avoid space-wasting
/// duplication of the code for v and w."
fn if_distribute(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::If { test, then, els } = *tree.kind(node) else {
        return false;
    };
    let NodeKind::If {
        test: x,
        then: y,
        els: z,
    } = *tree.kind(test)
    else {
        return false;
    };
    let b = before(o, tree, node);
    let f = tree.add_var(o.gensym("f"));
    let g = tree.add_var(o.gensym("g"));
    let call = |tree: &mut Tree, v: VarId| {
        let r = tree.var_ref(v);
        tree.call_expr(r, Vec::new())
    };
    let (fy, gy, fz, gz) = (call(tree, f), call(tree, g), call(tree, f), call(tree, g));
    let inner_then = tree.if_(y, fy, gy);
    let inner_els = tree.if_(z, fz, gz);
    let new_if = tree.if_(x, inner_then, inner_els);
    let join = tree.lambda(vec![f, g], new_if);
    let thunk_v = tree.lambda(Vec::new(), then);
    let thunk_w = tree.lambda(Vec::new(), els);
    tree.replace(
        node,
        NodeKind::Call {
            func: CallFunc::Expr(join),
            args: vec![thunk_v, thunk_w],
        },
    );
    record(o, tree, "META-IF-DISTRIBUTE", b, node);
    true
}

// ------------------------------------------------- arithmetic canonicalizers

/// "Most associative operations with more than two arguments are reduced
/// to compositions of two-argument calls … This transformation is
/// completely table-driven." (§7.)  The fold is right-to-left, matching
/// the paper's transcript: `(+$f a b c)` ⇒ `(+$f (+$f c b) a)`.
fn assoc_commut_nary(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Call {
        func: CallFunc::Global(g),
        args,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    if args.len() <= 2 || !primop(g.as_str()).map(|p| p.assoc_commut).unwrap_or(false) {
        return false;
    }
    let b = before(o, tree, node);
    let mut rev = args;
    rev.reverse();
    let mut acc = tree.call_global(g.clone(), vec![rev[0], rev[1]]);
    for &a in &rev[2..rev.len() - 1] {
        acc = tree.call_global(g.clone(), vec![acc, a]);
    }
    let last = *rev.last().expect("len > 2");
    tree.replace(
        node,
        NodeKind::Call {
            func: CallFunc::Global(g),
            args: vec![acc, last],
        },
    );
    record(o, tree, "META-EVALUATE-ASSOC-COMMUT-CALL", b, node);
    true
}

/// "By convention constant arguments are put first where possible." (§7.)
fn reverse_arguments(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Call {
        func: CallFunc::Global(g),
        args,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    let [x, y] = args.as_slice() else {
        return false;
    };
    if !primop(g.as_str()).map(|p| p.assoc_commut).unwrap_or(false) {
        return false;
    }
    if !matches!(tree.kind(*y), NodeKind::Constant(_))
        || matches!(tree.kind(*x), NodeKind::Constant(_))
    {
        return false;
    }
    let b = before(o, tree, node);
    tree.replace(
        node,
        NodeKind::Call {
            func: CallFunc::Global(g),
            args: vec![*y, *x],
        },
    );
    record(o, tree, "CONSIDER-REVERSING-ARGUMENTS", b, node);
    true
}

/// "Table-driven elimination of identity operands" (§5): `(+ x 0)` ⇒ `x`,
/// `(*$f 1.0 x)` ⇒ `x`.
fn identity_elimination(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Call {
        func: CallFunc::Global(g),
        args,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    let [x, y] = args.as_slice() else {
        return false;
    };
    let Some(id) = primop(g.as_str()).and_then(|p| p.identity) else {
        return false;
    };
    let is_id =
        |tree: &Tree, n: NodeId| matches!(tree.kind(n), NodeKind::Constant(d) if id.matches(d));
    let survivor = if is_id(tree, *x) {
        *y
    } else if is_id(tree, *y) {
        *x
    } else {
        return false;
    };
    let b = before(o, tree, node);
    let kind = tree.kind(survivor).clone();
    tree.replace(node, kind);
    record(o, tree, "META-IDENTITY-ELIMINATION", b, node);
    true
}

/// Compile-time expression evaluation (§5): a pure primitive applied to
/// constants is evaluated now, via the reference interpreter's builtins
/// ("a very convenient thing to do in LISP with the apply operator!").
fn constant_fold(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Call {
        func: CallFunc::Global(g),
        args,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    if !primop(g.as_str()).map(|p| p.pure_math).unwrap_or(false) {
        return false;
    }
    let mut datums = Vec::with_capacity(args.len());
    for a in &args {
        let NodeKind::Constant(d) = tree.kind(*a) else {
            return false;
        };
        datums.push(d.clone());
    }
    let Some(result) = s1lisp_interp::eval_primop(g.as_str(), &datums) else {
        return false;
    };
    let b = before(o, tree, node);
    tree.replace(node, NodeKind::Constant(result));
    record(o, tree, "META-COMPILE-TIME-EVAL", b, node);
    true
}

/// The machine-inspired transformation of §7: "from `sin$f` (the sine
/// function with argument in radians) to `sinc$f` (the sine function with
/// argument in cycles) … the S-1 SIN instruction assumes its argument to
/// be in cycles.  The conversion factor is a floating-point approximation
/// to 1/2π."
fn sin_to_cycles(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let NodeKind::Call {
        func: CallFunc::Global(g),
        args,
    } = tree.kind(node).clone()
    else {
        return false;
    };
    let replacement = match g.as_str() {
        "sin$f" => "sinc$f",
        "cos$f" => "cosc$f",
        _ => return false,
    };
    let [x] = args.as_slice() else {
        return false;
    };
    let b = before(o, tree, node);
    let factor = tree.constant(Datum::Flonum(INVERSE_TWO_PI));
    let scaled = tree.call_global(o.intern("*$f"), vec![*x, factor]);
    tree.replace(
        node,
        NodeKind::Call {
            func: CallFunc::Global(o.intern(replacement)),
            args: vec![scaled],
        },
    );
    record(o, tree, "META-CONVERT-TO-CYCLES", b, node);
    true
}

// ----------------------------------------------------- beta-conversion rules

/// Rule 1 (§5): "a call with no arguments to a manifest lambda-expression
/// with no parameters can be replaced by the body of the
/// lambda-expression."
fn call_lambda(o: &mut Optimizer, tree: &mut Tree, node: NodeId) -> bool {
    let Some((_, l, args)) = let_lambda(tree, node) else {
        return false;
    };
    if !args.is_empty() || !l.required.is_empty() || !l.is_simple() {
        return false;
    }
    let b = before(o, tree, node);
    let kind = tree.kind(l.body).clone();
    tree.replace(node, kind);
    record(o, tree, "META-CALL-LAMBDA", b, node);
    true
}

/// Rule 2 (§5): a parameter "not referenced in body" whose argument's
/// "execution … has no side effects (except possibly heap-allocation)"
/// is deleted together with its argument.
fn delete_unused_argument(o: &mut Optimizer, tree: &mut Tree, node: NodeId, cx: &Cx) -> bool {
    let Some((f, l, args)) = let_lambda(tree, node) else {
        return false;
    };
    if !l.is_simple() || args.len() != l.required.len() {
        return false;
    }
    for (j, &vj) in l.required.iter().enumerate() {
        let var = tree.var(vj);
        if var.special || !var.refs.is_empty() || !var.setqs.is_empty() {
            continue;
        }
        if !cx.eff(args[j]).deletable() {
            continue;
        }
        let b = before(o, tree, node);
        remove_param(tree, node, f, j);
        record(o, tree, "META-DELETE-UNUSED-ARGUMENT", b, node);
        return true;
    }
    false
}

/// Removes parameter `j` (and the matching argument) from the let at
/// `node` whose lambda is `f`.
fn remove_param(tree: &mut Tree, node: NodeId, f: NodeId, j: usize) {
    let NodeKind::Lambda(mut l) = tree.kind(f).clone() else {
        unreachable!()
    };
    let NodeKind::Call { func, mut args } = tree.kind(node).clone() else {
        unreachable!()
    };
    l.required.remove(j);
    args.remove(j);
    tree.replace(f, NodeKind::Lambda(l));
    tree.replace(node, NodeKind::Call { func, args });
}

/// Rule 3 (§5): substitution of the argument expression for occurrences
/// of the parameter, with the paper's "collusion": when the argument has
/// one reference it is *moved*, and rule 2 immediately deletes the
/// parameter "lest the expression be evaluated twice after all".
fn substitute(o: &mut Optimizer, tree: &mut Tree, node: NodeId, cx: &Cx) -> bool {
    let Some((f, l, args)) = let_lambda(tree, node) else {
        return false;
    };
    if !l.is_simple() || args.len() != l.required.len() {
        return false;
    }
    for (j, &vj) in l.required.iter().enumerate() {
        let var = tree.var(vj).clone();
        if var.special || !var.setqs.is_empty() || var.refs.is_empty() {
            continue;
        }
        let aj = args[j];
        if is_trivial(tree, aj) {
            // Constant propagation / renaming: substitute everywhere.
            let b = before(o, tree, node);
            for &r in &var.refs {
                let copy = tree.copy_subtree(aj);
                let kind = tree.kind(copy).clone();
                tree.replace(r, kind);
            }
            remove_param(tree, node, f, j);
            record(o, tree, "META-SUBSTITUTE", b, node);
            return true;
        }
        let movable = movable_effects(tree, cx, aj);
        if !movable {
            continue;
        }
        if var.refs.len() == 1 {
            let r = var.refs[0];
            if !path_allows_move(tree, node, r) {
                continue;
            }
            let b = before(o, tree, node);
            let kind = tree.kind(aj).clone();
            tree.replace(r, kind);
            remove_param(tree, node, f, j);
            record(o, tree, "META-SUBSTITUTE", b, node);
            return true;
        }
        // Conservative multi-reference substitution (common
        // sub-expression *introduction*, §4.3): only cheap, duplicable
        // expressions, and only a few references.
        if cx.eff(aj).duplicable()
            && cx.size(aj) <= Complexity(2)
            && var.refs.len() <= 3
            && var.refs.iter().all(|&r| path_allows_move(tree, node, r))
        {
            let b = before(o, tree, node);
            for &r in &var.refs {
                let copy = tree.copy_subtree(aj);
                let kind = tree.kind(copy).clone();
                tree.replace(r, kind);
            }
            remove_param(tree, node, f, j);
            record(o, tree, "META-SUBSTITUTE", b, node);
            return true;
        }
    }
    false
}

/// Constants and immutable lexical variable references substitute freely.
fn is_trivial(tree: &Tree, n: NodeId) -> bool {
    match tree.kind(n) {
        NodeKind::Constant(_) => true,
        NodeKind::VarRef(w) => {
            let wv = tree.var(*w);
            !wv.special && wv.setqs.is_empty()
        }
        _ => false,
    }
}

/// The "certain complicated conditions regarding side effects" (§5) for
/// moving an argument expression to its use site: the expression must not
/// write, transfer control, call unknown code, or observe mutable heap
/// state, and every variable it reads must be immutable (never assigned)
/// — then no intervening computation can change its value.  This is what
/// licenses the paper's motion of `(sinc$f (*$f 0.159154942 e))` past the
/// call to `frotz` (§7).
fn movable_effects(tree: &Tree, cx: &Cx, arg: NodeId) -> bool {
    let e = cx.eff(arg);
    if e.writes_vars || e.writes_heap || e.control || e.calls_unknown || e.reads_heap {
        return false;
    }
    // Every variable read must be immutable and lexical.
    subtree_nodes(tree, arg)
        .iter()
        .all(|&n| match tree.kind(n) {
            NodeKind::VarRef(w) => {
                let wv = tree.var(*w);
                !wv.special && wv.setqs.is_empty()
            }
            _ => true,
        })
}

/// Moving an expression from the binding site to a use site must not put
/// it somewhere that executes a different number of times: crossing a
/// (non-let) lambda or a `progbody` loop is refused.
fn path_allows_move(tree: &Tree, call_node: NodeId, use_site: NodeId) -> bool {
    let mut cur = use_site;
    while let Some(parent) = tree.node(cur).parent {
        if cur == call_node {
            return true;
        }
        match tree.kind(cur) {
            NodeKind::Progbody(_) => return false,
            NodeKind::Lambda(_) => {
                // A manifest let-lambda body runs exactly once; a true
                // closure does not.
                let is_let = matches!(tree.kind(parent),
                    NodeKind::Call { func: CallFunc::Expr(f), .. } if *f == cur);
                if !is_let {
                    return false;
                }
            }
            _ => {}
        }
        cur = parent;
    }
    cur == call_node
}

impl Optimizer {
    /// Interns a fixed spelling in the optimizer's private interner
    /// (symbols compare by spelling, so these match the program's).
    pub(crate) fn intern(&mut self, s: &str) -> s1lisp_reader::Symbol {
        self.names.intern(s)
    }

    /// A fresh join-point name (`f%%1`, `g%%2`, …).
    pub(crate) fn gensym(&mut self, stem: &str) -> s1lisp_reader::Symbol {
        self.counter += 1;
        let name = format!("{stem}%%{}", self.counter);
        self.names.intern(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn optimize(src: &str) -> String {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut o = Optimizer::new();
        o.optimize(&mut f.tree);
        unparse(&f.tree, f.tree.root).to_string()
    }

    #[test]
    fn constant_test_selects_arm() {
        assert_eq!(
            optimize("(defun f () (if '1 'yes 'no))"),
            "(lambda () 'yes)"
        );
        assert_eq!(
            optimize("(defun f () (if '() 'yes 'no))"),
            "(lambda () 'no)"
        );
    }

    #[test]
    fn caseq_constant_key_selects_clause() {
        assert_eq!(
            optimize("(defun f () (caseq 2 ((1) 'one) ((2) 'two) (t 'other)))"),
            "(lambda () 'two)"
        );
        assert_eq!(
            optimize("(defun f () (caseq 9 ((1) 'one) (t 'other)))"),
            "(lambda () 'other)"
        );
    }

    #[test]
    fn known_test_simplifies_inner_if() {
        // (if p (if p a b) c) → (if p a c)
        assert_eq!(
            optimize("(defun f (p a b c) (if p (if p a b) c))"),
            "(lambda (p a b c) (if p a c))"
        );
        // In the else arm p is false.
        assert_eq!(
            optimize("(defun f (p a b c) (if p c (if p a b)))"),
            "(lambda (p a b c) (if p c b))"
        );
    }

    #[test]
    fn assigned_variables_are_not_known() {
        let out = optimize("(defun f (p a b) (if p (progn (setq p '()) (if p a b)) a))");
        assert!(out.contains("(if p a b)"), "{out}");
    }

    #[test]
    fn progn_test_lifts() {
        assert_eq!(
            optimize("(defun f (a b x y) (if (progn a b) x y))"),
            "(lambda (a b x y) (progn a (if b x y)))"
        );
    }

    #[test]
    fn nary_assoc_reduces_exactly_as_paper() {
        assert_eq!(
            optimize("(defun f (a b c) (+$f a b c))"),
            "(lambda (a b c) (+$f (+$f c b) a))"
        );
        // Four arguments nest once more.
        assert_eq!(
            optimize("(defun f (a b c d) (+$f a b c d))"),
            "(lambda (a b c d) (+$f (+$f (+$f d c) b) a))"
        );
    }

    #[test]
    fn constants_move_first() {
        assert_eq!(
            optimize("(defun f (e) (*$f e 0.5))"),
            "(lambda (e) (*$f '0.5 e))"
        );
        // Non-commutative operators keep their order.
        assert_eq!(
            optimize("(defun f (e) (-$f e 0.5))"),
            "(lambda (e) (-$f e '0.5))"
        );
    }

    #[test]
    fn identity_operands_vanish() {
        assert_eq!(optimize("(defun f (x) (+ x 0))"), "(lambda (x) x)");
        assert_eq!(optimize("(defun f (x) (*$f x 1.0))"), "(lambda (x) x)");
        assert_eq!(optimize("(defun f (x) (* 1 x))"), "(lambda (x) x)");
        // 0.0 is not the fixnum identity for +.
        let out = optimize("(defun f (x) (+ x 0.0))");
        assert!(out.contains("+"), "{out}");
    }

    #[test]
    fn constants_fold_at_compile_time() {
        assert_eq!(optimize("(defun f () (* 6 7))"), "(lambda () '42)");
        assert_eq!(optimize("(defun f () (< 1 2))"), "(lambda () 't)");
        assert_eq!(optimize("(defun f () (sqrt 4.0))"), "(lambda () '2.0)");
        // Division by zero is left for run time.
        let out = optimize("(defun f () (/ 1 0))");
        assert!(out.contains('/'), "{out}");
    }

    #[test]
    fn sin_becomes_sinc_with_factor() {
        assert_eq!(
            optimize("(defun f (e) (sin$f e))"),
            "(lambda (e) (sinc$f (*$f '0.159154942 e)))"
        );
    }

    #[test]
    fn single_use_pure_argument_moves_past_calls() {
        // The §7 motion: q's defining expression moves past (frotz …).
        assert_eq!(
            optimize("(defun f (d e) (let ((q (sqrt$f e))) (frotz d) q))"),
            "(lambda (d e) (progn (frotz d) (sqrt$f e)))"
        );
    }

    #[test]
    fn argument_does_not_move_into_loops() {
        let out = optimize(
            "(defun f (e) (let ((q (sqrt$f e)))
               (prog () top (frotz q) (go top))))",
        );
        assert!(out.contains("lambda (q)"), "moved into loop: {out}");
    }

    #[test]
    fn argument_reading_assigned_variable_stays_put() {
        let out = optimize("(defun f (e) (let ((q (sqrt$f e))) (setq e (frotz)) q))");
        assert!(out.contains("lambda (q)"), "illegal motion: {out}");
    }

    #[test]
    fn effectful_argument_is_not_moved() {
        let out = optimize("(defun f () (let ((q (frotz))) (g) q))");
        assert!(out.contains("lambda (q)"), "{out}");
    }

    #[test]
    fn procedure_integration_inlines_single_use_thunks() {
        // A let-bound lambda used once integrates and beta-reduces.
        assert_eq!(
            optimize("(defun f (x) (let ((g (lambda () (+ x 1)))) (g)))"),
            "(lambda (x) (+ '1 x))"
        );
    }

    #[test]
    fn multi_use_lambda_stays_bound() {
        let out = optimize("(defun f (p x) (let ((g (lambda () (frotz x)))) (if p (g) (g))))");
        assert!(out.contains("lambda (g"), "{out}");
    }

    #[test]
    fn names_do_not_collide_with_user_variables() {
        // User uses f and g as variables; join points must not capture.
        let out = optimize("(defun h (f g a) (if (if a f g) (f) (g)))");
        assert!(out.contains("f%%") || out.contains("(if a"), "{out}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{OptOptions, Optimizer};
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn optimize_with(src: &str, options: OptOptions) -> (String, usize) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut o = Optimizer::with_options(options);
        let n = o.optimize(&mut f.tree);
        (unparse(&f.tree, f.tree.root).to_string(), n)
    }

    #[test]
    fn lambda_call_test_lifts_out_of_if() {
        // (if (let ((v e)) v) x y) — the §5 semi-canonicalization's
        // lambda form.
        let (out, _) = optimize_with(
            "(defun f (e x y) (if (let ((v (frotz e))) v) x y))",
            OptOptions::default(),
        );
        assert!(
            out.contains("(if v x y)") || out.contains("(if v"),
            "test should have moved inside the lambda: {out}"
        );
    }

    #[test]
    fn max_rounds_caps_work() {
        let (_, n) = optimize_with(
            "(defun f (a b c d) (if (and a (or b c)) (e1) (e2)))",
            OptOptions {
                max_rounds: 3,
                ..OptOptions::default()
            },
        );
        assert_eq!(n, 3, "exactly the budget");
    }

    #[test]
    fn trace_off_records_nothing() {
        let mut i = Interner::new();
        let form = read_str("(defun f () (let ((x 2)) (+ x 3)))", &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut o = Optimizer::with_options(OptOptions {
            trace: false,
            ..OptOptions::default()
        });
        let n = o.optimize(&mut f.tree);
        assert!(n > 0);
        assert!(o.transcript.entries.is_empty());
    }

    #[test]
    fn caseq_key_constant_folds_through_arms() {
        let (out, _) = optimize_with(
            "(defun f () (caseq (+ 1 1) ((1) 'one) ((2) 'two) (t 'other)))",
            OptOptions::default(),
        );
        assert_eq!(out, "(lambda () 'two)");
    }

    #[test]
    fn identity_elimination_is_type_strict() {
        // 0 is the + identity but not the +$f identity.
        let (out, _) = optimize_with("(defun f (x) (+$f x 0))", OptOptions::default());
        assert!(out.contains("+$f"), "{out}");
        let (out2, _) = optimize_with("(defun f (x) (+$f x 0.0))", OptOptions::default());
        assert_eq!(out2, "(lambda (x) x)");
    }

    #[test]
    fn unused_effectful_argument_survives_in_order() {
        // Both arguments unused, one effectful: only the pure one is
        // deleted.
        let (out, _) = optimize_with(
            "(defun f (p) (let ((a (frotz)) (b (* p p))) 7))",
            OptOptions::default(),
        );
        assert!(out.contains("(frotz)"), "{out}");
        assert!(!out.contains("(* p p)"), "{out}");
    }

    #[test]
    fn deeply_nested_boolean_terminates() {
        let (out, n) = optimize_with(
            "(defun f (a b c d e) (if (and a (or b (and c (or d e)))) 1 2))",
            OptOptions::default(),
        );
        assert!(n < 200, "terminates well under the cap: {n}");
        assert!(!out.contains("and"), "{out}");
    }

    #[test]
    fn substitution_respects_catch_boundaries() {
        // The defining expression must not move into a catch body (the
        // catch may observe it earlier via throw-order effects).
        let (out, _) = optimize_with(
            "(defun f (x) (let ((q (frotz x))) (catch 'c (g) q)))",
            OptOptions::default(),
        );
        assert!(out.contains("lambda (q)"), "{out}");
    }

    #[test]
    fn sinc_constant_is_single_precision_inverse_two_pi() {
        assert!((INVERSE_TWO_PI - 1.0 / std::f64::consts::TAU).abs() < 1e-8);
        assert_eq!(format!("{INVERSE_TWO_PI}"), "0.159154942");
    }
}

#[cfg(test)]
mod unroll_tests {
    use super::*;
    use crate::{OptOptions, Optimizer};
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn run_unroll(src: &str, name: &str) -> (String, crate::Transcript) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut o = Optimizer::with_options(OptOptions {
            unroll: true,
            ..OptOptions::default()
        });
        o.optimize_named(&mut f.tree, Some(name));
        (
            unparse(&f.tree, f.tree.root).to_string(),
            std::mem::take(&mut o.transcript),
        )
    }

    #[test]
    fn self_call_integrates_once() {
        let (out, tr) = run_unroll(
            "(defun countdown (n) (if (zerop n) 'done (countdown (- n 1))))",
            "countdown",
        );
        assert!(tr.count("META-UNROLL-INTEGRATE-SELF") == 1, "{tr}");
        // Two tests of zerop now exist (original + unrolled copy), and
        // the recursion survives inside the copy.
        assert_eq!(out.matches("zerop").count(), 2, "{out}");
        assert_eq!(out.matches("(countdown").count(), 1, "{out}");
    }

    #[test]
    fn big_bodies_are_left_alone() {
        let body: String = (0..30)
            .map(|i| format!("(frotz {i})"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!("(defun f (n) (progn {body} (f (- n 1))))");
        let (_, tr) = run_unroll(&src, "f");
        assert_eq!(tr.count("META-UNROLL-INTEGRATE-SELF"), 0);
    }

    #[test]
    fn unroll_is_off_by_default() {
        let mut i = Interner::new();
        let form = read_str(
            "(defun countdown (n) (if (zerop n) 'done (countdown (- n 1))))",
            &mut i,
        )
        .unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut o = Optimizer::new();
        o.optimize_named(&mut f.tree, Some("countdown"));
        assert_eq!(o.transcript.count("META-UNROLL-INTEGRATE-SELF"), 0);
    }
}
