//! The paper-style transformation transcript.
//!
//! §7 of the paper reproduces the compiler's debugging transcript:
//!
//! ```text
//! ;**** Optimizing this form: (+$f a b c)
//! ;**** to be this form: (+$f (+$f c b) a)
//! ;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL
//! ```
//!
//! [`Transcript`] records one [`TranscriptEntry`] per applied
//! transformation, with back-translated before/after forms.

use std::fmt;

/// One applied transformation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// The rule name, in the paper's META-… style.
    pub rule: &'static str,
    /// Back-translated source of the form before the rewrite.
    pub before: String,
    /// Back-translated source after the rewrite.
    pub after: String,
}

/// The transformation log of one optimization run.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    /// Entries in application order.
    pub entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// Records an applied transformation.
    pub fn record(&mut self, rule: &'static str, before: String, after: String) {
        self.entries.push(TranscriptEntry {
            rule,
            before,
            after,
        });
    }

    /// How many times `rule` fired.
    pub fn count(&self, rule: &str) -> usize {
        self.entries.iter().filter(|e| e.rule == rule).count()
    }

    /// Firing counts per rule, in first-fired order.
    pub fn rule_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut hist: Vec<(&'static str, u64)> = Vec::new();
        for e in &self.entries {
            match hist.iter_mut().find(|(r, _)| *r == e.rule) {
                Some(slot) => slot.1 += 1,
                None => hist.push((e.rule, 1)),
            }
        }
        hist
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, ";**** Optimizing this form: {}", e.before)?;
            writeln!(f, ";**** to be this form: {}", e.after)?;
            writeln!(f, ";**** courtesy of {}", e.rule)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        let mut t = Transcript::default();
        t.record(
            "META-EVALUATE-ASSOC-COMMUT-CALL",
            "(+$f a b c)".into(),
            "(+$f (+$f c b) a)".into(),
        );
        let s = t.to_string();
        assert!(s.contains(";**** Optimizing this form: (+$f a b c)"));
        assert!(s.contains(";**** to be this form: (+$f (+$f c b) a)"));
        assert!(s.contains(";**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL"));
        assert_eq!(t.count("META-EVALUATE-ASSOC-COMMUT-CALL"), 1);
        assert_eq!(t.count("META-CALL-LAMBDA"), 0);
    }

    #[test]
    fn rule_histogram_counts_in_first_fired_order() {
        let mut t = Transcript::default();
        t.record("META-SUBSTITUTE", "a".into(), "b".into());
        t.record("META-CALL-LAMBDA", "c".into(), "d".into());
        t.record("META-SUBSTITUTE", "e".into(), "f".into());
        assert_eq!(
            t.rule_histogram(),
            vec![("META-SUBSTITUTE", 2), ("META-CALL-LAMBDA", 1)]
        );
        assert!(Transcript::default().rule_histogram().is_empty());
    }
}
