//! The source-level optimizer (§5 of the paper).
//!
//! "In general, all source-program constructs outside a certain small set
//! are re-expressed as combinations of constructs within the set … for
//! the most part the compiler relies on a small set of general
//! optimization techniques to produce special-case efficiencies."
//!
//! The three central rules are the lambda-calculus beta-conversion split
//! into parts (§5):
//!
//! 1. `((lambda () body))` ⇒ `body` — **META-CALL-LAMBDA**;
//! 2. deletion of an unbound-in-body parameter whose argument has no side
//!    effects ("except possibly heap-allocation, which … may be
//!    eliminated but must not be duplicated") — **META-DELETE-UNUSED-ARGUMENT**;
//! 3. substitution of an argument expression for occurrences of its
//!    parameter, "provided that certain complicated conditions regarding
//!    side effects are satisfied" — **META-SUBSTITUTE**.
//!
//! Constant propagation, procedure integration, and loop unrolling "fall
//! out as special cases of beta-conversion".  Alongside them run the
//! if-distribution transformation (the essence of boolean
//! short-circuiting), conditional simplification ("realizing that `b` is
//! true in the inner `if` by virtue of the test in the outer one"),
//! compile-time expression evaluation, dead-code elimination, table-driven
//! manipulation of associative/commutative operators, and the
//! semi-canonicalizing `progn`/lambda lifts out of `if` tests.
//!
//! Every transformation is recorded in a [`Transcript`] in the style of
//! the paper's §7 debugging output, and every intermediate tree remains
//! back-translatable to source.
//!
//! Common sub-expression elimination (§4.3 — designed but "not yet
//! implemented" in 1982) is provided as the optional [`cse`] phase.
//!
//! # Examples
//!
//! ```
//! use s1lisp_frontend::Frontend;
//! use s1lisp_opt::Optimizer;
//! use s1lisp_reader::{read_str, Interner};
//! use s1lisp_ast::unparse;
//!
//! let mut i = Interner::new();
//! let src = read_str("(defun f () (let ((x 2)) (+ x 3)))", &mut i).unwrap();
//! let mut fe = Frontend::new(&mut i);
//! let mut func = fe.convert_defun(&src).unwrap();
//! let mut opt = Optimizer::new();
//! opt.optimize(&mut func.tree);
//! // Constant propagation + folding reduce the body to a constant.
//! assert_eq!(unparse(&func.tree, func.tree.root).to_string(), "(lambda () '5)");
//! ```

#![warn(missing_docs)]

pub mod cse;
mod rules;
mod transcript;

pub use transcript::{Transcript, TranscriptEntry};

use s1lisp_ast::Tree;

/// Per-transformation switches, for the ablation experiments (E12).
#[derive(Clone, Debug)]
#[allow(clippy::struct_excessive_bools)]
pub struct OptOptions {
    /// Rule 1: `((lambda () body))` ⇒ `body`.
    pub call_lambda: bool,
    /// Rule 2: deletion of unused parameters with effect-free arguments.
    pub unused_args: bool,
    /// Rule 3: substitution of argument expressions for variables
    /// (subsumes constant propagation and procedure integration).
    pub substitution: bool,
    /// Distribution of `if` over an `if` test, introducing lambda-bound
    /// join points.
    pub if_distribution: bool,
    /// Conditional simplification: constant tests, tests known true or
    /// false from an enclosing test.
    pub if_simplify: bool,
    /// Semi-canonicalizing lifts of `progn` and lambda-calls out of `if`
    /// tests.
    pub if_lift: bool,
    /// Compile-time evaluation of pure primitives on constants.
    pub constant_fold: bool,
    /// Reduction of n-ary associative/commutative calls to binary
    /// compositions, constants-first argument ordering, and identity
    /// elimination.
    pub assoc_commut: bool,
    /// The machine-inspired `sin$f` → `sinc$f` (cycles) rewrite (§7).
    pub sin_to_cycles: bool,
    /// Unroll self-recursive calls once by procedure integration — the
    /// paper's "integration of the procedure within itself achieves loop
    /// unrolling", gated off by default exactly as in 1982 ("the
    /// heuristics … are so conservative as to avoid loop unrolling
    /// completely").  Requires [`Optimizer::optimize_named`].
    pub unroll: bool,
    /// Upper bound on applied transformations (each is found by a full
    /// tree scan, after which analyses are re-run).
    pub max_rounds: usize,
    /// Record a transcript entry per transformation.
    pub trace: bool,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            call_lambda: true,
            unused_args: true,
            substitution: true,
            if_distribution: true,
            if_simplify: true,
            if_lift: true,
            constant_fold: true,
            assoc_commut: true,
            sin_to_cycles: true,
            unroll: false,
            max_rounds: 2000,
            trace: true,
        }
    }
}

impl OptOptions {
    /// Everything off — the E12 baseline.
    pub fn none() -> OptOptions {
        OptOptions {
            call_lambda: false,
            unused_args: false,
            substitution: false,
            if_distribution: false,
            if_simplify: false,
            if_lift: false,
            constant_fold: false,
            assoc_commut: false,
            sin_to_cycles: false,
            unroll: false,
            max_rounds: 0,
            trace: false,
        }
    }
}

/// The source-level optimizer.
#[derive(Debug, Default)]
pub struct Optimizer {
    /// Transformation switches.
    pub options: OptOptions,
    /// The paper-style transformation log.
    pub transcript: Transcript,
    /// Private interner for compiler-introduced names (join points).
    pub(crate) names: s1lisp_reader::Interner,
    /// Gensym counter for join-point names.
    pub(crate) counter: u32,
}

impl Optimizer {
    /// An optimizer with default options.
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// An optimizer with the given options.
    pub fn with_options(options: OptOptions) -> Optimizer {
        Optimizer {
            options,
            ..Optimizer::default()
        }
    }

    /// Rewrites `tree` to a fixpoint (or until `max_rounds`), returning
    /// the number of transformations applied.
    ///
    /// Analyses are re-run between rounds, mirroring the paper's
    /// co-routining of analysis and optimization; per-node dirty flags are
    /// cleared on visited nodes so a quiescent round ends the loop.
    pub fn optimize(&mut self, tree: &mut Tree) -> usize {
        self.optimize_named(tree, None)
    }

    /// Like [`Optimizer::optimize`], but knowing the function's own name
    /// enables self-call transformations (loop unrolling).
    pub fn optimize_named(&mut self, tree: &mut Tree, self_name: Option<&str>) -> usize {
        let mut total = 0;
        if self.options.unroll {
            if let Some(name) = self_name {
                total += self.unroll_stage(tree, name);
            }
        }
        for _ in 0..self.options.max_rounds {
            let applied = self.round(tree);
            total += applied;
            if applied == 0 {
                break;
            }
        }
        tree.rebuild_backlinks();
        total
    }

    /// The optional unroll stage of the fixpoint: integrate one
    /// self-recursive call of `self_name` by beta-conversion (§5's "the
    /// integration of the procedure within itself achieves loop
    /// unrolling"), returning the number of transformations applied.
    /// Rebuilds backlinks first; runs regardless of
    /// [`OptOptions::unroll`], which callers gate on.
    ///
    /// This and [`Optimizer::round`] are the primitives a fixpoint
    /// driver (the pass manager's source-level-optimization pass, or
    /// [`Optimizer::optimize_named`] itself) loops over.
    pub fn unroll_stage(&mut self, tree: &mut Tree, self_name: &str) -> usize {
        tree.rebuild_backlinks();
        rules::unroll_once(self, tree, self_name)
    }

    /// One transformation round: rebuild backlinks (re-running the
    /// analyses the rules consult, mirroring the paper's co-routining of
    /// analysis and optimization), then scan the whole tree once
    /// applying every enabled rule.  Returns the number of
    /// transformations applied; `0` means the tree is at a fixpoint.
    pub fn round(&mut self, tree: &mut Tree) -> usize {
        tree.rebuild_backlinks();
        rules::run_round(self, tree)
    }

    /// Like [`Optimizer::optimize_named`], but *guarded*: after the
    /// unroll stage and after every transformation round the tree is
    /// checked against the Table-2 well-formedness invariants
    /// ([`s1lisp_ast::well_formed`]).  A violation stops optimization
    /// immediately and reports which round (and most recent rule) broke
    /// the tree, so the caller can route the function to a degraded
    /// recompile instead of emitting code from a corrupt tree.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invariant violated.
    pub fn optimize_checked(
        &mut self,
        tree: &mut Tree,
        self_name: Option<&str>,
    ) -> Result<usize, String> {
        let mut total = 0;
        if self.options.unroll {
            if let Some(name) = self_name {
                total += self.unroll_stage(tree, name);
                self.check_round(tree, 0)?;
            }
        }
        for round in 1..=self.options.max_rounds {
            let applied = self.round(tree);
            total += applied;
            if applied > 0 {
                self.check_round(tree, round)?;
            }
            if applied == 0 {
                break;
            }
        }
        tree.rebuild_backlinks();
        Ok(total)
    }

    /// Validates the tree against the Table-2 well-formedness
    /// invariants after fixpoint stage `round` (`0` = the unroll
    /// stage), blaming the most recent transcript rule in the error.
    /// Public so external fixpoint drivers (the guarded
    /// source-level-optimization pass) can interleave validation with
    /// [`Optimizer::round`] exactly as [`Optimizer::optimize_checked`]
    /// does.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invariant violated.
    pub fn check_round(&self, tree: &Tree, round: usize) -> Result<(), String> {
        if let Err(e) = s1lisp_ast::well_formed(tree) {
            let last_rule = self
                .transcript
                .entries
                .last()
                .map(|e| e.rule)
                .unwrap_or("(none)");
            let stage = if round == 0 {
                "after unroll".to_string()
            } else {
                format!("after round {round}")
            };
            return Err(format!("{e} ({stage}, last rule {last_rule})"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_ast::unparse;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn optimize(src: &str) -> (String, Transcript) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let mut opt = Optimizer::new();
        opt.optimize(&mut f.tree);
        (
            unparse(&f.tree, f.tree.root).to_string(),
            std::mem::take(&mut opt.transcript),
        )
    }

    #[test]
    fn constant_let_folds_away() {
        let (out, _) = optimize("(defun f () (let ((x 2)) (+ x 3)))");
        assert_eq!(out, "(lambda () '5)");
    }

    #[test]
    fn boolean_short_circuit_derivation() {
        // §5's worked example: (if (and a (or b c)) e1 e2).  The final
        // form must contain no `and`/`or`, no double evaluation, and the
        // multi-use join point must remain a lambda-bound function.
        let (out, tr) = optimize("(defun f (a b c) (if (and a (or b c)) (e1) (e2)))");
        assert!(!out.contains("and"), "{out}");
        // All lambda-bound temporaries should be join-point thunks or the
        // or-temporary; the constant-false arm must be gone.
        assert!(!out.contains("'()"), "dead arm survived: {out}");
        // The paper's target shape: nested ifs on a, b, c, with e1/e2
        // reachable through at most one level of thunk.
        assert!(out.contains("(if b"), "{out}");
        assert!(out.contains("(if c"), "{out}");
        assert!(
            tr.entries.iter().any(|e| e.rule == "META-IF-DISTRIBUTE"),
            "if-distribution not exercised"
        );
        assert!(
            tr.entries.iter().any(|e| e.rule == "META-CALL-LAMBDA"),
            "call-lambda not exercised"
        );
    }

    #[test]
    fn testfn_derivation_matches_paper() {
        // §7's worked example, step by step.
        let (out, tr) = optimize(
            "(defun testfn (a &optional (b 3.0) (c a))
               (let ((d (+$f a b c)) (e (*$f a b c)))
                 (let ((q (sin$f e)))
                   (frotz d e (max$f d e))
                   q)))",
        );
        // Association reduced to binary calls, reversed: (+$f (+$f c b) a).
        assert!(out.contains("(+$f (+$f c b) a)"), "{out}");
        assert!(out.contains("(*$f (*$f c b) a)"), "{out}");
        // sin$f became sinc$f with the constant first.
        assert!(out.contains("(sinc$f (*$f '0.159154942 e))"), "{out}");
        // q was substituted past the call to frotz and eliminated.
        assert!(!out.contains("(q"), "{out}");
        assert!(
            out.contains("(progn (frotz d e (max$f d e)) (sinc$f (*$f '0.159154942 e)))"),
            "{out}"
        );
        for rule in [
            "META-EVALUATE-ASSOC-COMMUT-CALL",
            "CONSIDER-REVERSING-ARGUMENTS",
            "META-SUBSTITUTE",
            "META-CALL-LAMBDA",
        ] {
            assert!(
                tr.entries.iter().any(|e| e.rule == rule),
                "missing transcript rule {rule}\n{tr}"
            );
        }
    }

    #[test]
    fn disabled_optimizer_is_identity() {
        let src = "(defun f () (let ((x 2)) (+ x 3)))";
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let before = unparse(&f.tree, f.tree.root).to_string();
        let mut opt = Optimizer::with_options(OptOptions::none());
        let n = opt.optimize(&mut f.tree);
        assert_eq!(n, 0);
        assert_eq!(unparse(&f.tree, f.tree.root).to_string(), before);
    }

    #[test]
    fn effectful_arguments_are_preserved() {
        // (frotz) may have side effects: the let cannot be eliminated even
        // though x is dead.
        let (out, _) = optimize("(defun f () (let ((x (frotz))) 42))");
        assert!(out.contains("frotz"), "{out}");
        // But the dead binding of a pure expression goes away entirely.
        let (out2, _) = optimize("(defun f (y) (let ((x (* y y))) 42))");
        assert_eq!(out2, "(lambda (y) '42)");
    }
}
