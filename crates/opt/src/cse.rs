//! Common sub-expression elimination (§4.3).
//!
//! In 1982 this phase was designed but "not yet implemented, because
//! preliminary experiments indicate\[d\] that its contribution to program
//! speed will be smaller than the other techniques"; we implement it as
//! the optional extension the paper describes: "its use is completely
//! optional … and can be expressed as a source-level transformation using
//! lambda-expressions."
//!
//! The paper also explains why CSE is a *separate phase* from the
//! source-level optimizer: the optimizer performs common sub-expression
//! *introduction* (substituting initializing expressions for variables),
//! and separating the two "avoids the possibility of an endless cycle of
//! introductions and eliminations".  The same thrashing guard appears
//! here as a size threshold: the optimizer only duplicates expressions of
//! complexity ≤ 2, and this phase only commons expressions of complexity
//! ≥ 3, so neither can undo the other.

use std::collections::HashMap;

use s1lisp_analysis::{complexity, effects, Complexity};
use s1lisp_ast::{subtree_nodes, unparse, CallFunc, NodeId, NodeKind, Tree};
use s1lisp_reader::Interner;

/// Minimum complexity for an expression to be worth commoning (the
/// anti-thrashing threshold; see module docs).
pub const MIN_SIZE: Complexity = Complexity(3);

/// Eliminates common sub-expressions in `tree`, rewriting duplicated pure
/// computations into a `let` at their least common ancestor.  Returns the
/// number of eliminations performed.
///
/// # Examples
///
/// ```
/// use s1lisp_frontend::Frontend;
/// use s1lisp_reader::{read_str, Interner};
/// use s1lisp_ast::unparse;
///
/// let mut i = Interner::new();
/// let src = read_str(
///     "(defun f (a b) (list (+ (* a b) 1) (+ (* a b) 2)))", &mut i).unwrap();
/// let mut fe = Frontend::new(&mut i);
/// let mut func = fe.convert_defun(&src).unwrap();
/// let n = s1lisp_opt::cse::eliminate(&mut func.tree);
/// assert_eq!(n, 1);
/// let out = unparse(&func.tree, func.tree.root).to_string();
/// // (* a b) computed once, bound to a compiler temporary.
/// assert_eq!(out.matches("(* a b)").count(), 1, "{out}");
/// ```
pub fn eliminate(tree: &mut Tree) -> usize {
    let mut names = Interner::new();
    let mut counter = 0u32;
    let mut total = 0;
    // Iterate to a fixpoint: each pass commons one expression class.
    for _ in 0..64 {
        tree.rebuild_backlinks();
        if !eliminate_one(tree, &mut names, &mut counter) {
            break;
        }
        total += 1;
    }
    tree.rebuild_backlinks();
    total
}

fn eliminate_one(tree: &mut Tree, names: &mut Interner, counter: &mut u32) -> bool {
    let eff = effects(tree);
    let sizes = complexity(tree);
    // Group candidate nodes by their printed form (structural identity
    // after alpha-renaming).
    let mut groups: HashMap<String, Vec<NodeId>> = HashMap::new();
    for node in subtree_nodes(tree, tree.root) {
        let e = eff.get(&node).copied().unwrap_or_default();
        if !e.duplicable() || e.reads_heap {
            continue;
        }
        if sizes.get(&node).copied().unwrap_or(Complexity(0)) < MIN_SIZE {
            continue;
        }
        // Expressions reading assigned variables are not location-
        // independent.
        let stable = subtree_nodes(tree, node)
            .iter()
            .all(|&n| match tree.kind(n) {
                NodeKind::VarRef(w) => {
                    let wv = tree.var(*w);
                    !wv.special && wv.setqs.is_empty()
                }
                NodeKind::Lambda(_) | NodeKind::Progbody(_) => false,
                _ => true,
            });
        if !stable {
            continue;
        }
        groups
            .entry(unparse(tree, node).to_string())
            .or_default()
            .push(node);
    }
    let mut candidates: Vec<(String, Vec<NodeId>)> = groups
        .into_iter()
        .filter(|(_, nodes)| nodes.len() >= 2)
        .collect();
    // Deterministic order; biggest first so outer expressions common
    // before their own subparts.
    candidates.sort_by_key(|(k, _)| std::cmp::Reverse((k.len(), k.clone())));

    'group: for (_, nodes) in candidates {
        // Skip groups where one occurrence contains another.
        for &a in &nodes {
            for &b in &nodes {
                if a != b && subtree_nodes(tree, a).contains(&b) {
                    continue 'group;
                }
            }
        }
        let lca = lca_many(tree, &nodes);
        // All occurrences must be movable to the LCA without crossing a
        // lambda or loop boundary.
        let ok = nodes.iter().all(|&n| path_clear(tree, lca, n)) && path_to_root_clear(tree, lca);
        if !ok {
            continue;
        }
        // Rewrite: bind the expression at the LCA.
        *counter += 1;
        let tmp = names.intern(&format!("cse%%{counter}"));
        let var = tree.add_var(tmp);
        let init = tree.copy_subtree(nodes[0]);
        for &n in &nodes {
            tree.replace(n, NodeKind::VarRef(var));
        }
        let hole = tree.add(tree.kind(lca).clone());
        let lambda = tree.lambda(vec![var], hole);
        tree.replace(
            lca,
            NodeKind::Call {
                func: CallFunc::Expr(lambda),
                args: vec![init],
            },
        );
        return true;
    }
    false
}

/// No lambda/progbody boundary between `anc` (exclusive) and `node`.
fn path_clear(tree: &Tree, anc: NodeId, node: NodeId) -> bool {
    let mut cur = node;
    while cur != anc {
        match tree.node(cur).parent {
            Some(p) => {
                if matches!(tree.kind(p), NodeKind::Lambda(_) | NodeKind::Progbody(_)) && p != anc {
                    // Crossing a lambda is fine only when it is the let
                    // being formed — but we are inspecting the original
                    // tree, so any lambda/loop crossing disqualifies.
                    return false;
                }
                cur = p;
            }
            None => return false,
        }
    }
    true
}

/// The LCA itself must be inside the root lambda's body (not a default
/// expression of an optional parameter, where bindings are mid-flight).
fn path_to_root_clear(tree: &Tree, lca: NodeId) -> bool {
    let mut cur = lca;
    while let Some(p) = tree.node(cur).parent {
        if let NodeKind::Lambda(l) = tree.kind(p) {
            if l.optional.iter().any(|o| o.default == cur) {
                return false;
            }
        }
        cur = p;
    }
    cur == tree.root
}

/// Path from `node` to the root.
fn ancestry(tree: &Tree, node: NodeId) -> Vec<NodeId> {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(p) = tree.node(cur).parent {
        path.push(p);
        cur = p;
    }
    path
}

fn lca_many(tree: &Tree, nodes: &[NodeId]) -> NodeId {
    let mut acc = ancestry(tree, nodes[0]);
    for &n in &nodes[1..] {
        let path: std::collections::HashSet<NodeId> = ancestry(tree, n).into_iter().collect();
        acc.retain(|a| path.contains(a));
    }
    acc.first().copied().unwrap_or(tree.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::read_str;

    fn run(src: &str) -> (String, usize) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let mut f = fe.convert_defun(&form).unwrap();
        let n = eliminate(&mut f.tree);
        (unparse(&f.tree, f.tree.root).to_string(), n)
    }

    #[test]
    fn duplicate_computation_is_commoned() {
        let (out, n) = run("(defun f (a b) (list (+ (* a b) 1) (+ (* a b) 2)))");
        assert_eq!(n, 1);
        assert_eq!(out.matches("(* a b)").count(), 1, "{out}");
        assert!(out.contains("cse%%"), "{out}");
    }

    #[test]
    fn small_expressions_are_left_alone() {
        // (* a b) alone has complexity 3 but (car x)-sized or variable
        // references must not be commoned.
        let (out, n) = run("(defun f (a) (list (1+ a) (1+ a)))");
        assert_eq!(n, 0, "{out}");
    }

    #[test]
    fn effectful_expressions_are_not_commoned() {
        let (out, n) = run("(defun f (a) (list (frotz a a a) (frotz a a a)))");
        assert_eq!(n, 0, "{out}");
    }

    #[test]
    fn loop_invariant_expressions_hoist_above_the_loop() {
        // Both occurrences are inside the progbody; their LCA *is* the
        // progbody, so the binding wraps the loop — loop-invariant code
        // motion for free.
        let (out, n) = run("(defun f (a b)
               (prog (acc)
                 top
                 (setq acc (+ (* a b a) acc))
                 (if (null acc) (return (* a b a)))
                 (go top)))");
        assert_eq!(n, 1, "{out}");
        assert_eq!(out.matches("(* a b a)").count(), 1, "{out}");
        assert!(out.contains("(lambda (cse%%1) (progbody"), "{out}");
    }

    #[test]
    fn expressions_over_assigned_variables_are_skipped() {
        let (out, n) = run("(defun f (a b) (progn (setq a 1) (list (+ (* a b) 1) (+ (* a b) 2))))");
        assert_eq!(n, 0, "{out}");
    }

    #[test]
    fn nested_duplicates_common_outermost_first() {
        let (out, n) = run("(defun f (a b) (list (+ (* a b) (* b b)) (+ (* a b) (* b b))))");
        assert!(n >= 1);
        assert_eq!(out.matches("(+ (* a b) (* b b))").count(), 1, "{out}");
    }
}
