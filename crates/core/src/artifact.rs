//! The cacheable result of compiling one function.
//!
//! An [`Artifact`] is everything the compilation service needs to hand
//! back for a function without re-running any phase: the assembly
//! listing, the TN packing map, the rendered dossier, and the summary
//! numbers the experiment reports consume.  It is plain data — strings
//! and integers only — so it crosses threads freely and round-trips
//! through the `s1lisp-trace` JSON layer for the on-disk cache tier.

use s1lisp_trace::json::Json;

/// One function's complete compilation output, detached from the
/// [`Compiler`](crate::Compiler) that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// The `defun` name.
    pub name: String,
    /// The backend that emitted this artifact
    /// ([`BackendKind::name`](crate::BackendKind::name): `"s1"` or
    /// `"bytecode"`).
    pub backend: String,
    /// The cache key this artifact was stored under (structural tree
    /// fingerprint mixed with the options fingerprint); `0` until the
    /// service assigns it.
    pub fingerprint: u64,
    /// Back-translated source as converted (before optimization).
    pub converted: String,
    /// Back-translated source after source-level optimization.
    pub optimized: String,
    /// Number of source-level transformations applied.
    pub transformations: u64,
    /// Optimizer rule-firing histogram, in first-fired order.
    pub rules: Vec<(String, u64)>,
    /// Table 1 phases this function went through (name, span count).
    pub phase_spans: Vec<(String, u64)>,
    /// TN packing decisions, one line per temporary name.
    pub tn_map: Vec<String>,
    /// Representation coercions inserted during annotation.
    pub coercions: Vec<String>,
    /// Parenthesized-assembly listing.
    pub assembly: String,
    /// Instruction count of the final code.
    pub insns: u64,
    /// The rendered compilation dossier (deterministic form, no wall
    /// times).
    pub dossier: String,
    /// True when this is the fallback output of a degraded recompile
    /// (transformations off after a panic or timeout).  Degraded
    /// artifacts are never cached.
    pub degraded: bool,
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

fn count_map(pairs: &[(String, u64)]) -> Json {
    Json::Map(
        pairs
            .iter()
            .map(|(k, n)| (k.clone(), Json::uint(*n)))
            .collect(),
    )
}

impl Artifact {
    /// Serializes for the on-disk cache tier and the `service` report
    /// record.  The fingerprint is a 16-digit hex string (JSON integers
    /// are `i64`; the key is a full `u64`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("backend".into(), Json::str(&self.backend)),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("converted".into(), Json::str(&self.converted)),
            ("optimized".into(), Json::str(&self.optimized)),
            ("transformations".into(), Json::uint(self.transformations)),
            ("rules".into(), count_map(&self.rules)),
            ("phase_spans".into(), count_map(&self.phase_spans)),
            ("tn_map".into(), str_arr(&self.tn_map)),
            ("coercions".into(), str_arr(&self.coercions)),
            ("assembly".into(), Json::str(&self.assembly)),
            ("insns".into(), Json::uint(self.insns)),
            ("dossier".into(), Json::str(&self.dossier)),
            ("degraded".into(), Json::Bool(self.degraded)),
        ])
    }

    /// Rebuilds an artifact from [`Artifact::to_json`] output (or its
    /// parse).  Returns `None` on any missing or mistyped field, so a
    /// corrupt disk-cache entry degrades to a cache miss.
    pub fn from_json(j: &Json) -> Option<Artifact> {
        let s = |key: &str| Some(j.get(key)?.as_str()?.to_string());
        let n = |key: &str| u64::try_from(j.get(key)?.as_int()?).ok();
        let strs = |key: &str| {
            j.get(key)?
                .as_arr()?
                .iter()
                .map(|v| Some(v.as_str()?.to_string()))
                .collect::<Option<Vec<String>>>()
        };
        let counts = |key: &str| {
            j.get(key)?
                .entries()?
                .iter()
                .map(|(k, v)| Some((k.clone(), u64::try_from(v.as_int()?).ok()?)))
                .collect::<Option<Vec<(String, u64)>>>()
        };
        Some(Artifact {
            name: s("name")?,
            backend: s("backend")?,
            fingerprint: u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?,
            converted: s("converted")?,
            optimized: s("optimized")?,
            transformations: n("transformations")?,
            rules: counts("rules")?,
            phase_spans: counts("phase_spans")?,
            tn_map: strs("tn_map")?,
            coercions: strs("coercions")?,
            assembly: s("assembly")?,
            insns: n("insns")?,
            dossier: s("dossier")?,
            degraded: j.get("degraded")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_trace::json;

    fn sample() -> Artifact {
        Artifact {
            name: "norm".into(),
            backend: "s1".into(),
            fingerprint: 0xdead_beef_0000_0001,
            converted: "(lambda (x) x)".into(),
            optimized: "(lambda (x) x)".into(),
            transformations: 3,
            rules: vec![("META-SUBSTITUTE".into(), 2), ("META-IF-LIFT".into(), 1)],
            phase_spans: vec![("Code generation".into(), 1)],
            tn_map: vec!["x = TN0 (register)".into()],
            coercions: vec!["unbox flonum".into()],
            assembly: "(RET)".into(),
            insns: 7,
            dossier: "==== dossier ====\nline \"quoted\"".into(),
            degraded: false,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let a = sample();
        let text = a.to_json().to_string();
        let parsed = json::parse(&text).expect("valid JSON");
        assert_eq!(Artifact::from_json(&parsed), Some(a));
    }

    #[test]
    fn corrupt_entries_fail_cleanly() {
        // Missing field.
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "assembly");
        }
        assert!(Artifact::from_json(&j).is_none());
        // Mistyped field.
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "insns" {
                    *v = Json::str("seven");
                }
            }
        }
        assert!(Artifact::from_json(&j).is_none());
        // Unparseable fingerprint.
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "fingerprint" {
                    *v = Json::str("not-hex");
                }
            }
        }
        assert!(Artifact::from_json(&j).is_none());
    }
}
