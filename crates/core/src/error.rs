//! Unified compile-time error type.

use std::fmt;

/// Any failure between reading source text and emitting machine code.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The reader rejected the text.
    Read(s1lisp_reader::ReadError),
    /// Conversion to the internal tree failed.
    Convert(s1lisp_frontend::ConvertError),
    /// Code generation failed.
    Codegen(s1lisp_codegen::CodegenError),
    /// A guarded-compilation validator rejected the tree (well-formedness
    /// or back-translation round trip).
    Guard(crate::guard::GuardError),
    /// A pipeline pass exceeded its per-pass wall-clock budget.
    Overrun(PassOverrun),
}

/// Details of a per-pass budget overrun: which pass of which function
/// ran long, and by how much.
#[derive(Debug, Clone)]
pub struct PassOverrun {
    /// The function being compiled.
    pub function: String,
    /// The pass that ran over budget.
    pub pass: &'static str,
    /// How long the pass actually took.
    pub elapsed: std::time::Duration,
    /// The configured budget it exceeded.
    pub budget: std::time::Duration,
}

impl fmt::Display for PassOverrun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass budget exceeded: {} of {} took {:?} (budget {:?})",
            self.pass, self.function, self.elapsed, self.budget
        )
    }
}

impl std::error::Error for PassOverrun {}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Read(e) => write!(f, "{e}"),
            CompileError::Convert(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "{e}"),
            CompileError::Guard(e) => write!(f, "{e}"),
            CompileError::Overrun(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Read(e) => Some(e),
            CompileError::Convert(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
            CompileError::Guard(e) => Some(e),
            CompileError::Overrun(e) => Some(e),
        }
    }
}

impl From<s1lisp_reader::ReadError> for CompileError {
    fn from(e: s1lisp_reader::ReadError) -> CompileError {
        CompileError::Read(e)
    }
}

impl From<s1lisp_frontend::ConvertError> for CompileError {
    fn from(e: s1lisp_frontend::ConvertError) -> CompileError {
        CompileError::Convert(e)
    }
}

impl From<s1lisp_codegen::CodegenError> for CompileError {
    fn from(e: s1lisp_codegen::CodegenError) -> CompileError {
        CompileError::Codegen(e)
    }
}

impl From<crate::guard::GuardError> for CompileError {
    fn from(e: crate::guard::GuardError) -> CompileError {
        CompileError::Guard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e = CompileError::Read(s1lisp_reader::ReadError {
            message: "oops".into(),
            line: 3,
            column: 4,
        });
        assert!(e.to_string().contains("3:4"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
