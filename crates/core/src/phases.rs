//! The phase structure of the compiler — Table 1 of the paper,
//! reproduced as data (experiment E1).
//!
//! This table is descriptive; the *executable* schedule lives in
//! [`crate::pipeline`].  The two cannot drift: the
//! `pipeline_is_consistent_with_table_1` test in `pipeline.rs` asserts
//! that every Table-1 row here (except `Preliminary` and rows marked
//! [`PhaseStatus::Subsumed`]) is claimed by exactly one scheduled pass,
//! and that single-row passes carry this table's module string.

/// Implementation status of a phase in this reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseStatus {
    /// Fully implemented.
    Implemented,
    /// Implemented as an optional extension (off by default).
    OptionalExtension,
    /// Folded into another phase (noted in `module`).
    Subsumed,
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name, as in Table 1.
    pub name: &'static str,
    /// The paper's description (abridged).
    pub description: &'static str,
    /// Whether Table 1 printed it in square brackets ("portions not yet
    /// coded or coded only in preliminary form" in 1982).
    pub bracketed_in_paper: bool,
    /// Status in this reproduction.
    pub status: PhaseStatus,
    /// Which crate/module implements it here.
    pub module: &'static str,
}

/// The compiler's phases in execution order.
pub fn phases() -> Vec<Phase> {
    vec![
        Phase {
            name: "Preliminary",
            description: "Syntax checking, resolving of variable references, expansion of \
                          macro calls, conversion to internal tree form",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-frontend",
        },
        Phase {
            name: "Environment analysis",
            description: "For each subtree, the sets of variables read and written; \
                          referent back-pointers per variable",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-analysis::env",
        },
        Phase {
            name: "Side-effects analysis",
            description: "Classify each subtree's side effects and sensitivities",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-analysis::effects",
        },
        Phase {
            name: "Complexity analysis",
            description: "Preliminary object-code size estimate per subtree",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-analysis::complexity",
        },
        Phase {
            name: "Tail-recursion analysis",
            description: "Which nodes potentially generate each node's value; tail positions",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-analysis::tails",
        },
        Phase {
            name: "Data-type analysis",
            description: "Processing of optional type declarations, deduction of types",
            bracketed_in_paper: true,
            status: PhaseStatus::Subsumed,
            module: "s1lisp-annotate::rep (declaration-driven variable representations)",
        },
        Phase {
            name: "Source-level optimization",
            description: "Tree transformations that back-translate to source-level code",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-opt",
        },
        Phase {
            name: "Common subexpression elimination",
            description: "Expressed as source-level let-introducing transformations",
            bracketed_in_paper: true,
            status: PhaseStatus::OptionalExtension,
            module: "s1lisp-opt::cse",
        },
        Phase {
            name: "Special variable lookups",
            description: "When to search for deep-binding cells; cached pointers thereafter",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-analysis::specials + codegen entry caching",
        },
        Phase {
            name: "Binding annotation",
            description: "How each lambda compiles; stack vs heap variable allocation",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-annotate::binding",
        },
        Phase {
            name: "Representation annotation",
            description: "WANTREP/ISREP machine representations for every value",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-annotate::rep",
        },
        Phase {
            name: "Pdl number annotation",
            description: "Which numbers may be stack- rather than heap-allocated",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-annotate::pdl",
        },
        Phase {
            name: "Target annotation",
            description: "The TNBIND and PACK phases of BLISS-11 and PQCC",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-tnbind",
        },
        Phase {
            name: "Code generation",
            description: "Single pass over the tree; partly procedural, partly table-driven",
            bracketed_in_paper: false,
            status: PhaseStatus::Implemented,
            module: "s1lisp-codegen",
        },
        Phase {
            name: "Peephole optimizer",
            description: "Cross-jumping and branch tensioning",
            bracketed_in_paper: true,
            status: PhaseStatus::OptionalExtension,
            module: "s1lisp-codegen::tension_branches",
        },
    ]
}

/// Trips any armed per-phase panic faults for `function`: one decision
/// per Table-1 phase, keyed `"<function>/<phase>"` so a seeded
/// [`FaultPlan`](s1lisp_trace::fault::FaultPlan) replays the same
/// phase-level failure no matter which worker compiles the function.
/// Called at the head of the per-function pipeline; the injected panic
/// is caught by the service's isolation layer and recovered through the
/// degraded-recompile path.
///
/// # Panics
///
/// Panics (deliberately) when the plan arms `PhasePanic` for one of
/// this function's phase keys.
pub fn trip_phase_faults(plan: &s1lisp_trace::fault::FaultPlan, function: &str) {
    use s1lisp_trace::fault::FaultSite;
    for p in phases() {
        let key = format!("{function}/{}", p.name);
        if plan.fires(FaultSite::PhasePanic, &key) {
            panic!("injected fault: panic during {} of {function}", p.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_coverage() {
        let ps = phases();
        assert_eq!(ps.len(), 15);
        assert_eq!(ps.first().unwrap().name, "Preliminary");
        assert_eq!(ps.last().unwrap().name, "Peephole optimizer");
        // Everything is at least addressed.
        assert!(ps.iter().all(|p| !p.module.is_empty()));
    }

    #[test]
    fn phase_faults_fire_deterministically() {
        use s1lisp_trace::fault::{FaultPlan, FaultSite};
        let off = FaultPlan::new(9);
        trip_phase_faults(&off, "anything"); // disarmed: no panic
        let on = FaultPlan::new(9).arm(FaultSite::PhasePanic, 1000);
        let boom = std::panic::catch_unwind(|| trip_phase_faults(&on, "victim"));
        let msg = *boom.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains("victim"), "{msg}");
    }
}
