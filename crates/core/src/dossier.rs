//! Per-function compilation dossiers.
//!
//! The paper's two observability artifacts — the §7 debugging
//! transcript and the Table 1 phase-timing table — are *per-function*
//! stories.  A [`Dossier`] is our reconstruction of both for one
//! compiled function: its Table 1 rows (from the per-unit spans a
//! [`MemorySink`](s1lisp_trace::MemorySink) retains), the ordered
//! rewrite transcript with before/after source, the representation
//! verdicts and inserted coercions of §6.2, the TN packing map of the
//! TNBIND phase, and the final assembly listing.
//!
//! Build one with [`Compiler::explain`](crate::Compiler::explain);
//! render it with `Display` (wall times included) or
//! [`Dossier::render`]`(false)` for a byte-stable form that golden
//! tests can pin.

use std::fmt;

use s1lisp_opt::Transcript;
use s1lisp_trace::PhaseAgg;

/// Everything the pipeline can say about one compiled function.
#[derive(Debug, Clone)]
pub struct Dossier {
    /// The `defun` name.
    pub name: String,
    /// Back-translated source as converted (before optimization).
    pub converted: String,
    /// Back-translated source after source-level optimization.
    pub optimized: String,
    /// The optimizer's transcript for this function.
    pub transcript: Transcript,
    /// Number of source-level transformations applied.
    pub transformations: usize,
    /// This function's Table 1 rows: per-phase span counts, wall time,
    /// and counters, restricted to this unit.  Empty unless the
    /// function was compiled with tracing enabled.
    pub phases: Vec<PhaseAgg>,
    /// Representation verdicts: variables kept in raw representations
    /// (WANTREP/ISREP analysis, §6.2).  Traced compilations only.
    pub rep_decisions: Vec<String>,
    /// Generic operations lowered to typed ones.  Traced only.
    pub lowered: Vec<String>,
    /// Coercions the generator had to emit (boxes, unboxes, pdl
    /// promotions), in emission order.  Traced only.
    pub coercions: Vec<String>,
    /// The TN packing map: where each user variable landed (register or
    /// frame slot).  Traced only.
    pub tn_map: Vec<String>,
    /// Parenthesized-assembly listing of the final code.
    pub assembly: String,
    /// Whether the function was compiled under an enabled trace (if
    /// not, the span-derived sections above are empty).
    pub traced: bool,
}

impl Dossier {
    /// Renders the dossier.  With `include_wall` false the phase table
    /// omits wall-clock times, making the output deterministic across
    /// runs — the form golden tests pin.
    pub fn render(&self, include_wall: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "==== compilation dossier: {} ====", self.name);
        let _ = writeln!(out, "-- source as converted --");
        let _ = writeln!(out, "{}", self.converted);
        if self.transcript.entries.is_empty() {
            let _ = writeln!(out, "-- no source-level transformations fired --");
        } else {
            let _ = writeln!(
                out,
                "-- transcript ({} transformations) --",
                self.transformations
            );
            let _ = write!(out, "{}", self.transcript);
            let _ = writeln!(out, "-- source after optimization --");
            let _ = writeln!(out, "{}", self.optimized);
        }
        if self.traced {
            let _ = writeln!(out, "-- Table 1 phases --");
            if include_wall {
                let _ = writeln!(out, "{:<34} {:>5} {:>10}", "Phase", "Spans", "Wall(us)");
            } else {
                let _ = writeln!(out, "{:<34} {:>5}", "Phase", "Spans");
            }
            for agg in &self.phases {
                if include_wall {
                    let _ = writeln!(
                        out,
                        "{:<34} {:>5} {:>10}",
                        agg.phase,
                        agg.spans,
                        agg.wall.as_micros()
                    );
                } else {
                    let _ = writeln!(out, "{:<34} {:>5}", agg.phase, agg.spans);
                }
                for (name, value) in &agg.counters {
                    let _ = writeln!(out, "    {name:<32} {value:>12}");
                }
            }
            let section = |out: &mut String, title: &str, items: &[String]| {
                if !items.is_empty() {
                    let _ = writeln!(out, "-- {title} --");
                    for item in items {
                        let _ = writeln!(out, "  {item}");
                    }
                }
            };
            section(&mut out, "representation decisions", &self.rep_decisions);
            section(&mut out, "lowered generic operations", &self.lowered);
            section(&mut out, "coercions emitted", &self.coercions);
            section(&mut out, "TN packing", &self.tn_map);
        } else {
            let _ = writeln!(
                out,
                "-- no trace: phase timings, rep decisions, coercions, TN map unavailable --"
            );
            let _ = writeln!(
                out,
                "   (call Compiler::enable_trace() before compiling to record them)"
            );
        }
        let _ = writeln!(out, "-- assembly --");
        let _ = write!(out, "{}", self.assembly);
        out
    }
}

impl fmt::Display for Dossier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(true))
    }
}
