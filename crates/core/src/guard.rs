//! Phase validators for guarded compilation.
//!
//! §7's claim — "each transformation … back-translates to valid source
//! code" — is executable: after conversion and again after the
//! source-level transformations, the guard (a) checks the Table-2
//! well-formedness invariants ([`s1lisp_ast::well_formed`]) and (b)
//! performs the full back-translation round trip — unparse (preserving
//! declarations), re-read, re-convert — and demands the re-converted
//! tree reproduce the original [`s1lisp_ast::fingerprint`] exactly.
//! A violation is a [`GuardError`]; the compilation service routes it
//! to the degraded-recompile path instead of emitting code from a tree
//! whose scope structure can no longer be trusted.

use s1lisp_ast::{fingerprint, unparse_declared, well_formed, Tree};
use s1lisp_frontend::Frontend;
use s1lisp_reader::{pretty, read_str, Datum, Interner};

/// A structured guard violation: which function, at which pipeline
/// stage, and what invariant broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardError {
    /// The function being compiled.
    pub function: String,
    /// The pipeline stage that failed validation (`"conversion"`,
    /// `"source-level optimization"`, `"back-translation"`).
    pub stage: &'static str,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "guard violation in {} at {}: {}",
            self.function, self.stage, self.detail
        )
    }
}

impl std::error::Error for GuardError {}

/// Checks the tree's Table-2 well-formedness at a named stage.
pub(crate) fn validate_tree(
    function: &str,
    stage: &'static str,
    tree: &Tree,
) -> Result<(), GuardError> {
    well_formed(tree).map_err(|e| GuardError {
        function: function.to_string(),
        stage,
        detail: e.to_string(),
    })
}

/// The back-translation round trip: unparse with declarations, re-read
/// the text, re-convert it as a fresh `defun`, and compare structural
/// fingerprints.  Alpha-renaming makes converted trees a fixpoint of
/// conversion (every variable spelling is already unique), so the
/// fingerprints must match bit for bit.
pub(crate) fn round_trip(
    function: &str,
    stage: &'static str,
    tree: &Tree,
) -> Result<(), GuardError> {
    let err = |detail: String| GuardError {
        function: function.to_string(),
        stage,
        detail,
    };
    let want = fingerprint(tree);
    let source = pretty(&unparse_declared(tree, tree.root), 78);
    let mut interner = Interner::new();
    let lambda = read_str(&source, &mut interner)
        .map_err(|e| err(format!("back-translation does not re-read: {e}\n{source}")))?;
    let items = lambda
        .proper_list()
        .ok_or_else(|| err(format!("back-translation is not a lambda form:\n{source}")))?;
    if items
        .first()
        .and_then(|h| h.as_symbol())
        .map(|s| s.as_str())
        != Some("lambda")
    {
        return Err(err(format!(
            "back-translation is not a lambda form:\n{source}"
        )));
    }
    let mut defun = vec![
        Datum::Sym(interner.intern("defun")),
        Datum::Sym(interner.intern(function)),
    ];
    defun.extend(items.into_iter().skip(1));
    let defun = Datum::list(defun);
    let mut fe = Frontend::new(&mut interner);
    let f = fe.convert_defun(&defun).map_err(|e| {
        err(format!(
            "back-translation does not re-convert: {e}\n{source}"
        ))
    })?;
    let got = fingerprint(&f.tree);
    if got != want {
        return Err(err(format!(
            "round-trip fingerprint mismatch: {want:016x} became {got:016x}\n{source}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::read_all_str;

    fn converted(src: &str) -> Tree {
        let mut i = Interner::new();
        let forms = read_all_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        fe.convert_toplevel(&forms).unwrap().remove(0).tree
    }

    #[test]
    fn converted_trees_round_trip() {
        for src in [
            "(defun sq (x) (* x x))",
            "(defun typed (x y) (declare (fixnum x) (flonum y)) (+$f (float x) y))",
            "(defun opt (a &optional (b 3.0) &rest r) (frotz a b r))",
            "(defun looper (n) (prog ((i 0) (acc 1))
               top (cond ((> i n) (return acc)))
               (setq acc (* acc 2)) (setq i (+ i 1)) (go top)))",
            "(defun catcher (x) (catch 'esc (if x (throw 'esc 1) 2)))",
            "(defun dispatch (k) (caseq k ((1 2) 'low) ((3) 'mid) (t 'high)))",
        ] {
            let tree = converted(src);
            validate_tree("f", "conversion", &tree).unwrap();
            round_trip("f", "conversion", &tree).unwrap();
        }
    }

    #[test]
    fn special_parameters_survive_the_round_trip() {
        let mut i = Interner::new();
        let forms = read_all_str(
            "(proclaim '(special counter))
             (defun bump (counter) (setq counter (+ counter 1)))",
            &mut i,
        )
        .unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_toplevel(&forms).unwrap().remove(0);
        round_trip("bump", "conversion", &f.tree).unwrap();
    }

    #[test]
    fn a_corrupted_tree_fails_validation() {
        let mut tree = converted("(defun sq (x) (* x x))");
        // Orphan the lambda: reference its parameter at the root.
        let root = tree.root;
        let s1lisp_ast::NodeKind::Lambda(l) = tree.kind(root).clone() else {
            panic!()
        };
        tree.root = l.body;
        let e = validate_tree("sq", "conversion", &tree).unwrap_err();
        assert_eq!(e.stage, "conversion");
        assert!(e.detail.contains("unbound"), "{e}");
    }
}
