//! `s1lisp` — an optimizing compiler for lexically scoped Lisp, after
//! Brooks, Gabriel & Steele, *An Optimizing Compiler for Lexically Scoped
//! LISP* (PLDI 1982), targeting a simulated S-1.
//!
//! This crate is the driver: it strings the phases of the paper's Table 1
//! together into a [`Compiler`], keeps the per-function optimization
//! [`Transcript`]s, and hands back runnable [`Machine`]s and reference
//! [`Interp`]reters for the same program.
//!
//! # Quick start
//!
//! ```
//! use s1lisp::{Compiler, Value};
//!
//! let mut c = Compiler::new();
//! c.compile_str(
//!     "(defun exptl (x n a)
//!        (cond ((zerop n) a)
//!              ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
//!              (t (exptl (* x x) (floor (/ n 2)) a))))",
//! ).unwrap();
//! let mut m = c.machine();
//! let v = m.run("exptl", &[Value::Fixnum(3), Value::Fixnum(10), Value::Fixnum(1)]).unwrap();
//! assert_eq!(v, Value::Fixnum(59049));
//! // The self-calls compiled to parameter-passing gotos:
//! assert_eq!(m.stats.max_call_depth, 0);
//! ```

#![warn(missing_docs)]

mod artifact;
mod dossier;
mod error;
mod guard;
mod phases;
mod pipeline;

pub use artifact::Artifact;
pub use dossier::Dossier;
pub use error::{CompileError, PassOverrun};
pub use guard::GuardError;
pub use phases::{phases, trip_phase_faults, Phase, PhaseStatus};
pub use pipeline::BytecodeBackend;
pub use pipeline::{
    backend_for, Backend, BackendKind, Pass, PassCx, PassInfo, Pipeline, PipelineOptions,
    S1Backend, UnitAnalyses, UnitAnnotations, UnitState,
};
pub use s1lisp_bytecode::{BcTrap, Evaluator};
pub use s1lisp_trace::fault::{FaultPlan, FaultSite};

pub use s1lisp_codegen::CodegenOptions;
pub use s1lisp_interp::{Interp, LispError, Value};
pub use s1lisp_opt::{OptOptions, Transcript};
pub use s1lisp_s1sim::{Machine, MachineStats, Program, Trap};
pub use s1lisp_trace::{MemorySink, PhaseAgg, TraceSink};

use s1lisp_ast::{unparse, Tree};
use s1lisp_frontend::Frontend;
use s1lisp_reader::{pretty, read_all_str, Interner};
use s1lisp_trace::NullSink;

/// Hand-bumped artifact-compatibility integer folded into
/// [`Compiler::options_fingerprint`].  Bump it whenever generated code
/// can change with no option flag changing (primop table edits, cost
/// model tweaks, encoding changes), so stale disk-cache entries from
/// older builds become unreachable instead of wrong.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// One compiled function's artifacts.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// The `defun` name.
    pub name: String,
    /// Back-translated source as converted (before optimization).
    pub converted: String,
    /// Back-translated source after source-level optimization.
    pub optimized: String,
    /// The optimizer's transcript for this function.
    pub transcript: Transcript,
    /// The internal tree after optimization.
    pub tree: Tree,
    /// Number of source-level transformations applied.
    pub transformations: usize,
}

/// A function that has been read and converted (the Preliminary phase)
/// but not yet pushed through the rest of the pipeline.
///
/// Produced by [`Compiler::convert_str`]; consumed by
/// [`Compiler::compile_pending`].  In between, the compilation service
/// inspects [`PendingFunction::tree_fingerprint`] to decide whether a
/// cached artifact makes the remaining phases unnecessary.
#[derive(Debug)]
pub struct PendingFunction {
    inner: s1lisp_frontend::Function,
}

impl PendingFunction {
    /// The `defun` name.
    pub fn name(&self) -> &str {
        self.inner.name.as_str()
    }

    /// The structural fingerprint of the converted tree
    /// ([`s1lisp_ast::fingerprint`]): identical trees — regardless of
    /// which compiler, batch, or interner produced them — hash
    /// identically.
    pub fn tree_fingerprint(&self) -> u64 {
        s1lisp_ast::fingerprint(&self.inner.tree)
    }

    /// The whole-function object-code size estimate, from the same
    /// complexity analysis the pipeline runs (Table 1's "Complexity
    /// analysis" row).  The compilation service sorts batch queues
    /// largest-first on this, so the biggest compilations start first
    /// and the stragglers are small.
    pub fn complexity_estimate(&self) -> u32 {
        s1lisp_analysis::complexity(&self.inner.tree)
            .get(&self.inner.tree.root)
            .map(|c| c.0)
            .unwrap_or(0)
    }
}

/// The whole-pipeline compiler.
///
/// Feed it `defun`s (plus `proclaim`/`defvar` forms) via
/// [`Compiler::compile_str`]; get a runnable [`Machine`] via
/// [`Compiler::machine`] and a semantically equivalent reference
/// [`Interp`] via [`Compiler::interpreter`] for differential checks.
#[derive(Debug)]
pub struct Compiler {
    /// The symbol interner shared by everything this compiler reads.
    pub interner: Interner,
    /// Source-level optimization switches.
    pub opt_options: OptOptions,
    /// Whether to run the (optional) common sub-expression elimination
    /// phase (§4.3).
    pub cse: bool,
    /// Code-generation switches.
    pub codegen_options: CodegenOptions,
    /// Whether to run the branch-tensioning pass over generated code.
    pub tension_branches: bool,
    /// Guarded compilation: when on, the tree is validated against the
    /// Table-2 well-formedness invariants and the §7 back-translation
    /// round trip after conversion and after the source-level
    /// transformations; a violation is a [`CompileError::Guard`]
    /// instead of silently emitted code.
    pub guard: bool,
    /// Seeded fault plan for deterministic failure drills; `None` (the
    /// default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Per-pass wall-clock budget: a pipeline pass that runs longer
    /// than this fails the function with [`CompileError::Overrun`]
    /// naming the pass, instead of one whole-job watchdog guessing.
    /// `None` (the default) never times out.
    pub pass_budget: Option<std::time::Duration>,
    /// Which code-generation backend closes the pipeline (default:
    /// the S-1 backend).  Also salts
    /// [`Compiler::options_fingerprint`], so per-backend artifacts
    /// never collide in the service's caches.
    pub backend: BackendKind,
    /// Artifacts per compiled function, in compilation order.
    pub functions: Vec<CompiledFunction>,
    program: Program,
    bytecode: s1lisp_bytecode::Module,
    interp_sources: Vec<s1lisp_frontend::Function>,
    specials: Vec<String>,
    globals: Vec<(String, Value)>,
    eval_counter: u32,
    /// Telemetry sink; `None` (the default) makes tracing free.
    trace: Option<MemorySink>,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with every optimization enabled.
    pub fn new() -> Compiler {
        Compiler {
            interner: Interner::new(),
            opt_options: OptOptions::default(),
            cse: false,
            codegen_options: CodegenOptions::default(),
            tension_branches: true,
            guard: false,
            fault_plan: None,
            pass_budget: None,
            backend: BackendKind::default(),
            functions: Vec::new(),
            program: Program::new(),
            bytecode: s1lisp_bytecode::Module::new(),
            interp_sources: Vec::new(),
            specials: Vec::new(),
            globals: Vec::new(),
            eval_counter: 0,
            trace: None,
        }
    }

    /// A compiler pre-seeded with a tenant's proclaim state: every name
    /// in `specials` is proclaimed special, in order, before any source
    /// is compiled.
    ///
    /// This is the single-shot reference for the compile server's
    /// incremental sessions — a function compiled in a session whose
    /// tenant has proclaimed `specials` must match the same form
    /// compiled by `Compiler::for_tenant(specials)`, byte for byte
    /// (pinned by the server's isolation tests).
    pub fn for_tenant<I, S>(specials: I) -> Compiler
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut c = Compiler::new();
        for s in specials {
            c.proclaim_special(s.as_ref());
        }
        c
    }

    /// A compiler with *no* optimization: the E12 baseline.
    pub fn unoptimized() -> Compiler {
        Compiler {
            opt_options: OptOptions::none(),
            codegen_options: CodegenOptions {
                tail_calls: false,
                pdl_numbers: false,
                cache_specials: false,
                register_allocation: false,
                representation_analysis: false,
                backtracking_pack: false,
            },
            tension_branches: false,
            ..Compiler::new()
        }
    }

    /// Compiles every top-level form in `source`, returning the names of
    /// the functions defined.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for read, conversion, or
    /// code-generation failures.
    pub fn compile_str(&mut self, source: &str) -> Result<Vec<String>, CompileError> {
        // Detach the sink so `compile_function` can borrow the rest of
        // `self`.  With `None`, recording is a virtual no-op per phase
        // boundary (the analysis passes still run — their results feed
        // the pipeline's `UnitState` — but nothing is stored per node
        // or instruction).
        let mut trace = self.trace.take();
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match trace.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        let result = self.compile_str_with(source, sink);
        self.trace = trace;
        result
    }

    fn compile_str_with(
        &mut self,
        source: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<String>, CompileError> {
        let pending = self.convert_str_with(source, sink)?;
        let mut names = Vec::new();
        for p in pending {
            names.push(self.compile_function(p.inner, sink)?);
        }
        Ok(names)
    }

    /// Runs only the Preliminary phase — read + convert + `defvar`
    /// recording — returning the converted functions without compiling
    /// them.  Finish each one with [`Compiler::compile_pending`], or
    /// skip it when a cache already holds its artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for read or conversion failures.
    pub fn convert_str(&mut self, source: &str) -> Result<Vec<PendingFunction>, CompileError> {
        let mut trace = self.trace.take();
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match trace.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        let result = self.convert_str_with(source, sink);
        self.trace = trace;
        result
    }

    /// Runs a converted function through the rest of the pipeline
    /// (everything after Preliminary), returning its name.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for code-generation failures.
    pub fn compile_pending(&mut self, pending: PendingFunction) -> Result<String, CompileError> {
        let mut trace = self.trace.take();
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match trace.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        let result = self.compile_function(pending.inner, sink);
        self.trace = trace;
        result
    }

    /// Like [`Compiler::compile_pending`], but through an explicit
    /// [`Pipeline`] instead of the one this compiler's options build —
    /// the hook for schedule experiments (e.g. the property test that
    /// permutes the pure analysis passes and asserts byte-identical
    /// artifacts).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for pass failures.
    pub fn compile_pending_with(
        &mut self,
        pending: PendingFunction,
        pipeline: &Pipeline,
    ) -> Result<String, CompileError> {
        let mut trace = self.trace.take();
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match trace.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        let result = self.run_unit(pending.inner, pipeline, sink);
        self.trace = trace;
        result
    }

    fn convert_str_with(
        &mut self,
        source: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<PendingFunction>, CompileError> {
        let sp = sink.span_begin("Preliminary", "(read+convert)");
        let forms = read_all_str(source, &mut self.interner)?;
        let mut fe = Frontend::new(&mut self.interner);
        for s in &self.specials {
            let sym = fe.interner.intern(s);
            fe.proclaim_special(sym);
        }
        let fns = fe.convert_toplevel(&forms)?;
        if sink.enabled() {
            sink.add("toplevel_forms", forms.len() as u64);
            sink.add("functions", fns.len() as u64);
        }
        sink.span_end(sp);
        for (name, init) in std::mem::take(&mut fe.defvar_inits) {
            self.globals
                .push((name.as_str().to_string(), Value::from_datum(&init)));
        }
        Ok(fns
            .into_iter()
            .map(|inner| PendingFunction { inner })
            .collect())
    }

    /// The per-function pass schedule this compiler's options build:
    /// the [`Pipeline`] that [`Compiler::compile_str`],
    /// [`Compiler::eval`], and the compilation service all run, and
    /// that `report --passes` and the Table-1 cross-check describe.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::from_options(&PipelineOptions {
            backend: self.backend,
            opt_options: self.opt_options.clone(),
            cse: self.cse,
            codegen_options: self.codegen_options.clone(),
            tension_branches: self.tension_branches,
            guard: self.guard,
            fault_plan: self.fault_plan.clone(),
            pass_budget: self.pass_budget,
        })
    }

    /// Runs one converted function through the whole Table 1 pipeline
    /// (the pass schedule of [`Compiler::pipeline`]) and records its
    /// artifacts.  Shared by [`Compiler::compile_str`] and
    /// [`Compiler::eval`], so both paths produce identical spans and
    /// dossiers.
    fn compile_function(
        &mut self,
        f: s1lisp_frontend::Function,
        sink: &mut dyn TraceSink,
    ) -> Result<String, CompileError> {
        let pipeline = self.pipeline();
        self.run_unit(f, &pipeline, sink)
    }

    /// Runs one converted function through an explicit [`Pipeline`].
    fn run_unit(
        &mut self,
        f: s1lisp_frontend::Function,
        pipeline: &Pipeline,
        sink: &mut dyn TraceSink,
    ) -> Result<String, CompileError> {
        let mut unit = UnitState::new(f);
        let mut cx = PassCx {
            sink,
            program: &mut self.program,
            bytecode: &mut self.bytecode,
        };
        pipeline.run(&mut unit, &mut cx)?;
        let name = unit.name.clone();
        let optimized = pretty(&unparse(unit.tree(), unit.tree().root), 78);
        let (func, converted, transcript, transformations) = unit.into_parts();
        self.functions.push(CompiledFunction {
            name: name.clone(),
            converted,
            optimized,
            transcript,
            tree: func.tree.clone(),
            transformations,
        });
        self.interp_sources.push(func);
        Ok(name)
    }

    /// Proclaims a variable special for subsequent compilations.
    pub fn proclaim_special(&mut self, name: &str) {
        self.specials.push(name.to_string());
    }

    /// Compiles and immediately evaluates expressions (REPL convenience):
    /// each non-`defun` form is wrapped in a nullary function, compiled
    /// with the current options, and run on a fresh machine that sees
    /// everything compiled so far.  `defun`s define persistently; global
    /// variable mutations do *not* persist across `eval` calls (each call
    /// gets a fresh machine).
    ///
    /// # Errors
    ///
    /// The outer `Result` carries compile-time failures; the inner one
    /// carries run-time traps.
    pub fn eval(&mut self, expr: &str) -> Result<Result<Value, Trap>, CompileError> {
        let mut trace = self.trace.take();
        let mut null = NullSink;
        let sink: &mut dyn TraceSink = match trace.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        let result = self.eval_with(expr, sink);
        self.trace = trace;
        result
    }

    fn eval_with(
        &mut self,
        expr: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<Result<Value, Trap>, CompileError> {
        let sp = sink.span_begin("Preliminary", "(read+convert)");
        let forms = read_all_str(expr, &mut self.interner)?;
        let mut fe = Frontend::new(&mut self.interner);
        for s in &self.specials {
            let sym = fe.interner.intern(s);
            fe.proclaim_special(sym);
        }
        self.eval_counter += 1;
        let name = format!("%eval{}", self.eval_counter);
        let mut last = Value::Nil;
        let mut fns = Vec::new();
        for (k, form) in forms.iter().enumerate() {
            // defuns define; other forms evaluate.
            let head = form.car().and_then(|h| h.as_symbol().cloned());
            if matches!(
                head.as_ref().map(|s| s.as_str()),
                Some("defun" | "defvar" | "proclaim")
            ) {
                fns.extend(fe.convert_toplevel(std::slice::from_ref(form))?);
            } else {
                let fname = format!("{name}-{k}");
                let f = fe.convert_expr(&fname, form)?;
                fns.push(f);
            }
        }
        if sink.enabled() {
            sink.add("toplevel_forms", forms.len() as u64);
            sink.add("functions", fns.len() as u64);
        }
        sink.span_end(sp);
        let inits = std::mem::take(&mut fe.defvar_inits);
        for (gname, init) in inits {
            self.globals
                .push((gname.as_str().to_string(), Value::from_datum(&init)));
        }
        let mut eval_names = Vec::new();
        for f in fns {
            // The same per-function pipeline as `compile_str`: eval'd
            // forms get spans, transcripts, tensioned branches, and
            // `explain` dossiers too.
            let fname = self.compile_function(f, sink)?;
            if fname.starts_with("%eval") {
                eval_names.push(fname);
            }
        }
        let mut m = self.machine();
        for fname in eval_names {
            match m.run(&fname, &[]) {
                Ok(v) => last = v,
                Err(t) => return Ok(Err(t)),
            }
        }
        Ok(Ok(last))
    }

    /// A fresh machine loaded with everything compiled so far (with
    /// `defvar` initial values installed).
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.program.clone());
        for (name, v) in &self.globals {
            let _ = m.set_global(name, v);
        }
        m
    }

    /// A reference interpreter over the same (unoptimized-semantics)
    /// program, for differential testing.
    pub fn interpreter(&self) -> Interp {
        let mut interp = Interp::new();
        for f in &self.interp_sources {
            interp.define(f.clone());
        }
        for (name, v) in &self.globals {
            interp.set_global(name, v.clone());
        }
        interp
    }

    /// The compiled program (for code-size measurements and
    /// disassembly).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Parenthesized listing of a compiled function — S-1 assembly or
    /// the bytecode listing, per the active backend — or `None` if it
    /// is not defined.
    pub fn disassemble(&self, name: &str) -> Option<String> {
        match self.backend {
            BackendKind::S1 => {
                let id = self.program.lookup_fn(name)?;
                let code = self.program.func(id)?;
                Some(s1lisp_codegen::disassemble(&self.program, code))
            }
            BackendKind::Bytecode => self.bytecode.listing(name),
        }
    }

    /// The bytecode module compiled so far (empty under the S-1
    /// backend).
    pub fn bytecode(&self) -> &s1lisp_bytecode::Module {
        &self.bytecode
    }

    /// A fresh bytecode evaluator loaded with everything compiled so
    /// far (with `defvar` initial values installed) — the bytecode
    /// backend's analog of [`Compiler::machine`].
    pub fn evaluator(&self) -> Evaluator {
        let mut e = Evaluator::new(self.bytecode.clone());
        for (name, v) in &self.globals {
            e.set_global(name, v.clone());
        }
        e
    }

    /// The artifacts of a compiled function.
    pub fn function(&self, name: &str) -> Option<&CompiledFunction> {
        self.functions.iter().rev().find(|f| f.name == name)
    }

    /// The full compilation dossier for one function: its Table 1
    /// phase rows, rewrite transcript, representation decisions and
    /// coercions, TN packing map, and assembly listing.  Returns `None`
    /// if the function was never compiled by this compiler.
    ///
    /// The span-derived sections require tracing
    /// ([`Compiler::enable_trace`]) to have been on when the function
    /// was compiled; without it the dossier still carries the sources,
    /// transcript, and assembly.
    pub fn explain(&self, name: &str) -> Option<Dossier> {
        let f = self.function(name)?;
        let assembly = self.disassemble(name).unwrap_or_default();
        let owned = |v: Vec<&str>| v.into_iter().map(String::from).collect();
        let (phases, rep_decisions, lowered, coercions, tn_map) = match self.trace.as_ref() {
            Some(sink) => (
                sink.unit_phases(name),
                owned(sink.unit_events(name, "rep_var")),
                owned(sink.unit_events(name, "lowered")),
                owned(sink.unit_events(name, "coercion")),
                owned(sink.unit_events(name, "tn")),
            ),
            None => Default::default(),
        };
        let traced = !phases.is_empty();
        Some(Dossier {
            name: f.name.clone(),
            converted: f.converted.clone(),
            optimized: f.optimized.clone(),
            transcript: f.transcript.clone(),
            transformations: f.transformations,
            phases,
            rep_decisions,
            lowered,
            coercions,
            tn_map,
            assembly,
            traced,
        })
    }

    /// A fingerprint of every switch that can change emitted code: the
    /// source-level optimization options (except `trace`, which only
    /// affects logging), CSE, the code-generation options, and branch
    /// tensioning.  Mixed with a tree fingerprint this keys the
    /// compilation service's artifact cache, so two compilers produce
    /// the same key exactly when they would produce the same artifact
    /// for the same converted tree.
    ///
    /// The canonical string is salted with the crate version and a
    /// hand-bumped [`CACHE_SCHEMA_VERSION`], so artifacts cached on disk
    /// by one build can never satisfy a different build sharing the same
    /// `--cache-dir` — a primop-table or cost-model change between
    /// versions silently invalidates every old entry.  Bump the schema
    /// integer whenever emitted code can change without any option
    /// changing.
    pub fn options_fingerprint(&self) -> u64 {
        let o = &self.opt_options;
        let g = &self.codegen_options;
        let canonical = format!(
            "v:{}/{} opt:{}{}{}{}{}{}{}{}{}{} rounds:{} cse:{} cg:{}{}{}{}{}{} tension:{}",
            env!("CARGO_PKG_VERSION"),
            CACHE_SCHEMA_VERSION,
            u8::from(o.call_lambda),
            u8::from(o.unused_args),
            u8::from(o.substitution),
            u8::from(o.if_distribution),
            u8::from(o.if_simplify),
            u8::from(o.if_lift),
            u8::from(o.constant_fold),
            u8::from(o.assoc_commut),
            u8::from(o.sin_to_cycles),
            u8::from(o.unroll),
            o.max_rounds,
            u8::from(self.cse),
            u8::from(g.tail_calls),
            u8::from(g.pdl_numbers),
            u8::from(g.cache_specials),
            u8::from(g.register_allocation),
            u8::from(g.representation_analysis),
            u8::from(g.backtracking_pack),
            u8::from(self.tension_branches),
        );
        // The backend salt keeps per-backend artifacts apart: the same
        // tree under the same switches emits different code per
        // backend, so their cache keys must differ too.
        let canonical = format!("{canonical} backend:{}", self.backend.salt());
        s1lisp_ast::fnv1a_str(&canonical)
    }

    /// The detached, thread-safe [`Artifact`] for a compiled function:
    /// the dossier's sections as plain data plus the rendered dossier
    /// itself.  Its `fingerprint` is left `0` — the service fills in the
    /// cache key.  Returns `None` if the function was never compiled by
    /// this compiler.
    pub fn artifact(&self, name: &str) -> Option<Artifact> {
        let f = self.function(name)?;
        let d = self.explain(name)?;
        let insns = match self.backend {
            BackendKind::S1 => self
                .program
                .lookup_fn(name)
                .and_then(|id| self.program.func(id))
                .map_or(0, |code| code.insns.len() as u64),
            BackendKind::Bytecode => self
                .bytecode
                .lookup(name)
                .map_or(0, |ix| self.bytecode.proto(ix).code.len() as u64),
        };
        Some(Artifact {
            name: f.name.clone(),
            backend: self.backend.name().to_string(),
            fingerprint: 0,
            converted: f.converted.clone(),
            optimized: f.optimized.clone(),
            transformations: f.transformations as u64,
            rules: f
                .transcript
                .rule_histogram()
                .into_iter()
                .map(|(r, n)| (r.to_string(), n))
                .collect(),
            phase_spans: d
                .phases
                .iter()
                .map(|p| (p.phase.to_string(), p.spans))
                .collect(),
            tn_map: d.tn_map.clone(),
            coercions: d.coercions.clone(),
            assembly: d.assembly.clone(),
            insns,
            dossier: d.render(false),
            degraded: false,
        })
    }

    /// Total encoded code size, in 36-bit words (§3's 1–3 word
    /// instruction formats).
    pub fn code_size_words(&self) -> usize {
        s1lisp_s1sim::program_size_words(&self.program)
    }

    /// Turns on compilation telemetry: subsequent
    /// [`Compiler::compile_str`] calls record a span per Table 1 phase
    /// per function, with wall time and per-phase counters, readable via
    /// [`Compiler::trace`] and [`Compiler::trace_report`].
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(MemorySink::new());
        }
    }

    /// The accumulated telemetry, or `None` if tracing was never enabled.
    pub fn trace(&self) -> Option<&MemorySink> {
        self.trace.as_ref()
    }

    /// Exports the accumulated per-phase trace aggregates into `reg`
    /// under `pipeline.<phase>.{spans,wall_us}` (phase names lowercased,
    /// spaces to underscores) plus `pipeline.<phase>.<counter>` for each
    /// per-phase counter.  No-op when tracing was never enabled; export
    /// once per compiler lifetime (counters `add`).
    pub fn export_metrics(&self, reg: &s1lisp_trace::metrics::MetricsRegistry) {
        let Some(sink) = self.trace.as_ref() else {
            return;
        };
        for agg in sink.phases() {
            let phase: String = agg
                .phase
                .chars()
                .map(|c| {
                    if c == ' ' {
                        '_'
                    } else {
                        c.to_ascii_lowercase()
                    }
                })
                .collect();
            reg.counter(&format!("pipeline.{phase}.spans"))
                .add(agg.spans);
            reg.counter(&format!("pipeline.{phase}.wall_us"))
                .add(u64::try_from(agg.wall.as_micros()).unwrap_or(u64::MAX));
            for (counter, n) in &agg.counters {
                reg.counter(&format!("pipeline.{phase}.{counter}")).add(*n);
            }
        }
    }

    /// Firing counts per optimizer rule, aggregated across every
    /// function compiled so far, in first-fired order.  (Available with
    /// or without tracing — the transcripts are always kept.)
    pub fn rule_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut hist: Vec<(&'static str, u64)> = Vec::new();
        for f in &self.functions {
            for (rule, n) in f.transcript.rule_histogram() {
                match hist.iter_mut().find(|(r, _)| *r == rule) {
                    Some(slot) => slot.1 += n,
                    None => hist.push((rule, n)),
                }
            }
        }
        hist
    }

    /// A paper-style (§7) human-readable report: the Table 1 phase table
    /// with spans, wall time, and counters, followed by the rule-firing
    /// histogram in `;****` transcript style.  Empty if tracing was
    /// never enabled.
    pub fn trace_report(&self) -> String {
        use std::fmt::Write as _;
        let Some(sink) = self.trace.as_ref() else {
            return String::new();
        };
        let mut out = String::new();
        let _ = writeln!(out, "Phase                              Spans   Wall(us)");
        for agg in sink.phases() {
            let _ = writeln!(
                out,
                "{:<34} {:>5} {:>10}",
                agg.phase,
                agg.spans,
                agg.wall.as_micros()
            );
            for (name, value) in &agg.counters {
                let _ = writeln!(out, "    {name:<32} {value:>12}");
            }
        }
        let hist = self.rule_histogram();
        if !hist.is_empty() {
            let _ = writeln!(out, ";**** Transformation rules applied:");
            for (rule, n) in hist {
                let _ = writeln!(out, ";****   {n:>5}  {rule}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    #[test]
    fn compile_and_run_quickstart() {
        let mut c = Compiler::new();
        c.compile_str("(defun square (x) (* x x))").unwrap();
        let mut m = c.machine();
        assert_eq!(m.run("square", &[fx(9)]).unwrap(), fx(81));
    }

    #[test]
    fn transcripts_are_recorded_per_function() {
        let mut c = Compiler::new();
        c.compile_str(
            "(defun testfn (a &optional (b 3.0) (c a))
               (let ((d (+$f a b c)) (e (*$f a b c)))
                 (let ((q (sin$f e)))
                   (frotz d e (max$f d e))
                   q)))",
        )
        .unwrap();
        let f = c.function("testfn").unwrap();
        assert!(f.transformations >= 4);
        assert!(f.transcript.count("META-EVALUATE-ASSOC-COMMUT-CALL") >= 2);
        assert!(f.optimized.contains("sinc$f"));
        let listing = c.disassemble("testfn").unwrap();
        assert!(listing.contains("DISPATCH"), "{listing}");
        assert!(listing.contains("FADD"), "{listing}");
    }

    #[test]
    fn unoptimized_baseline_executes_more_instructions() {
        let src = "(defun f (a b c) (let ((x 1.0)) (+$f a (+$f b c) (*$f x 1.0 a))))";
        let args = [Value::Flonum(1.0), Value::Flonum(2.0), Value::Flonum(3.0)];
        let mut c1 = Compiler::new();
        c1.compile_str(src).unwrap();
        let mut c2 = Compiler::unoptimized();
        c2.compile_str(src).unwrap();
        let mut m1 = c1.machine();
        let mut m2 = c2.machine();
        let v1 = m1.run("f", &args).unwrap();
        let v2 = m2.run("f", &args).unwrap();
        assert_eq!(v1, v2);
        assert!(
            m1.stats.insns < m2.stats.insns,
            "optimized {} vs unoptimized {}",
            m1.stats.insns,
            m2.stats.insns
        );
        assert!(m1.stats.heap.flonums < m2.stats.heap.flonums);
        // Code-size comparison is reported by the benches (E12), not
        // asserted here: RtCall-heavy unoptimized code can be compact.
        let _ = (c1.code_size_words(), c2.code_size_words());
    }

    #[test]
    fn differential_against_interpreter() {
        let src = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let mut c = Compiler::new();
        c.compile_str(src).unwrap();
        let mut m = c.machine();
        let i = c.interpreter();
        for n in 0..15 {
            assert_eq!(
                m.run("fib", &[fx(n)]).unwrap(),
                i.call("fib", &[fx(n)]).unwrap()
            );
        }
    }

    #[test]
    fn phase_table_matches_table_1() {
        let ps = phases();
        // Table 1's top-level decomposition.
        let names: Vec<&str> = ps.iter().map(|p| p.name).collect();
        for expected in [
            "Preliminary",
            "Environment analysis",
            "Side-effects analysis",
            "Complexity analysis",
            "Tail-recursion analysis",
            "Data-type analysis",
            "Source-level optimization",
            "Common subexpression elimination",
            "Special variable lookups",
            "Binding annotation",
            "Representation annotation",
            "Pdl number annotation",
            "Target annotation",
            "Code generation",
            "Peephole optimizer",
        ] {
            assert!(names.contains(&expected), "missing phase {expected}");
        }
        // The bracketed phases of Table 1 are marked as such.
        let bracketed: Vec<&Phase> = ps.iter().filter(|p| p.bracketed_in_paper).collect();
        assert_eq!(bracketed.len(), 3);
    }

    #[test]
    fn proclaimed_specials_apply() {
        let mut c = Compiler::new();
        c.proclaim_special("depth");
        c.compile_str("(defun get-depth () depth)").unwrap();
        let mut m = c.machine();
        m.set_global("depth", &fx(7)).unwrap();
        assert_eq!(m.run("get-depth", &[]).unwrap(), fx(7));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    const SRC: &str = "(defun norm (x y) (let ((s (+$f (*$f x x) (*$f y y)))) (sqrt$f s)))
                       (defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

    #[test]
    fn tracing_records_every_table_1_phase() {
        let mut c = Compiler::new();
        c.enable_trace();
        c.compile_str(SRC).unwrap();
        let sink = c.trace().unwrap();
        for phase in [
            "Preliminary",
            "Environment analysis",
            "Side-effects analysis",
            "Complexity analysis",
            "Tail-recursion analysis",
            "Source-level optimization",
            "Special variable lookups",
            "Binding annotation",
            "Representation annotation",
            "Pdl number annotation",
            "Target annotation",
            "Code generation",
            "Peephole optimizer",
        ] {
            let agg = sink.phase(phase);
            assert!(agg.is_some(), "phase {phase} never ran");
        }
        // Two functions -> two spans of each per-function phase.
        assert_eq!(sink.phase("Source-level optimization").unwrap().spans, 2);
        assert_eq!(sink.counter("Preliminary", "functions"), 2);
        // Codegen counters flowed through.
        assert!(sink.counter("Code generation", "insns_emitted") > 0);
        assert!(sink.counter("Target annotation", "tns") > 0);
    }

    #[test]
    fn tracing_off_records_nothing_and_output_is_identical() {
        let mut traced = Compiler::new();
        traced.enable_trace();
        traced.compile_str(SRC).unwrap();
        let mut plain = Compiler::new();
        plain.compile_str(SRC).unwrap();
        assert!(plain.trace().is_none());
        assert_eq!(plain.trace_report(), "");
        // Tracing must not perturb compilation.
        assert_eq!(
            plain.disassemble("norm").unwrap(),
            traced.disassemble("norm").unwrap()
        );
        assert_eq!(plain.code_size_words(), traced.code_size_words());
    }

    #[test]
    fn rule_histogram_aggregates_across_functions() {
        let mut c = Compiler::new();
        c.compile_str(
            "(defun f (a b c) (+$f a b c))
             (defun g (a b c) (*$f a b c))",
        )
        .unwrap();
        let hist = c.rule_histogram();
        let assoc = hist
            .iter()
            .find(|(r, _)| *r == "META-EVALUATE-ASSOC-COMMUT-CALL");
        assert!(assoc.is_some(), "{hist:?}");
        assert!(assoc.unwrap().1 >= 2, "{hist:?}");
    }

    #[test]
    fn explain_builds_a_full_dossier() {
        let mut c = Compiler::new();
        c.enable_trace();
        c.compile_str(SRC).unwrap();
        let d = c.explain("norm").unwrap();
        assert!(d.traced);
        // Only norm's spans, not fib's: one span per per-function phase.
        let slo = d
            .phases
            .iter()
            .find(|p| p.phase == "Source-level optimization")
            .unwrap();
        assert_eq!(slo.spans, 1);
        assert!(d.phases.iter().any(|p| p.phase == "Code generation"));
        // The float math forced unbox/box coercions, and TNBIND put
        // both arguments in registers; the dossier lists each.
        assert!(
            d.coercions.iter().any(|c| c.contains("unbox")),
            "{:?}",
            d.coercions
        );
        assert!(
            d.tn_map.iter().any(|t| t.contains("x = TN0")),
            "{:?}",
            d.tn_map
        );
        let text = d.render(false);
        assert!(text.contains("compilation dossier: norm"), "{text}");
        assert!(text.contains("Table 1 phases"), "{text}");
        assert!(text.contains("-- assembly --"), "{text}");
        // Deterministic render is byte-identical across fresh compiles.
        let mut c2 = Compiler::new();
        c2.enable_trace();
        c2.compile_str(SRC).unwrap();
        assert_eq!(text, c2.explain("norm").unwrap().render(false));
        // Unknown functions yield no dossier.
        assert!(c.explain("nonesuch").is_none());
    }

    #[test]
    fn explain_without_trace_still_has_sources_and_assembly() {
        let mut c = Compiler::new();
        c.compile_str(SRC).unwrap();
        let d = c.explain("fib").unwrap();
        assert!(!d.traced);
        assert!(d.phases.is_empty());
        let text = d.render(false);
        assert!(text.contains("no trace"), "{text}");
        assert!(text.contains("-- assembly --"), "{text}");
    }

    #[test]
    fn eval_records_the_same_spans_as_compile_str() {
        let mut c = Compiler::new();
        c.enable_trace();
        c.eval("(defun sq (x) (* x x))").unwrap().unwrap();
        assert_eq!(c.eval("(sq 9)").unwrap().unwrap(), Value::Fixnum(81));
        let sink = c.trace().unwrap();
        // Both the defun and the %eval wrapper went through the full
        // pipeline.
        let units = sink.units();
        assert!(units.contains(&"sq"), "{units:?}");
        assert!(units.iter().any(|u| u.starts_with("%eval")), "{units:?}");
        assert!(sink.counter("Code generation", "insns_emitted") > 0);
        // And eval'd functions can be explained like any other.
        let d = c.explain("sq").unwrap();
        assert!(d.traced);
        assert!(d.assembly.contains("RET"), "{}", d.assembly);
    }

    #[test]
    fn trace_report_is_paper_style() {
        let mut c = Compiler::new();
        c.enable_trace();
        c.compile_str(SRC).unwrap();
        let report = c.trace_report();
        assert!(report.contains("Phase"), "{report}");
        assert!(report.contains("Code generation"), "{report}");
        assert!(report.contains("insns_emitted"), "{report}");
        assert!(report.contains(";****"), "{report}");
    }
}

#[cfg(test)]
mod artifact_tests {
    use super::*;

    const SRC: &str = "(defun norm (x y) (let ((s (+$f (*$f x x) (*$f y y)))) (sqrt$f s)))
         (defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

    #[test]
    fn convert_then_compile_matches_compile_str() {
        let mut split = Compiler::new();
        split.enable_trace();
        let pending = split.convert_str(SRC).unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].name(), "norm");
        assert!(pending[0].tree_fingerprint() != pending[1].tree_fingerprint());
        for p in pending {
            split.compile_pending(p).unwrap();
        }
        let mut whole = Compiler::new();
        whole.enable_trace();
        whole.compile_str(SRC).unwrap();
        for name in ["norm", "fib"] {
            assert_eq!(
                split.disassemble(name).unwrap(),
                whole.disassemble(name).unwrap()
            );
            assert_eq!(
                split.explain(name).unwrap().render(false),
                whole.explain(name).unwrap().render(false)
            );
        }
    }

    #[test]
    fn tree_fingerprints_are_stable_across_compilers() {
        let src = "(defun sq (x) (* x x))";
        let mut a = Compiler::new();
        let mut b = Compiler::new();
        // b's interner has seen other spellings first.
        b.compile_str("(defun other (y z) (+ y z))").unwrap();
        let fa = a.convert_str(src).unwrap()[0].tree_fingerprint();
        let fb = b.convert_str(src).unwrap()[0].tree_fingerprint();
        assert_eq!(fa, fb);
    }

    #[test]
    fn options_fingerprint_tracks_code_shaping_switches() {
        let base = Compiler::new().options_fingerprint();
        assert_eq!(base, Compiler::new().options_fingerprint());
        assert_ne!(base, Compiler::unoptimized().options_fingerprint());
        let mut c = Compiler::new();
        c.cse = true;
        assert_ne!(base, c.options_fingerprint());
        let mut c = Compiler::new();
        c.tension_branches = false;
        assert_ne!(base, c.options_fingerprint());
        // The optimizer's trace flag does not shape code.
        let mut c = Compiler::new();
        c.opt_options.trace = true;
        assert_eq!(base, c.options_fingerprint());
    }

    #[test]
    fn backend_salts_the_options_fingerprint() {
        let base = Compiler::new().options_fingerprint();
        let mut bc = Compiler::new();
        bc.backend = BackendKind::Bytecode;
        // Same switches, different backend: the keys must never
        // collide, or one backend's cached artifacts would satisfy the
        // other's lookups.
        assert_ne!(base, bc.options_fingerprint());
        // Stable per backend.
        let mut bc2 = Compiler::new();
        bc2.backend = BackendKind::Bytecode;
        assert_eq!(bc.options_fingerprint(), bc2.options_fingerprint());
        // The salt composes with the other switches rather than
        // replacing them.
        bc2.cse = true;
        assert_ne!(bc.options_fingerprint(), bc2.options_fingerprint());
    }

    #[test]
    fn bytecode_backend_compiles_runs_and_tags_artifacts() {
        let mut c = Compiler::new();
        c.backend = BackendKind::Bytecode;
        c.compile_str(
            "(defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
        )
        .unwrap();
        let mut e = c.evaluator();
        let v = e
            .run(
                "exptl",
                &[Value::Fixnum(2), Value::Fixnum(10), Value::Fixnum(1)],
            )
            .unwrap();
        assert_eq!(v, Value::Fixnum(1024));
        let a = c.artifact("exptl").unwrap();
        assert_eq!(a.backend, "bytecode");
        assert!(a.insns > 0);
        assert!(a.assembly.contains("defbytecode exptl"));
        assert_eq!(a.assembly, c.disassemble("exptl").unwrap());
        // The S-1 program stays empty under the bytecode backend.
        assert_eq!(c.code_size_words(), 0);
    }

    #[test]
    fn artifact_round_trips_and_carries_the_dossier() {
        let mut c = Compiler::new();
        c.enable_trace();
        c.compile_str(SRC).unwrap();
        let a = c.artifact("norm").unwrap();
        assert_eq!(a.name, "norm");
        assert!(a.insns > 0);
        assert_eq!(a.assembly, c.disassemble("norm").unwrap());
        assert_eq!(a.dossier, c.explain("norm").unwrap().render(false));
        assert!(a.phase_spans.iter().any(|(p, _)| p == "Code generation"));
        assert!(!a.degraded);
        let text = a.to_json().to_string();
        let back = Artifact::from_json(&s1lisp_trace::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, a);
        assert!(c.artifact("nonesuch").is_none());
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;

    #[test]
    fn eval_expressions_and_definitions() {
        let mut c = Compiler::new();
        assert_eq!(c.eval("(+ 1 2)").unwrap().unwrap(), Value::Fixnum(3));
        c.eval("(defun sq (x) (* x x))").unwrap().unwrap();
        assert_eq!(c.eval("(sq 9)").unwrap().unwrap(), Value::Fixnum(81));
        // Run-time errors come back in the inner result.
        assert!(c.eval("(car 5)").unwrap().is_err());
        // Compile-time errors in the outer one.
        assert!(c.eval("(quote)").is_err());
        // Multiple forms: value of the last.
        assert_eq!(c.eval("(sq 2) (sq 3)").unwrap().unwrap(), Value::Fixnum(9));
    }
}

#[cfg(test)]
mod defvar_tests {
    use super::*;

    #[test]
    fn defvar_initializers_install_globals() {
        let mut c = Compiler::new();
        c.compile_str(
            "(defvar *base* 10)
             (defvar *greeting* 'hello)
             (defvar *uninit*)
             (defun scaled (x) (* x *base*))",
        )
        .unwrap();
        let mut m = c.machine();
        assert_eq!(
            m.run("scaled", &[Value::Fixnum(4)]).unwrap(),
            Value::Fixnum(40)
        );
        let i = c.interpreter();
        assert_eq!(
            i.call("scaled", &[Value::Fixnum(4)]).unwrap(),
            Value::Fixnum(40)
        );
        // Non-constant initializers are a clean error.
        let mut c2 = Compiler::new();
        assert!(c2.compile_str("(defvar *x* (compute-it))").is_err());
    }
}

#[cfg(test)]
mod eval_defvar_tests {
    use super::*;

    #[test]
    fn eval_honors_defvar_initializers() {
        let mut c = Compiler::new();
        c.eval("(defvar *k* 7)").unwrap().unwrap();
        assert_eq!(c.eval("(* *k* 6)").unwrap().unwrap(), Value::Fixnum(42));
    }
}
