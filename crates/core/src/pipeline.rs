//! The pass manager: Table 1 as an executable schedule.
//!
//! The paper presents compilation as an explicit ordered table of
//! phases; this module reifies that order as data.  Each phase is a
//! [`Pass`] over a shared [`UnitState`] (the function's tree plus the
//! analyses and annotations accumulated so far), and a [`Pipeline`] is
//! the ordered schedule [`Compiler::compile_str`](crate::Compiler)
//! merely runs.  The cross-cutting machinery — trace spans, per-pass
//! counters, the fault-injection trip points of
//! [`trip_phase_faults`](crate::phases::trip_phase_faults), and the
//! guard validators — lives *inside* passes instead of in parallel code
//! paths, so the `Compiler`, the driver service, and `explain`/dossiers
//! all observe one pipeline description.
//!
//! Pass order is execution order (= trace-span order), which differs
//! from Table 1's presentation order in one place the paper itself
//! notes: special-variable placement is computed with the analysis
//! quartet, before the source-level transformations.  The mapping from
//! passes back to Table 1 rows ([`PassInfo::table1`]) is cross-checked
//! against [`phases()`](crate::phases::phases) by test.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use s1lisp_analysis::{Complexity, Effects, EnvInfo, SpecialPlacement};
use s1lisp_annotate::{Annotations, BindingInfo, PdlInfo, RepInfo};
use s1lisp_ast::{unparse, NodeId, Tree};
use s1lisp_codegen::CodegenOptions;
use s1lisp_opt::{OptOptions, Optimizer, Transcript};
use s1lisp_reader::pretty;
use s1lisp_s1sim::Program;
use s1lisp_trace::fault::FaultPlan;
use s1lisp_trace::TraceSink;

use crate::error::{CompileError, PassOverrun};
use crate::{guard, phases};

// ------------------------------------------------------------ unit state

/// Everything the analysis passes computed for one function, carried in
/// the [`UnitState`] for downstream passes (and external consumers like
/// the scheduling heuristics) to read instead of recomputing.
///
/// Each field is `None` until its pass has run.  The emission passes do
/// not *require* them — per the paper, analysis is co-routined inside
/// the optimizer and the annotators re-derive what they need — so a
/// custom pipeline may omit analysis passes entirely.
#[derive(Debug, Default)]
pub struct UnitAnalyses {
    /// Per-subtree read/write sets and referent back-pointers.
    pub environment: Option<EnvInfo>,
    /// Side-effect class per node.
    pub effects: Option<HashMap<NodeId, Effects>>,
    /// Object-code size estimate per node (the root's entry is the
    /// whole-function estimate the service's size-sorted scheduling
    /// uses).
    pub complexity: Option<HashMap<NodeId, Complexity>>,
    /// Nodes in tail position.
    pub tails: Option<HashSet<NodeId>>,
    /// Special-variable lookup placements.
    pub placements: Option<Vec<SpecialPlacement>>,
}

/// The machine-dependent annotations, accumulated pass by pass.
#[derive(Debug, Default)]
pub struct UnitAnnotations {
    /// How each lambda compiles; where each variable lives.
    pub binding: Option<BindingInfo>,
    /// WANTREP/ISREP for every node; representation of every variable.
    pub rep: Option<RepInfo>,
    /// PDLOKP/PDLNUMP and the stack-boxing decisions.
    pub pdl: Option<PdlInfo>,
}

/// The state one function accumulates as it moves through a
/// [`Pipeline`]: the (mutable) converted tree, the back-translated
/// source snapshots, the optimizer's transcript, and the analysis and
/// annotation results.
#[derive(Debug)]
pub struct UnitState {
    func: s1lisp_frontend::Function,
    /// The `defun` name.
    pub name: String,
    /// Back-translated source as converted (before any transformation).
    pub converted: String,
    /// The optimizer's transcript, filled by the source-level
    /// optimization pass.
    pub transcript: Transcript,
    /// Source-level transformations applied so far (optimizer + CSE).
    pub transformations: usize,
    /// Analysis results, filled by the analysis passes.
    pub analyses: UnitAnalyses,
    /// Machine-dependent annotations, filled by the annotation passes.
    pub annotations: UnitAnnotations,
}

impl UnitState {
    /// Wraps a converted function, snapshotting its back-translated
    /// source.
    pub fn new(func: s1lisp_frontend::Function) -> UnitState {
        let name = func.name.as_str().to_string();
        let converted = pretty(&unparse(&func.tree, func.tree.root), 78);
        UnitState {
            func,
            name,
            converted,
            transcript: Transcript::default(),
            transformations: 0,
            analyses: UnitAnalyses::default(),
            annotations: UnitAnnotations::default(),
        }
    }

    /// The function's tree.
    pub fn tree(&self) -> &Tree {
        &self.func.tree
    }

    /// The function's tree, mutably (the source-level passes rewrite it
    /// in place).
    pub fn tree_mut(&mut self) -> &mut Tree {
        &mut self.func.tree
    }

    /// Tears the state down into the converted function and the
    /// artifacts the compiler records: `(function, converted source,
    /// transcript, transformation count)`.
    pub fn into_parts(self) -> (s1lisp_frontend::Function, String, Transcript, usize) {
        (
            self.func,
            self.converted,
            self.transcript,
            self.transformations,
        )
    }
}

// ------------------------------------------------------------ pass trait

/// Shared context a pass runs against: the telemetry sink and the
/// output containers the emission passes extend — the S-1 program
/// (codegen + peephole) and the bytecode module (the bytecode
/// backend's emitter).
pub struct PassCx<'a> {
    /// Telemetry sink; a disabled sink makes spans/counters no-ops.
    pub sink: &'a mut dyn TraceSink,
    /// The S-1 program compiled so far.
    pub program: &'a mut Program,
    /// The bytecode module compiled so far.
    pub bytecode: &'a mut s1lisp_bytecode::Module,
}

/// One named phase of the per-function pipeline.
pub trait Pass {
    /// The pass's name (for schedules, budgets, and `report --passes`).
    fn name(&self) -> &'static str;

    /// The Table 1 rows this pass implements (empty for cross-cutting
    /// wrapper passes like the guard validators and fault trip points).
    fn table1(&self) -> &'static [&'static str] {
        &[]
    }

    /// The crate/module implementing the pass, matching the attribution
    /// in [`phases()`](crate::phases::phases) where a row exists.
    fn module(&self) -> &'static str;

    /// Runs the pass over one function.
    ///
    /// # Errors
    ///
    /// A [`CompileError`] aborts the rest of the unit's pipeline.
    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError>;
}

/// One row of [`Pipeline::describe`]: the static facts about a
/// scheduled pass plus whether the current options enable it.
#[derive(Clone, Debug)]
pub struct PassInfo {
    /// Pass name.
    pub name: &'static str,
    /// Table 1 rows the pass implements.
    pub table1: &'static [&'static str],
    /// Implementing crate/module.
    pub module: &'static str,
    /// Whether the schedule will run it under the options it was built
    /// from.
    pub enabled: bool,
}

/// Which code-generation backend closes the pipeline.
///
/// The front of the schedule — guards, the analysis quartet,
/// source-level optimization, and the three machine-dependent
/// annotation passes — is backend-independent; the [`Backend`]
/// contributes only the emission tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// S-1 assembly via `s1lisp-codegen` + TNBIND, run on the
    /// simulator.  The reference backend.
    #[default]
    S1,
    /// Portable linear bytecode via `s1lisp-bytecode`, run on its
    /// stack-frame evaluator.
    Bytecode,
}

impl BackendKind {
    /// Stable identifier, used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::S1 => "s1",
            BackendKind::Bytecode => "bytecode",
        }
    }

    /// Fingerprint salt folded into
    /// [`Compiler::options_fingerprint`](crate::Compiler::options_fingerprint)
    /// so artifacts from different backends can never satisfy each
    /// other's cache keys.
    pub fn salt(self) -> &'static str {
        self.name()
    }

    /// Parses a CLI spelling ([`BackendKind::name`]).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "s1" => Some(BackendKind::S1),
            "bytecode" | "bc" => Some(BackendKind::Bytecode),
            _ => None,
        }
    }
}

/// A code-generation backend: a name, a cache-key salt, and the
/// emission passes it appends to the backend-independent front of the
/// schedule.
pub trait Backend {
    /// Stable identifier ([`BackendKind::name`]).
    fn name(&self) -> &'static str;

    /// Fingerprint salt ([`BackendKind::salt`]).
    fn salt(&self) -> &'static str;

    /// The emission tail of the schedule, with per-pass enablement.
    fn passes(&self, options: &PipelineOptions) -> Vec<(Box<dyn Pass + Send + Sync>, bool)>;
}

/// The S-1 backend: TNBIND + code generation, then the peephole
/// (branch-tensioning) pass — exactly the emission tail the pipeline
/// always had, byte for byte.
pub struct S1Backend;

impl Backend for S1Backend {
    fn name(&self) -> &'static str {
        BackendKind::S1.name()
    }

    fn salt(&self) -> &'static str {
        BackendKind::S1.salt()
    }

    fn passes(&self, options: &PipelineOptions) -> Vec<(Box<dyn Pass + Send + Sync>, bool)> {
        vec![
            (
                Box::new(EmitPass {
                    options: options.codegen_options.clone(),
                }),
                true,
            ),
            (Box::new(PeepholePass), options.tension_branches),
        ]
    }
}

/// The bytecode backend: one emission pass lowering the annotated tree
/// to the portable linear bytecode (branch tensioning does not apply —
/// the emitter resolves labels to absolute targets directly).
pub struct BytecodeBackend;

impl Backend for BytecodeBackend {
    fn name(&self) -> &'static str {
        BackendKind::Bytecode.name()
    }

    fn salt(&self) -> &'static str {
        BackendKind::Bytecode.salt()
    }

    fn passes(&self, _options: &PipelineOptions) -> Vec<(Box<dyn Pass + Send + Sync>, bool)> {
        vec![(Box::new(BytecodeEmitPass), true)]
    }
}

/// The [`Backend`] implementation for a [`BackendKind`].
pub fn backend_for(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::S1 => Box::new(S1Backend),
        BackendKind::Bytecode => Box::new(BytecodeBackend),
    }
}

/// Options a [`Pipeline`] schedule is built from — the code-shaping
/// switches of [`Compiler`](crate::Compiler), plus the cross-cutting
/// guard/fault/budget machinery.
#[derive(Clone, Debug, Default)]
pub struct PipelineOptions {
    /// Which backend closes the schedule.
    pub backend: BackendKind,
    /// Source-level optimization switches.
    pub opt_options: OptOptions,
    /// Whether the CSE pass runs.
    pub cse: bool,
    /// Code-generation switches.
    pub codegen_options: CodegenOptions,
    /// Whether the branch-tensioning (peephole) pass runs.
    pub tension_branches: bool,
    /// Whether the guard validator passes run.
    pub guard: bool,
    /// Seeded fault plan for the fault-injection pass; `None` disables
    /// it.
    pub fault_plan: Option<FaultPlan>,
    /// Per-pass wall-clock budget: a pass that runs longer fails the
    /// unit with [`CompileError::Overrun`].  Checked after each pass
    /// returns (a soft budget — it cannot interrupt a hung pass, which
    /// remains the watchdog's job), so the compilation service can
    /// attribute overruns to a phase without spawning a thread per
    /// function.
    pub pass_budget: Option<Duration>,
}

// ------------------------------------------------------------- pipeline

/// An ordered schedule of [`Pass`]es with per-pass enablement, built
/// from a [`PipelineOptions`] and run over each function's
/// [`UnitState`].
pub struct Pipeline {
    passes: Vec<(Box<dyn Pass + Send + Sync>, bool)>,
    pass_budget: Option<Duration>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.pass_names())
            .field("pass_budget", &self.pass_budget)
            .finish()
    }
}

impl Pipeline {
    /// The standard per-function schedule under the given options: the
    /// fault trip point and conversion-side guard, the analysis
    /// quartet plus special-variable placement, source-level
    /// optimization (with its fixpoint rounds) and optional CSE, the
    /// back-translation guard, the three machine-dependent annotation
    /// passes, TNBIND + code generation, and the peephole optimizer.
    /// Disabled passes stay in the schedule (so `describe` shows them)
    /// but are skipped by [`Pipeline::run`].  The emission tail comes
    /// from the selected [`Backend`].
    pub fn from_options(options: &PipelineOptions) -> Pipeline {
        let mut passes: Vec<(Box<dyn Pass + Send + Sync>, bool)> = vec![
            (
                Box::new(FaultTripPass {
                    plan: options.fault_plan.clone(),
                }),
                options.fault_plan.is_some(),
            ),
            (
                Box::new(GuardPass {
                    name: "Guard: conversion",
                    stage: "conversion",
                }),
                options.guard,
            ),
            (Box::new(EnvironmentPass), true),
            (Box::new(EffectsPass), true),
            (Box::new(ComplexityPass), true),
            (Box::new(TailsPass), true),
            (Box::new(SpecialsPass), true),
            (
                Box::new(SourceOptPass {
                    options: options.opt_options.clone(),
                    guard: options.guard,
                }),
                true,
            ),
            (Box::new(CsePass), options.cse),
            (
                Box::new(GuardPass {
                    name: "Guard: back-translation",
                    stage: "back-translation",
                }),
                options.guard,
            ),
            (Box::new(BindingPass), true),
            (Box::new(RepPass), true),
            (Box::new(PdlPass), true),
        ];
        passes.extend(backend_for(options.backend).passes(options));
        Pipeline {
            passes,
            pass_budget: options.pass_budget,
        }
    }

    /// Runs every enabled pass, in order, over one unit.
    ///
    /// # Errors
    ///
    /// The first pass failure, or a [`CompileError::Overrun`] when a
    /// pass exceeds the configured budget.
    pub fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        for (pass, enabled) in &self.passes {
            if !enabled {
                continue;
            }
            let start = self.pass_budget.map(|_| Instant::now());
            pass.run(unit, cx)?;
            if let (Some(budget), Some(start)) = (self.pass_budget, start) {
                let elapsed = start.elapsed();
                if elapsed > budget {
                    return Err(CompileError::Overrun(PassOverrun {
                        function: unit.name.clone(),
                        pass: pass.name(),
                        elapsed,
                        budget,
                    }));
                }
            }
        }
        Ok(())
    }

    /// The schedule as data, for `report --passes` and the Table-1
    /// cross-check.
    pub fn describe(&self) -> Vec<PassInfo> {
        self.passes
            .iter()
            .map(|(p, enabled)| PassInfo {
                name: p.name(),
                table1: p.table1(),
                module: p.module(),
                enabled: *enabled,
            })
            .collect()
    }

    /// The pass names, in schedule order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|(p, _)| p.name()).collect()
    }

    /// The configured per-pass budget, if any.
    pub fn pass_budget(&self) -> Option<Duration> {
        self.pass_budget
    }

    /// Reorders the named passes into the given order, keeping their
    /// schedule slots (every other pass stays put).  Returns `false` —
    /// leaving the schedule untouched — unless each name matches
    /// exactly one scheduled pass.  Testing hook for commutation
    /// properties (e.g. permuting the pure analysis quartet).
    pub fn permute(&mut self, names: &[&str]) -> bool {
        let mut slots = Vec::new();
        for (i, (p, _)) in self.passes.iter().enumerate() {
            if names.contains(&p.name()) {
                slots.push(i);
            }
        }
        if slots.len() != names.len() {
            return false;
        }
        // Pull the named passes out (right to left, so indices stay
        // valid), order them per `names`, and drop them back into the
        // vacated slots left to right.
        let mut pulled: Vec<(Box<dyn Pass + Send + Sync>, bool)> = Vec::new();
        for &i in slots.iter().rev() {
            pulled.push(self.passes.remove(i));
        }
        let mut ordered = Vec::new();
        for name in names {
            let Some(k) = pulled.iter().position(|(p, _)| p.name() == *name) else {
                // Duplicate or unknown name: restore and bail.
                for (offset, entry) in pulled.into_iter().rev().enumerate() {
                    self.passes.insert(slots[offset], entry);
                }
                return false;
            };
            ordered.push(pulled.swap_remove(k));
        }
        for (&slot, entry) in slots.iter().zip(ordered) {
            self.passes.insert(slot, entry);
        }
        true
    }
}

// ------------------------------------------------------------- passes

/// Cross-cutting: trips any armed per-phase panic faults for the
/// function (one deterministic decision per Table-1 phase key) at the
/// head of the pipeline, where the service's isolation layer catches
/// the panic.
struct FaultTripPass {
    plan: Option<FaultPlan>,
}

impl Pass for FaultTripPass {
    fn name(&self) -> &'static str {
        "Fault injection"
    }

    fn module(&self) -> &'static str {
        "s1lisp::phases::trip_phase_faults"
    }

    fn run(&self, unit: &mut UnitState, _cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        if let Some(plan) = &self.plan {
            phases::trip_phase_faults(plan, &unit.name);
        }
        Ok(())
    }
}

/// Cross-cutting: the guard validators — Table-2 well-formedness and
/// the §7 back-translation round trip — at a named pipeline stage.
struct GuardPass {
    name: &'static str,
    stage: &'static str,
}

impl Pass for GuardPass {
    fn name(&self) -> &'static str {
        self.name
    }

    fn module(&self) -> &'static str {
        "s1lisp::guard"
    }

    fn run(&self, unit: &mut UnitState, _cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        guard::validate_tree(&unit.name, self.stage, unit.tree())?;
        guard::round_trip(&unit.name, self.stage, unit.tree())?;
        Ok(())
    }
}

/// Environment analysis (Table 1): read/write sets per subtree.
struct EnvironmentPass;

impl Pass for EnvironmentPass {
    fn name(&self) -> &'static str {
        "Environment analysis"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Environment analysis"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-analysis::env"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx.sink.span_begin("Environment analysis", &unit.name);
        let env = s1lisp_analysis::environment(unit.tree());
        if cx.sink.enabled() {
            cx.sink.add("nodes", unit.tree().node_count() as u64);
        }
        cx.sink.span_end(sp);
        unit.analyses.environment = Some(env);
        Ok(())
    }
}

/// Side-effects analysis (Table 1): effect class per subtree.
struct EffectsPass;

impl Pass for EffectsPass {
    fn name(&self) -> &'static str {
        "Side-effects analysis"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Side-effects analysis"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-analysis::effects"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx.sink.span_begin("Side-effects analysis", &unit.name);
        let fx = s1lisp_analysis::effects(unit.tree());
        if cx.sink.enabled() {
            cx.sink.add("classified_nodes", fx.len() as u64);
        }
        cx.sink.span_end(sp);
        unit.analyses.effects = Some(fx);
        Ok(())
    }
}

/// Complexity analysis (Table 1): object-code size estimates.
struct ComplexityPass;

impl Pass for ComplexityPass {
    fn name(&self) -> &'static str {
        "Complexity analysis"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Complexity analysis"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-analysis::complexity"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx.sink.span_begin("Complexity analysis", &unit.name);
        let cxm = s1lisp_analysis::complexity(unit.tree());
        if cx.sink.enabled() {
            cx.sink.add("estimated_nodes", cxm.len() as u64);
        }
        cx.sink.span_end(sp);
        unit.analyses.complexity = Some(cxm);
        Ok(())
    }
}

/// Tail-recursion analysis (Table 1): nodes in tail position.
struct TailsPass;

impl Pass for TailsPass {
    fn name(&self) -> &'static str {
        "Tail-recursion analysis"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Tail-recursion analysis"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-analysis::tails"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx.sink.span_begin("Tail-recursion analysis", &unit.name);
        let tails = s1lisp_analysis::tail_nodes(unit.tree());
        if cx.sink.enabled() {
            cx.sink.add("tail_nodes", tails.len() as u64);
        }
        cx.sink.span_end(sp);
        unit.analyses.tails = Some(tails);
        Ok(())
    }
}

/// Special-variable lookup placement (Table 1).
struct SpecialsPass;

impl Pass for SpecialsPass {
    fn name(&self) -> &'static str {
        "Special variable lookups"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Special variable lookups"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-analysis::specials + codegen entry caching"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx.sink.span_begin("Special variable lookups", &unit.name);
        let placements = s1lisp_analysis::special_placements(unit.tree());
        if cx.sink.enabled() {
            cx.sink.add("placements", placements.len() as u64);
        }
        cx.sink.span_end(sp);
        unit.analyses.placements = Some(placements);
        Ok(())
    }
}

/// Source-level optimization (Table 1, §5): the fixpoint of
/// [`Optimizer::round`] over the tree, preceded by the optional unroll
/// stage; under guarded compilation each applied round is validated
/// with [`Optimizer::check_round`].
struct SourceOptPass {
    options: OptOptions,
    guard: bool,
}

impl SourceOptPass {
    fn fixpoint(opt: &mut Optimizer, tree: &mut Tree, name: &str) -> usize {
        let mut total = 0;
        if opt.options.unroll {
            total += opt.unroll_stage(tree, name);
        }
        for _ in 0..opt.options.max_rounds {
            let applied = opt.round(tree);
            total += applied;
            if applied == 0 {
                break;
            }
        }
        tree.rebuild_backlinks();
        total
    }

    fn fixpoint_checked(opt: &mut Optimizer, tree: &mut Tree, name: &str) -> Result<usize, String> {
        let mut total = 0;
        if opt.options.unroll {
            total += opt.unroll_stage(tree, name);
            opt.check_round(tree, 0)?;
        }
        for round in 1..=opt.options.max_rounds {
            let applied = opt.round(tree);
            total += applied;
            if applied > 0 {
                opt.check_round(tree, round)?;
            }
            if applied == 0 {
                break;
            }
        }
        tree.rebuild_backlinks();
        Ok(total)
    }
}

impl Pass for SourceOptPass {
    fn name(&self) -> &'static str {
        "Source-level optimization"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Source-level optimization"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-opt"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let name = unit.name.clone();
        let sp = cx.sink.span_begin("Source-level optimization", &name);
        let nodes_before = unit.tree().node_count();
        let mut opt = Optimizer::with_options(self.options.clone());
        let result = if self.guard {
            Self::fixpoint_checked(&mut opt, unit.tree_mut(), &name)
        } else {
            Ok(Self::fixpoint(&mut opt, unit.tree_mut(), &name))
        };
        if cx.sink.enabled() {
            cx.sink
                .add("transformations", *result.as_ref().unwrap_or(&0) as u64);
            cx.sink.add("nodes_before", nodes_before as u64);
            cx.sink.add("nodes_after", unit.tree().node_count() as u64);
        }
        cx.sink.span_end(sp);
        let applied = result.map_err(|detail| guard::GuardError {
            function: name,
            stage: "source-level optimization",
            detail,
        })?;
        unit.transformations = applied;
        unit.transcript = std::mem::take(&mut opt.transcript);
        Ok(())
    }
}

/// Optional common sub-expression elimination (Table 1, §4.3).
struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "Common subexpression elimination"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Common subexpression elimination"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-opt::cse"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let sp = cx
            .sink
            .span_begin("Common subexpression elimination", &unit.name);
        let eliminated = s1lisp_opt::cse::eliminate(unit.tree_mut());
        unit.transformations += eliminated;
        if cx.sink.enabled() {
            cx.sink.add("eliminated", eliminated as u64);
        }
        cx.sink.span_end(sp);
        Ok(())
    }
}

fn schedule_error(message: &str) -> CompileError {
    CompileError::Codegen(s1lisp_codegen::CodegenError {
        message: message.to_string(),
    })
}

/// Binding annotation (Table 1, §4.4).
struct BindingPass;

impl Pass for BindingPass {
    fn name(&self) -> &'static str {
        "Binding annotation"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Binding annotation"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-annotate::binding"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let binding = s1lisp_annotate::binding_annotation_traced(unit.tree(), &unit.name, cx.sink);
        unit.annotations.binding = Some(binding);
        Ok(())
    }
}

/// Representation annotation (Table 1, §6.2): WANTREP/ISREP.
struct RepPass;

impl Pass for RepPass {
    fn name(&self) -> &'static str {
        "Representation annotation"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Representation annotation"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-annotate::rep"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let Some(binding) = unit.annotations.binding.as_ref() else {
            return Err(schedule_error(
                "pipeline schedule error: representation annotation needs binding annotation",
            ));
        };
        let rep = s1lisp_annotate::rep_annotation_traced(unit.tree(), binding, &unit.name, cx.sink);
        unit.annotations.rep = Some(rep);
        Ok(())
    }
}

/// Pdl number annotation (Table 1, §6.3).
struct PdlPass;

impl Pass for PdlPass {
    fn name(&self) -> &'static str {
        "Pdl number annotation"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Pdl number annotation"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-annotate::pdl"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let (Some(binding), Some(rep)) = (
            unit.annotations.binding.as_ref(),
            unit.annotations.rep.as_ref(),
        ) else {
            return Err(schedule_error(
                "pipeline schedule error: pdl annotation needs binding and rep annotation",
            ));
        };
        let pdl =
            s1lisp_annotate::pdl_annotation_traced(unit.tree(), binding, rep, &unit.name, cx.sink);
        unit.annotations.pdl = Some(pdl);
        Ok(())
    }
}

/// TNBIND + code generation (Table 1): the per-lambda work loop of
/// pass-1 emit, TN packing ("Target annotation"), and the pass-2
/// re-emit when packing promoted variables to registers.
struct EmitPass {
    options: CodegenOptions,
}

impl Pass for EmitPass {
    fn name(&self) -> &'static str {
        "Code generation"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Target annotation", "Code generation"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-codegen + s1lisp-tnbind"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let (Some(binding), Some(rep), Some(pdl)) = (
            unit.annotations.binding.take(),
            unit.annotations.rep.take(),
            unit.annotations.pdl.take(),
        ) else {
            return Err(schedule_error(
                "pipeline schedule error: code generation needs the annotation passes",
            ));
        };
        let ann = Annotations { binding, rep, pdl };
        let result = s1lisp_codegen::emit_annotated(
            &unit.name,
            unit.tree(),
            &ann,
            cx.program,
            &self.options,
            cx.sink,
        );
        unit.annotations = UnitAnnotations {
            binding: Some(ann.binding),
            rep: Some(ann.rep),
            pdl: Some(ann.pdl),
        };
        result?;
        Ok(())
    }
}

/// The peephole (branch-tensioning) pass (Table 1), over the emitted
/// code in the program.
struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "Peephole optimizer"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Peephole optimizer"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-codegen::tension_branches"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        if let Some(id) = cx.program.lookup_fn(&unit.name) {
            if let Some(code) = cx.program.func(id) {
                let mut code = (**code).clone();
                let sp = cx.sink.span_begin("Peephole optimizer", &unit.name);
                let retargeted = s1lisp_codegen::tension_branches(&mut code);
                if cx.sink.enabled() {
                    cx.sink.add("labels_retargeted", retargeted as u64);
                }
                cx.sink.span_end(sp);
                cx.program.define(code);
            }
        }
        Ok(())
    }
}

/// The bytecode backend's emission pass: lowers the annotated tree to
/// the portable linear bytecode, appending the unit's protos to the
/// [`PassCx::bytecode`] module.  Consumes the same annotations as S-1
/// code generation — binding allocation drives slot layout, the
/// representation lowering map selects fused numeric opcodes.
struct BytecodeEmitPass;

impl Pass for BytecodeEmitPass {
    fn name(&self) -> &'static str {
        "Code generation"
    }

    fn table1(&self) -> &'static [&'static str] {
        &["Code generation"]
    }

    fn module(&self) -> &'static str {
        "s1lisp-bytecode::emit"
    }

    fn run(&self, unit: &mut UnitState, cx: &mut PassCx<'_>) -> Result<(), CompileError> {
        let (Some(binding), Some(rep), Some(pdl)) = (
            unit.annotations.binding.take(),
            unit.annotations.rep.take(),
            unit.annotations.pdl.take(),
        ) else {
            return Err(schedule_error(
                "pipeline schedule error: code generation needs the annotation passes",
            ));
        };
        let ann = Annotations { binding, rep, pdl };
        let sp = cx.sink.span_begin("Code generation", &unit.name);
        let result = s1lisp_bytecode::emit_unit(&unit.name, unit.tree(), &ann);
        if cx.sink.enabled() {
            if let Ok(protos) = &result {
                cx.sink.add("protos", protos.len() as u64);
                cx.sink.add(
                    "insns",
                    protos.iter().map(|p| p.code.len()).sum::<usize>() as u64,
                );
                cx.sink.add(
                    "consts",
                    protos.iter().map(|p| p.consts.len()).sum::<usize>() as u64,
                );
            }
        }
        cx.sink.span_end(sp);
        unit.annotations = UnitAnnotations {
            binding: Some(ann.binding),
            rep: Some(ann.rep),
            pdl: Some(ann.pdl),
        };
        let protos = result.map_err(|e| schedule_error(&e.to_string()))?;
        cx.bytecode.define_unit(protos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{phases, PhaseStatus};
    use crate::Compiler;

    #[test]
    fn pipeline_is_consistent_with_table_1() {
        let table: Vec<&str> = phases().iter().map(|p| p.name).collect();
        let infos = Compiler::new().pipeline().describe();
        // Every row a pass claims is a real Table-1 row.
        for info in &infos {
            for row in info.table1 {
                assert!(
                    table.contains(row),
                    "{} claims unknown row {row}",
                    info.name
                );
            }
        }
        // Every per-function Table-1 row that is actually implemented
        // (Preliminary runs before the per-function pipeline; subsumed
        // rows have no pass of their own) is claimed by exactly one
        // pass.
        for p in phases() {
            if p.name == "Preliminary" || p.status == PhaseStatus::Subsumed {
                continue;
            }
            let claims = infos.iter().filter(|i| i.table1.contains(&p.name)).count();
            assert_eq!(claims, 1, "{} claimed {claims} times", p.name);
        }
        // Single-row passes carry the same module attribution as the
        // table.
        for info in &infos {
            if let [row] = info.table1 {
                let table_row = phases().into_iter().find(|p| p.name == *row).unwrap();
                assert_eq!(info.module, table_row.module, "{}", info.name);
            }
        }
    }

    #[test]
    fn default_schedule_enables_exactly_the_default_passes() {
        let infos = Compiler::new().pipeline().describe();
        let enabled = |name: &str| infos.iter().find(|i| i.name == name).unwrap().enabled;
        assert!(!enabled("Fault injection"));
        assert!(!enabled("Guard: conversion"));
        assert!(!enabled("Guard: back-translation"));
        assert!(!enabled("Common subexpression elimination"));
        assert!(enabled("Source-level optimization"));
        assert!(enabled("Code generation"));
        assert!(enabled("Peephole optimizer"));
        let mut c = Compiler::new();
        c.cse = true;
        c.guard = true;
        let infos = c.pipeline().describe();
        let enabled = |name: &str| infos.iter().find(|i| i.name == name).unwrap().enabled;
        assert!(enabled("Guard: conversion"));
        assert!(enabled("Common subexpression elimination"));
    }

    #[test]
    fn backends_share_the_middle_end_and_differ_only_in_the_tail() {
        let s1 = Compiler::new().pipeline().pass_names();
        let mut c = Compiler::new();
        c.backend = BackendKind::Bytecode;
        let bc = c.pipeline().pass_names();
        // S-1 keeps its historical shape: code generation then the
        // peephole pass.
        assert_eq!(
            s1[s1.len() - 2..],
            ["Code generation", "Peephole optimizer"]
        );
        // The bytecode backend replaces that tail with its single
        // emitter pass.
        assert_eq!(bc[bc.len() - 1], "Code generation");
        assert_eq!(bc.len(), s1.len() - 1);
        // Everything upstream of the backend is identical.
        assert_eq!(s1[..s1.len() - 2], bc[..bc.len() - 1]);
    }

    #[test]
    fn backend_kind_parses_and_salts_distinctly() {
        assert_eq!(BackendKind::parse("s1"), Some(BackendKind::S1));
        assert_eq!(BackendKind::parse("bytecode"), Some(BackendKind::Bytecode));
        assert_eq!(BackendKind::parse("bc"), Some(BackendKind::Bytecode));
        assert_eq!(BackendKind::parse("vax"), None);
        assert_ne!(BackendKind::S1.salt(), BackendKind::Bytecode.salt());
    }

    #[test]
    fn permute_reorders_only_the_named_passes() {
        let mut p = Compiler::new().pipeline();
        let before = p.pass_names();
        assert!(p.permute(&[
            "Tail-recursion analysis",
            "Complexity analysis",
            "Side-effects analysis",
            "Environment analysis",
        ]));
        let after = p.pass_names();
        assert_eq!(
            after[2..6],
            [
                "Tail-recursion analysis",
                "Complexity analysis",
                "Side-effects analysis",
                "Environment analysis",
            ]
        );
        // Everything outside the quartet is untouched.
        assert_eq!(before[..2], after[..2]);
        assert_eq!(before[6..], after[6..]);
        // Unknown names leave the schedule alone.
        assert!(!p.permute(&["No such pass"]));
        assert_eq!(p.pass_names(), after);
    }

    #[test]
    fn pass_budget_overrun_is_a_structured_error() {
        let mut c = Compiler::new();
        c.pass_budget = Some(Duration::ZERO);
        let err = c
            .compile_str("(defun sq (x) (* x x))")
            .expect_err("zero budget must overrun");
        match err {
            CompileError::Overrun(o) => {
                assert_eq!(o.function, "sq");
                assert!(!o.pass.is_empty());
                assert_eq!(o.budget, Duration::ZERO);
                assert!(err_to_string(&CompileError::Overrun(o)).contains("pass budget"));
            }
            other => panic!("expected overrun, got {other}"),
        }
        // A sane budget compiles normally.
        let mut c = Compiler::new();
        c.pass_budget = Some(Duration::from_secs(60));
        c.compile_str("(defun sq (x) (* x x))").unwrap();
        assert!(c.disassemble("sq").is_some());
    }

    fn err_to_string(e: &CompileError) -> String {
        e.to_string()
    }
}
