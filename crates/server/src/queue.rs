//! The bounded admission queue with deficit-round-robin fairness.
//!
//! Requests enter per-tenant lanes; workers drain them under a classic
//! deficit-round-robin scan: each visit to a backlogged lane adds
//! [`QueueConfig::quantum`] credit to its deficit counter, and a lane
//! is served when its credit covers the head request's cost.  Costs
//! scale with request size, so a tenant flooding the server with big
//! compiles accrues service debt and cannot starve a light tenant —
//! pinned by the fairness test.
//!
//! Two invariants the server leans on:
//!
//! * **Bounded, never silent** — [`AdmissionQueue::submit`] rejects
//!   with [`QueueFull`] when either the per-tenant or the total bound
//!   is hit; the caller turns that into a retry-after response.  A
//!   submitted request is always eventually served or explicitly
//!   drained at shutdown.
//! * **One in flight per tenant** — a lane whose previous request is
//!   still on a worker is skipped, so each tenant's requests are
//!   *processed* strictly in submission order even with many workers
//!   (responses can still interleave across tenants, which is the
//!   point).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Bounds and fairness quantum.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Queued (not yet in-flight) requests allowed per tenant.
    pub per_tenant: usize,
    /// Queued requests allowed across all tenants.
    pub total: usize,
    /// Deficit credit a backlogged lane earns per scan visit.
    pub quantum: u64,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            per_tenant: 32,
            total: 256,
            quantum: 4,
        }
    }
}

/// The backpressure rejection: the queue is full, come back later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

struct Lane<T> {
    tenant: String,
    deficit: u64,
    in_flight: bool,
    items: VecDeque<(u64, T)>,
}

struct Inner<T> {
    lanes: Vec<Lane<T>>,
    cursor: usize,
    queued: usize,
    open: bool,
}

/// A bounded multi-tenant queue drained by worker threads.
pub struct AdmissionQueue<T> {
    config: QueueConfig,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// An empty, open queue.
    pub fn new(config: QueueConfig) -> AdmissionQueue<T> {
        AdmissionQueue {
            config,
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                cursor: 0,
                queued: 0,
                open: true,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one request for `tenant` at the given fairness cost
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the total bound or the tenant's lane bound is
    /// hit — the caller must answer with a retry hint, not drop.
    pub fn submit(&self, tenant: &str, cost: u64, item: T) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if !inner.open || inner.queued >= self.config.total {
            return Err(QueueFull);
        }
        let lane = match inner.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => lane,
            None => {
                inner.lanes.push(Lane {
                    tenant: tenant.to_string(),
                    deficit: 0,
                    in_flight: false,
                    items: VecDeque::new(),
                });
                inner.lanes.last_mut().expect("just pushed")
            }
        };
        if lane.items.len() >= self.config.per_tenant {
            return Err(QueueFull);
        }
        lane.items.push_back((cost.max(1), item));
        inner.queued += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a request is servable and claims it, or returns
    /// `None` once the queue is closed and drained.  The claiming
    /// worker must call [`AdmissionQueue::done`] after serving so the
    /// tenant's lane reopens.
    pub fn next(&self) -> Option<(String, T)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.open && inner.queued == 0 {
                return None;
            }
            // One full DRR rotation: visit every lane once, crediting
            // backlogged non-in-flight lanes and serving the first one
            // whose deficit covers its head cost.
            let lanes = inner.lanes.len();
            let mut candidates = false;
            for step in 0..lanes {
                let i = (inner.cursor + step) % lanes;
                let lane = &mut inner.lanes[i];
                if lane.items.is_empty() {
                    // An idle lane keeps no credit: fairness is about
                    // backlog now, not arrears from last week.
                    lane.deficit = 0;
                    continue;
                }
                if lane.in_flight {
                    continue;
                }
                candidates = true;
                lane.deficit += self.config.quantum;
                let head_cost = lane.items.front().expect("nonempty").0;
                if lane.deficit >= head_cost {
                    let (cost, item) = lane.items.pop_front().expect("nonempty");
                    lane.deficit -= cost;
                    lane.in_flight = true;
                    let tenant = lane.tenant.clone();
                    inner.cursor = (i + 1) % lanes;
                    inner.queued -= 1;
                    return Some((tenant, item));
                }
            }
            if candidates {
                // Every backlogged lane is still saving up credit for a
                // big head-of-line request; keep rotating (each pass
                // adds a quantum, so this terminates).
                continue;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Reopens `tenant`'s lane after its in-flight request finished.
    pub fn done(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if let Some(lane) = inner.lanes.iter_mut().find(|l| l.tenant == tenant) {
            lane.in_flight = false;
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Closes the queue: further submits are rejected, and workers see
    /// `None` once the backlog drains.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").open = false;
        self.ready.notify_all();
    }

    /// Requests currently queued (not counting in-flight ones).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &AdmissionQueue<u32>) -> Vec<(String, u32)> {
        let mut served = Vec::new();
        q.close();
        while let Some((tenant, item)) = q.next() {
            q.done(&tenant);
            served.push((tenant, item));
        }
        served
    }

    #[test]
    fn bounds_reject_instead_of_dropping() {
        let q = AdmissionQueue::new(QueueConfig {
            per_tenant: 2,
            total: 3,
            quantum: 4,
        });
        assert_eq!(q.submit("a", 1, 0), Ok(()));
        assert_eq!(q.submit("a", 1, 1), Ok(()));
        assert_eq!(q.submit("a", 1, 2), Err(QueueFull), "per-tenant bound");
        assert_eq!(q.submit("b", 1, 3), Ok(()));
        assert_eq!(q.submit("c", 1, 4), Err(QueueFull), "total bound");
        assert_eq!(q.depth(), 3);
        // Everything admitted is served; nothing vanished.
        assert_eq!(drain_all(&q).len(), 3);
    }

    #[test]
    fn drr_interleaves_a_flooder_with_a_light_tenant() {
        let q = AdmissionQueue::new(QueueConfig {
            per_tenant: 32,
            total: 64,
            quantum: 4,
        });
        for i in 0..10 {
            q.submit("flood", 4, i).unwrap();
        }
        q.submit("light", 4, 100).unwrap();
        q.submit("light", 4, 101).unwrap();
        let served = drain_all(&q);
        let light_positions: Vec<usize> = served
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| t == "light")
            .map(|(i, _)| i)
            .collect();
        // The light tenant is served round-robin with the flooder, not
        // behind its whole backlog.
        assert!(
            light_positions[1] <= 4,
            "light tenant starved: served at {light_positions:?} in {served:?}"
        );
        // Per-tenant order is FIFO.
        let flood: Vec<u32> = served
            .iter()
            .filter(|(t, _)| t == "flood")
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(flood, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn expensive_requests_cost_proportionally_more_turns() {
        let q = AdmissionQueue::new(QueueConfig {
            per_tenant: 32,
            total: 64,
            quantum: 1,
        });
        // Tenant "big" queues one cost-8 request; "small" queues four
        // cost-1 requests.  With quantum 1, "big" must save eight turns
        // of credit, so every "small" request goes first.
        q.submit("big", 8, 0).unwrap();
        for i in 1..=4 {
            q.submit("small", 1, i).unwrap();
        }
        let served: Vec<u32> = drain_all(&q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(served, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn one_in_flight_per_tenant() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.submit("a", 1, 0).unwrap();
        q.submit("a", 1, 1).unwrap();
        q.submit("b", 1, 2).unwrap();
        let (t1, i1) = q.next().unwrap();
        assert_eq!((t1.as_str(), i1), ("a", 0));
        // Lane "a" is busy; the next claim must come from "b".
        let (t2, i2) = q.next().unwrap();
        assert_eq!((t2.as_str(), i2), ("b", 2));
        q.done("a");
        let (t3, i3) = q.next().unwrap();
        assert_eq!((t3.as_str(), i3), ("a", 1));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::<u32>::new(QueueConfig::default()));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.next())
        };
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }
}
