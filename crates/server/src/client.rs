//! A blocking client for the compile server, over either transport.
//!
//! The client assigns monotonically increasing request ids and matches
//! responses by id, buffering any that arrive out of order — so the
//! simple `call`-style methods compose with explicit pipelining
//! ([`ServeClient::send`] many, then [`ServeClient::recv_id`] each).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use s1lisp_trace::json;

use crate::proto::{read_frame, write_frame, Op, Request, Response};

/// A connected client.
pub struct ServeClient {
    r: Box<dyn Read + Send>,
    w: Box<dyn Write + Send>,
    child: Option<Child>,
    next_id: u64,
    pending: HashMap<u64, Response>,
}

fn protocol_error(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

impl ServeClient {
    /// Connects to a TCP server at `addr` (`"127.0.0.1:PORT"`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let r = stream.try_clone()?;
        Ok(ServeClient {
            r: Box::new(r),
            w: Box::new(stream),
            child: None,
            next_id: 0,
            pending: HashMap::new(),
        })
    }

    /// Spawns `cmd args... --stdio` as a child process and speaks the
    /// protocol over its stdin/stdout.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure.
    pub fn spawn_stdio(cmd: &str, args: &[&str]) -> io::Result<ServeClient> {
        let mut child = Command::new(cmd)
            .args(args)
            .arg("--stdio")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let w = child
            .stdin
            .take()
            .ok_or_else(|| protocol_error("no stdin"))?;
        let r = child
            .stdout
            .take()
            .ok_or_else(|| protocol_error("no stdout"))?;
        Ok(ServeClient {
            r: Box::new(r),
            w: Box::new(w),
            child: Some(child),
            next_id: 0,
            pending: HashMap::new(),
        })
    }

    /// Sends a request without waiting; returns its id for
    /// [`ServeClient::recv_id`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, op: Op) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Request { id, op };
        write_frame(&mut self.w, req.to_json().to_string().as_bytes())?;
        Ok(id)
    }

    /// Reads the next response off the wire, whatever its id.
    ///
    /// # Errors
    ///
    /// EOF or a malformed frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = read_frame(&mut self.r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let text = String::from_utf8(frame).map_err(|e| protocol_error(e.to_string()))?;
        let parsed = json::parse(&text).map_err(protocol_error)?;
        Response::from_json(&parsed).map_err(protocol_error)
    }

    /// The response to request `id`, buffering out-of-order arrivals.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::recv`] failures.
    pub fn recv_id(&mut self, id: u64) -> io::Result<Response> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.recv()?;
            if resp.id == id {
                return Ok(resp);
            }
            self.pending.insert(resp.id, resp);
        }
    }

    fn call(&mut self, op: Op) -> io::Result<Response> {
        let id = self.send(op)?;
        self.recv_id(id)
    }

    /// Authenticates this connection to a tenant.
    ///
    /// # Errors
    ///
    /// Transport failures; an auth rejection comes back as a normal
    /// `ok = false` response.
    pub fn hello(&mut self, tenant: &str, token: Option<&str>) -> io::Result<Response> {
        self.call(Op::Hello {
            tenant: tenant.to_string(),
            token: token.map(str::to_string),
        })
    }

    /// Compiles a unit into the tenant's namespace.
    ///
    /// # Errors
    ///
    /// Transport failures only; compile failures come back in the
    /// response.
    pub fn compile(&mut self, unit: &str, source: &str) -> io::Result<Response> {
        self.call(Op::Compile {
            unit: unit.to_string(),
            source: source.to_string(),
        })
    }

    /// Runs a compiled function with printed-datum arguments.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn run(&mut self, entry: &str, args: &[&str]) -> io::Result<Response> {
        self.call(Op::Run {
            entry: entry.to_string(),
            args: args.iter().map(|a| (*a).to_string()).collect(),
        })
    }

    /// Fetches a function's compilation dossier.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn explain(&mut self, name: &str) -> io::Result<Response> {
        self.call(Op::Explain {
            name: name.to_string(),
        })
    }

    /// Liveness probe through the full queue path.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.call(Op::Ping)
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(Op::Shutdown)
    }

    /// Waits for a spawned stdio server to exit; `Ok(true)` when the
    /// child exited cleanly, `Ok(false)` for TCP clients (nothing to
    /// wait for).
    ///
    /// # Errors
    ///
    /// Propagates `wait(2)` failures.
    pub fn wait_exit(&mut self) -> io::Result<bool> {
        match self.child.take() {
            Some(mut child) => {
                drop(std::mem::replace(&mut self.w, Box::new(io::sink()))); // close the child's stdin so EOF reaches its frame loop
                let status = child.wait()?;
                Ok(status.success())
            }
            None => Ok(false),
        }
    }
}
