//! A blocking client for the compile server, over either transport.
//!
//! The client assigns monotonically increasing request ids and matches
//! responses by id, buffering any that arrive out of order — so the
//! simple `call`-style methods compose with explicit pipelining
//! ([`ServeClient::send`] many, then [`ServeClient::recv_id`] each).
//!
//! The `call`-style methods honor the server's backpressure hints: a
//! rejection with `retry_after_ms` is retried with capped exponential
//! backoff and seeded jitter (so a burst of rejected clients
//! decorrelates instead of stampeding back in lockstep) until a
//! bounded [`RetryPolicy::budget`] is exhausted, and only then
//! surfaced.  The raw [`ServeClient::send`]/[`ServeClient::recv_id`]
//! pipelining API never retries — backpressure tests watch rejections
//! through it.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use s1lisp_trace::json;
use s1lisp_trace::rng::SplitMix64;

use crate::proto::{read_frame, write_frame, Op, Request, Response};

/// How `call`-style methods respond to backpressure rejections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries before a rejection is surfaced to the caller.
    pub budget: u32,
    /// Ceiling on any single backoff sleep, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 6,
            cap_ms: 400,
            seed: 0x5eed_c11e,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based) of a request the
    /// server asked to delay by `hint_ms`: exponential growth from the
    /// hint, capped, then jittered into `[base/2, base]` so rejected
    /// clients decorrelate.  Pure — the schedule replays from the seed.
    pub fn backoff_ms(&self, attempt: u32, hint_ms: u64, rng: &mut SplitMix64) -> u64 {
        let base = hint_ms
            .max(1)
            .saturating_mul(1 << attempt.min(10))
            .min(self.cap_ms.max(1));
        base / 2 + rng.below(base / 2 + 1)
    }
}

/// A connected client.
pub struct ServeClient {
    r: Box<dyn Read + Send>,
    w: Box<dyn Write + Send>,
    child: Option<Child>,
    next_id: u64,
    pending: HashMap<u64, Response>,
    retry: Option<RetryPolicy>,
    rng: SplitMix64,
    retries: u64,
}

fn protocol_error(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

impl ServeClient {
    /// Connects to a TCP server at `addr` (`"127.0.0.1:PORT"`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let r = stream.try_clone()?;
        Ok(ServeClient::from_parts(Box::new(r), Box::new(stream), None))
    }

    /// Spawns `cmd args... --stdio` as a child process and speaks the
    /// protocol over its stdin/stdout.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure.
    pub fn spawn_stdio(cmd: &str, args: &[&str]) -> io::Result<ServeClient> {
        let mut child = Command::new(cmd)
            .args(args)
            .arg("--stdio")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let w = child
            .stdin
            .take()
            .ok_or_else(|| protocol_error("no stdin"))?;
        let r = child
            .stdout
            .take()
            .ok_or_else(|| protocol_error("no stdout"))?;
        Ok(ServeClient::from_parts(
            Box::new(r),
            Box::new(w),
            Some(child),
        ))
    }

    fn from_parts(
        r: Box<dyn Read + Send>,
        w: Box<dyn Write + Send>,
        child: Option<Child>,
    ) -> ServeClient {
        let retry = RetryPolicy::default();
        ServeClient {
            r,
            w,
            child,
            next_id: 0,
            pending: HashMap::new(),
            rng: SplitMix64::new(retry.seed),
            retry: Some(retry),
            retries: 0,
        }
    }

    /// Replaces the backpressure retry policy (`None` surfaces raw
    /// rejections, the pre-durability behavior).  Reseeds the jitter
    /// stream.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        if let Some(p) = &policy {
            self.rng = SplitMix64::new(p.seed);
        }
        self.retry = policy;
    }

    /// Backoff retries performed so far (for fairness tests).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends a request without waiting; returns its id for
    /// [`ServeClient::recv_id`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, op: Op) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Request { id, op };
        write_frame(&mut self.w, req.to_json().to_string().as_bytes())?;
        Ok(id)
    }

    /// Reads the next response off the wire, whatever its id.
    ///
    /// # Errors
    ///
    /// EOF or a malformed frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = read_frame(&mut self.r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let text = String::from_utf8(frame).map_err(|e| protocol_error(e.to_string()))?;
        let parsed = json::parse(&text).map_err(protocol_error)?;
        Response::from_json(&parsed).map_err(protocol_error)
    }

    /// The response to request `id`, buffering out-of-order arrivals.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::recv`] failures.
    pub fn recv_id(&mut self, id: u64) -> io::Result<Response> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.recv()?;
            if resp.id == id {
                return Ok(resp);
            }
            self.pending.insert(resp.id, resp);
        }
    }

    fn call(&mut self, op: Op) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let id = self.send(op.clone())?;
            let resp = self.recv_id(id)?;
            let retriable = !resp.ok && resp.retry_after_ms > 0;
            let Some(policy) = self.retry.filter(|p| retriable && attempt < p.budget) else {
                return Ok(resp);
            };
            let sleep_ms = policy.backoff_ms(attempt, resp.retry_after_ms, &mut self.rng);
            self.retries += 1;
            std::thread::sleep(Duration::from_millis(sleep_ms));
            attempt += 1;
        }
    }

    /// Authenticates this connection to a tenant.
    ///
    /// # Errors
    ///
    /// Transport failures; an auth rejection comes back as a normal
    /// `ok = false` response.
    pub fn hello(&mut self, tenant: &str, token: Option<&str>) -> io::Result<Response> {
        self.call(Op::Hello {
            tenant: tenant.to_string(),
            token: token.map(str::to_string),
        })
    }

    /// Compiles a unit into the tenant's namespace.
    ///
    /// # Errors
    ///
    /// Transport failures only; compile failures come back in the
    /// response.
    pub fn compile(&mut self, unit: &str, source: &str) -> io::Result<Response> {
        self.call(Op::Compile {
            unit: unit.to_string(),
            source: source.to_string(),
        })
    }

    /// Runs a compiled function with printed-datum arguments.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn run(&mut self, entry: &str, args: &[&str]) -> io::Result<Response> {
        self.call(Op::Run {
            entry: entry.to_string(),
            args: args.iter().map(|a| (*a).to_string()).collect(),
        })
    }

    /// Fetches a function's compilation dossier.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn explain(&mut self, name: &str) -> io::Result<Response> {
        self.call(Op::Explain {
            name: name.to_string(),
        })
    }

    /// Liveness probe through the full queue path.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.call(Op::Ping)
    }

    /// Forces a durable snapshot of the tenant's state; the response's
    /// `durable` flag reports whether it reached stable storage.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn sync(&mut self) -> io::Result<Response> {
        self.call(Op::Sync)
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(Op::Shutdown)
    }

    /// Waits for a spawned stdio server to exit; `Ok(true)` when the
    /// child exited cleanly, `Ok(false)` for TCP clients (nothing to
    /// wait for).
    ///
    /// # Errors
    ///
    /// Propagates `wait(2)` failures.
    pub fn wait_exit(&mut self) -> io::Result<bool> {
        match self.child.take() {
            Some(mut child) => {
                drop(std::mem::replace(&mut self.w, Box::new(io::sink()))); // close the child's stdin so EOF reaches its frame loop
                let status = child.wait()?;
                Ok(status.success())
            }
            None => Ok(false),
        }
    }
}
