//! The per-tenant write-ahead journal and snapshot machinery.
//!
//! # Durability contract
//!
//! Every namespace-mutating request (a successful `compile` of
//! `defun`s/`defvar`s/`proclaim`s) is appended to
//! `<state_dir>/<tenant_fp>/journal.log` and fsynced **before** the
//! success response is framed.  An acknowledged mutation therefore
//! survives `kill -9`; a mutation whose record never reached stable
//! storage was never acknowledged as durable.  Periodic snapshots
//! (`snapshot.json`, temp-then-rename + fsync via the shared
//! [`fsio`](s1lisp_driver::fsio) discipline) absorb the journal and
//! truncate it, so recovery replays a short tail instead of the
//! tenant's whole history.
//!
//! # Record format
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes of JSON]
//! payload = {"seq":N,"tenant":"...","unit":"...","source":"..."}
//! ```
//!
//! `seq` increases strictly per tenant; `applied_seq` in the snapshot
//! names the last record the snapshot absorbed, so records at or below
//! it (a crash between snapshot write and journal truncation, or an
//! adversarially duplicated record) are recognized as stale and
//! skipped.
//!
//! # Recovery ladder
//!
//! [`scan_journal`] classifies a journal into exactly one of:
//!
//! 1. **Clean** — every record frames, checks, and parses.
//! 2. **Torn tail** — the *final* record is incomplete or fails its
//!    CRC: the write was interrupted mid-append.  The torn record was
//!    never acknowledged; it is dropped, counted, and recovery keeps
//!    the intact prefix.
//! 3. **Corrupt** — a record *before* the end fails: bytes that were
//!    once acknowledged are gone.  The tenant cannot be trusted
//!    piecemeal; the caller quarantines it to a fresh namespace (an
//!    `IncidentKind::Recovery` incident) rather than poisoning the
//!    process or silently serving a hole in history.
//!
//! The seeded fault plan's `journal-write` site dooms append attempts
//! (retried and strike-counted like cache I/O); `journal-corrupt`
//! flips a payload byte at *scan* time, deterministically per record,
//! so recovery drills replay exactly from their seed while the on-disk
//! log stays intact.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use s1lisp::Artifact;
use s1lisp_driver::fsio::{self, IO_ATTEMPTS};
use s1lisp_driver::{FaultPlan, FaultSite};
use s1lisp_trace::json::{self, Json};

use crate::tenant::TenantState;

/// Refuse journal records above this size (matches the wire frame cap:
/// a corrupt length prefix must not look like an allocation request).
pub const MAX_RECORD: usize = 16 << 20;

/// Consecutive exhausted-retry append failures that disable a tenant's
/// journal for the rest of the process (responses turn non-durable;
/// the namespace keeps serving from memory).
pub const JOURNAL_STRIKE_LIMIT: u64 = 4;

/// CRC-32 (IEEE) over `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// One journaled mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Strictly increasing per-tenant sequence number.
    pub seq: u64,
    /// The tenant name (kept in every record so a tenant directory is
    /// self-describing even when its snapshot is unreadable).
    pub tenant: String,
    /// The compile request's unit label.
    pub unit: String,
    /// The compiled source.
    pub source: String,
}

impl JournalRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::uint(self.seq)),
            ("tenant".into(), Json::str(&self.tenant)),
            ("unit".into(), Json::str(&self.unit)),
            ("source".into(), Json::str(&self.source)),
        ])
    }

    fn from_json(j: &Json) -> Option<JournalRecord> {
        Some(JournalRecord {
            seq: u64::try_from(j.get("seq")?.as_int()?).ok()?,
            tenant: j.get("tenant")?.as_str()?.to_string(),
            unit: j.get("unit")?.as_str()?.to_string(),
            source: j.get("source")?.as_str()?.to_string(),
        })
    }
}

/// Encodes one record as a CRC-framed, length-prefixed journal entry.
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = rec.to_json().to_string().into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record bounded")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The verdict of scanning one journal file.  See the module docs for
/// the recovery ladder the fields encode.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Valid records in order, stale sequence numbers skipped.
    pub records: Vec<JournalRecord>,
    /// A torn (incomplete or CRC-failing) final record was dropped.
    pub torn_tail: bool,
    /// A record *before* the end failed: acknowledged history is gone
    /// and the tenant must be quarantined.
    pub corrupt: bool,
    /// Records skipped because their `seq` was not past the newest
    /// already seen (duplicates, or a pre-truncation remnant at or
    /// below the snapshot's `applied_seq`).
    pub stale: u64,
}

/// Scans raw journal bytes.  Records with `seq <= min_seq` (already in
/// the snapshot) are counted as stale and skipped.  `corrupt_probe`
/// is the seeded `journal-corrupt` injection hook: given a record's
/// ordinal index, returning `true` flips a payload byte before the CRC
/// check — the on-disk bytes are never touched.
pub fn scan_journal(
    bytes: &[u8],
    min_seq: u64,
    corrupt_probe: impl Fn(usize) -> bool,
) -> JournalScan {
    let mut scan = JournalScan::default();
    let mut off = 0usize;
    let mut idx = 0usize;
    let mut last_seq = min_seq;
    while off < bytes.len() {
        if bytes.len() - off < 8 {
            scan.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let framable = len <= MAX_RECORD && bytes.len() - off - 8 >= len;
        if !framable {
            // An unframable length at the end of the file is an
            // interrupted append; anywhere else we cannot even find
            // the next record boundary.
            if len > MAX_RECORD && bytes.len() - off - 8 >= len.min(MAX_RECORD) {
                scan.corrupt = true;
            } else {
                scan.torn_tail = true;
            }
            break;
        }
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        let end = off + 8 + len;
        let mut payload = bytes[off + 8..end].to_vec();
        if corrupt_probe(idx) && !payload.is_empty() {
            let mid = payload.len() / 2;
            payload[mid] ^= 0x80;
        }
        let record = if crc32(&payload) == crc {
            std::str::from_utf8(&payload)
                .ok()
                .and_then(|t| json::parse(t).ok())
                .and_then(|j| JournalRecord::from_json(&j))
        } else {
            None
        };
        let Some(record) = record else {
            // A bad record that reaches EOF is a torn tail; one with
            // more journal after it means acknowledged history is gone.
            if end >= bytes.len() {
                scan.torn_tail = true;
            } else {
                scan.corrupt = true;
            }
            break;
        };
        if record.seq > last_seq {
            last_seq = record.seq;
            scan.records.push(record);
        } else {
            scan.stale += 1;
        }
        off = end;
        idx += 1;
    }
    scan
}

/// The on-disk snapshot of one tenant: everything
/// [`TenantState`] remembers, plus the journal sequence number the
/// snapshot has absorbed.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant name.
    pub tenant: String,
    /// The tenant's cache-key salt (also names its state directory).
    pub fingerprint: u64,
    /// The last journal `seq` this snapshot includes; recovery skips
    /// journal records at or below it.
    pub applied_seq: u64,
    /// Proclaimed specials, in first-proclaimed order.
    pub specials: Vec<String>,
    /// `defvar` globals as `(name, printed initial value)`.
    pub globals: Vec<(String, String)>,
    /// The compiled-source replay log.
    pub sources: Vec<String>,
    /// Incidents accrued.
    pub incidents: u64,
    /// Whether the tenant is demoted to transformations-off compiles.
    pub degraded: bool,
    /// Latest artifact per function, sorted by name for determinism.
    pub artifacts: Vec<Artifact>,
}

impl TenantSnapshot {
    /// Captures a snapshot of `st` as of journal position
    /// `applied_seq`.
    pub fn of(st: &TenantState, applied_seq: u64) -> TenantSnapshot {
        let mut artifacts: Vec<Artifact> = st.artifacts.values().cloned().collect();
        artifacts.sort_by(|a, b| a.name.cmp(&b.name));
        TenantSnapshot {
            tenant: st.name.clone(),
            fingerprint: st.fingerprint,
            applied_seq,
            specials: st.specials.clone(),
            globals: st.globals.clone(),
            sources: st.sources.clone(),
            incidents: st.incidents,
            degraded: st.degraded,
            artifacts,
        }
    }

    /// The serialized form `snapshot.json` holds.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenant".into(), Json::str(&self.tenant)),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("applied_seq".into(), Json::uint(self.applied_seq)),
            (
                "specials".into(),
                Json::Arr(self.specials.iter().map(Json::str).collect()),
            ),
            (
                "globals".into(),
                Json::Arr(
                    self.globals
                        .iter()
                        .map(|(n, v)| Json::Arr(vec![Json::str(n), Json::str(v)]))
                        .collect(),
                ),
            ),
            (
                "sources".into(),
                Json::Arr(self.sources.iter().map(Json::str).collect()),
            ),
            ("incidents".into(), Json::uint(self.incidents)),
            ("degraded".into(), Json::Bool(self.degraded)),
            (
                "artifacts".into(),
                Json::Arr(self.artifacts.iter().map(Artifact::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a snapshot from [`TenantSnapshot::to_json`] output.
    /// `None` on any missing or mistyped field — a corrupt snapshot
    /// quarantines the tenant rather than half-loading it.
    pub fn from_json(j: &Json) -> Option<TenantSnapshot> {
        let strs = |key: &str| {
            j.get(key)?
                .as_arr()?
                .iter()
                .map(|v| Some(v.as_str()?.to_string()))
                .collect::<Option<Vec<String>>>()
        };
        Some(TenantSnapshot {
            tenant: j.get("tenant")?.as_str()?.to_string(),
            fingerprint: u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?,
            applied_seq: u64::try_from(j.get("applied_seq")?.as_int()?).ok()?,
            specials: strs("specials")?,
            globals: j
                .get("globals")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    Some((
                        pair.first()?.as_str()?.to_string(),
                        pair.get(1)?.as_str()?.to_string(),
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            sources: strs("sources")?,
            incidents: u64::try_from(j.get("incidents")?.as_int()?).ok()?,
            degraded: j.get("degraded")?.as_bool()?,
            artifacts: j
                .get("artifacts")?
                .as_arr()?
                .iter()
                .map(Artifact::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// The tenant's state directory under a server state dir.
pub fn tenant_dir(state_dir: &Path, fingerprint: u64) -> PathBuf {
    state_dir.join(format!("{fingerprint:016x}"))
}

/// One tenant's open journal: an append handle plus snapshot plumbing.
#[derive(Debug)]
pub struct TenantJournal {
    dir: PathBuf,
    file: File,
    fingerprint: u64,
    next_seq: u64,
    appended_since_snapshot: u64,
    fault_plan: Option<FaultPlan>,
    strikes: u64,
    disabled: bool,
}

impl TenantJournal {
    /// Opens (creating as needed) the journal for a tenant under
    /// `state_dir`.  The caller seeds `next_seq` via
    /// [`TenantJournal::set_next_seq`] after recovery; a fresh tenant
    /// starts at 1.
    ///
    /// # Errors
    ///
    /// Directory creation or open failures.
    pub fn open(
        state_dir: &Path,
        fingerprint: u64,
        fault_plan: Option<FaultPlan>,
    ) -> io::Result<TenantJournal> {
        let dir = tenant_dir(state_dir, fingerprint);
        std::fs::create_dir_all(&dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal.log"))?;
        Ok(TenantJournal {
            dir,
            file,
            fingerprint,
            next_seq: 1,
            appended_since_snapshot: 0,
            fault_plan,
            strikes: 0,
            disabled: false,
        })
    }

    /// The tenant's state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal file path.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }

    /// The snapshot file path.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Seeds the sequence counter after recovery.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq.max(1);
    }

    /// Records appended since the last snapshot (drives the periodic
    /// snapshot cadence).
    pub fn pending(&self) -> u64 {
        self.appended_since_snapshot
    }

    /// True once persistent append failures have struck the journal
    /// out: the tenant keeps serving, non-durably.
    pub fn disabled(&self) -> bool {
        self.disabled
    }

    /// Appends one mutation record and fsyncs it to stable storage.
    /// Returns the record's sequence number and encoded size.  The
    /// seeded `journal-write` site dooms a deterministic prefix of the
    /// retry attempts; [`JOURNAL_STRIKE_LIMIT`] consecutive exhausted
    /// appends disable the journal.
    ///
    /// # Errors
    ///
    /// The final attempt's failure once retries are exhausted (the
    /// response then reports `durable: false`).
    pub fn append(&mut self, tenant: &str, unit: &str, source: &str) -> io::Result<(u64, usize)> {
        if self.disabled {
            return Err(io::Error::other("journal disabled after repeated failures"));
        }
        let seq = self.next_seq;
        let frame = encode_record(&JournalRecord {
            seq,
            tenant: tenant.to_string(),
            unit: unit.to_string(),
            source: source.to_string(),
        });
        let doomed = self.fault_plan.as_ref().map_or(0, |p| {
            p.failure_count(
                FaultSite::JournalWrite,
                &format!("{:016x}:{seq}", self.fingerprint),
                IO_ATTEMPTS,
            )
        });
        // A failed attempt may have written part of the frame; truncate
        // back so a retry cannot leave mid-log garbage (which recovery
        // would rightly treat as corruption, not a torn tail).
        let base = self.file.metadata()?.len();
        let file = &mut self.file;
        let wrote = fsio::with_io_retries(
            IO_ATTEMPTS,
            || {},
            |attempt| {
                if attempt < doomed {
                    let _ = file.set_len(base);
                    return Err(io::Error::other("injected fault: journal write I/O error"));
                }
                let append = file.write_all(&frame).and_then(|()| file.sync_data());
                if append.is_err() {
                    let _ = file.set_len(base);
                }
                append
            },
        );
        // The sequence number is consumed either way: a failed append
        // wrote nothing (attempts truncate back to `base`), and giving
        // the *next* mutation a fresh seq keeps its fault-plan draw
        // independent.  Recovery only needs seqs strictly increasing,
        // not dense.
        self.next_seq += 1;
        match wrote {
            Ok(()) => {
                self.strikes = 0;
                self.appended_since_snapshot += 1;
                Ok((seq, frame.len()))
            }
            Err(e) => {
                self.strikes += 1;
                if self.strikes >= JOURNAL_STRIKE_LIMIT {
                    self.disabled = true;
                }
                Err(e)
            }
        }
    }

    /// Writes a snapshot body (see [`TenantSnapshot::to_json`])
    /// atomically and durably, then truncates the journal it absorbs.
    /// A crash between the two steps is safe: the truncated-away
    /// records are at or below the snapshot's `applied_seq` and
    /// recovery skips them as stale.
    ///
    /// # Errors
    ///
    /// The snapshot write or journal truncation failure.
    pub fn write_snapshot(&mut self, body: &str) -> io::Result<()> {
        fsio::atomic_write(&self.snapshot_path(), body.as_bytes(), true)?;
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.appended_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            tenant: "alice".into(),
            unit: format!("u{seq}"),
            source: format!("(defun f{seq} (x) (+ x {seq}))"),
        }
    }

    fn journal_of(seqs: &[u64]) -> Vec<u8> {
        seqs.iter().flat_map(|&s| encode_record(&rec(s))).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn clean_journals_scan_completely() {
        let bytes = journal_of(&[1, 2, 3]);
        let scan = scan_journal(&bytes, 0, |_| false);
        assert_eq!(scan.records.len(), 3);
        assert!(!scan.torn_tail && !scan.corrupt);
        assert_eq!(scan.stale, 0);
        assert_eq!(scan.records[2], rec(3));
        // An empty journal is clean, not torn.
        let empty = scan_journal(&[], 0, |_| false);
        assert_eq!(empty, JournalScan::default());
    }

    #[test]
    fn every_truncation_point_is_a_clean_prefix_or_a_torn_tail() {
        let bytes = journal_of(&[1, 2, 3]);
        let r1 = encode_record(&rec(1)).len();
        let r2 = r1 + encode_record(&rec(2)).len();
        for cut in 0..bytes.len() {
            let scan = scan_journal(&bytes[..cut], 0, |_| false);
            assert!(!scan.corrupt, "cut at {cut} misread as mid-log corruption");
            let whole = usize::from(cut >= r1) + usize::from(cut >= r2);
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(scan.torn_tail, cut != 0 && cut != r1 && cut != r2);
        }
    }

    #[test]
    fn bit_flips_are_torn_at_the_tail_and_corrupt_mid_log() {
        let bytes = journal_of(&[1, 2]);
        let r1 = encode_record(&rec(1)).len();
        // Flip a payload byte in the *last* record: torn tail, record 1
        // survives.
        let mut tail_flipped = bytes.clone();
        let last = bytes.len() - 4;
        tail_flipped[last] ^= 0x01;
        let scan = scan_journal(&tail_flipped, 0, |_| false);
        assert!(scan.torn_tail && !scan.corrupt);
        assert_eq!(scan.records.len(), 1);
        // Flip a payload byte in the *first* record: corruption.
        let mut mid_flipped = bytes;
        mid_flipped[r1 - 4] ^= 0x01;
        let scan = scan_journal(&mid_flipped, 0, |_| false);
        assert!(scan.corrupt && !scan.torn_tail);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn stale_and_duplicate_seqs_are_skipped() {
        let bytes = journal_of(&[1, 2, 2, 1, 3]);
        let scan = scan_journal(&bytes, 0, |_| false);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert_eq!(scan.stale, 2);
        // min_seq hides the snapshot-absorbed prefix.
        let scan = scan_journal(&bytes, 2, |_| false);
        assert_eq!(scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(), [3]);
        assert_eq!(scan.stale, 4);
    }

    #[test]
    fn corrupt_probe_injects_without_touching_bytes() {
        let bytes = journal_of(&[1, 2, 3]);
        let scan = scan_journal(&bytes, 0, |idx| idx == 1);
        assert!(scan.corrupt, "record 1 is mid-log");
        assert_eq!(scan.records.len(), 1);
        let scan = scan_journal(&bytes, 0, |idx| idx == 2);
        assert!(scan.torn_tail && !scan.corrupt, "record 2 is the tail");
        assert_eq!(scan.records.len(), 2);
        // The bytes themselves were never modified.
        let clean = scan_journal(&bytes, 0, |_| false);
        assert_eq!(clean.records.len(), 3);
    }

    #[test]
    fn snapshots_round_trip() {
        let mut st = TenantState {
            name: "alice".into(),
            fingerprint: 0xfeed_beef,
            specials: vec!["*a*".into(), "*b*".into()],
            globals: vec![("*a*".into(), "7".into())],
            sources: vec!["(defun f (x) x)".into()],
            incidents: 2,
            degraded: false,
            ..TenantState::default()
        };
        st.artifacts.insert(
            "f".into(),
            Artifact {
                name: "f".into(),
                backend: "s1".into(),
                fingerprint: 1,
                converted: "(lambda (x) x)".into(),
                optimized: "(lambda (x) x)".into(),
                transformations: 0,
                rules: Vec::new(),
                phase_spans: vec![("Code generation".into(), 1)],
                tn_map: Vec::new(),
                coercions: Vec::new(),
                assembly: "(RET)".into(),
                insns: 1,
                dossier: "d".into(),
                degraded: false,
            },
        );
        let snap = TenantSnapshot::of(&st, 5);
        let text = snap.to_json().to_string();
        let parsed = json::parse(&text).expect("well-formed");
        assert_eq!(TenantSnapshot::from_json(&parsed), Some(snap));
        // A truncated snapshot fails closed.
        assert!(json::parse(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn journal_appends_fsync_and_snapshot_truncates() {
        let state_dir = std::env::temp_dir().join(format!("s1lisp-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let mut j = TenantJournal::open(&state_dir, 0xabcd, None).unwrap();
        let (seq, bytes) = j.append("alice", "u1", "(defun f (x) x)").unwrap();
        assert_eq!(seq, 1);
        assert!(bytes > 8);
        j.append("alice", "u2", "(defun g (x) x)").unwrap();
        assert_eq!(j.pending(), 2);
        let on_disk = std::fs::read(j.journal_path()).unwrap();
        let scan = scan_journal(&on_disk, 0, |_| false);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].unit, "u2");
        j.write_snapshot("{}").unwrap();
        assert_eq!(j.pending(), 0);
        assert_eq!(std::fs::read(j.journal_path()).unwrap().len(), 0);
        assert_eq!(std::fs::read_to_string(j.snapshot_path()).unwrap(), "{}");
        // Sequence numbers keep climbing across snapshots.
        let (seq, _) = j.append("alice", "u3", "(defun h (x) x)").unwrap();
        assert_eq!(seq, 3);
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    #[test]
    fn doomed_appends_strike_the_journal_out() {
        let state_dir =
            std::env::temp_dir().join(format!("s1lisp-journal-doom-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let plan = FaultPlan::new(9).arm(FaultSite::JournalWrite, 1000);
        let mut j = TenantJournal::open(&state_dir, 0x77, Some(plan.clone())).unwrap();
        let mut failures = 0;
        for i in 0..32 {
            if j.append("bob", &format!("u{i}"), "(defun f (x) x)")
                .is_err()
            {
                failures += 1;
            }
            if j.disabled() {
                break;
            }
        }
        // Rate 1000 arms every key; whether each append survives depends
        // on its deterministic doomed-attempt count, and enough
        // exhausted appends in a row disable the journal.
        assert!(failures > 0, "seed 9 must doom at least one append");
        // Whatever did land is a clean, scannable prefix.
        let on_disk = std::fs::read(j.journal_path()).unwrap();
        let scan = scan_journal(&on_disk, 0, |_| false);
        assert!(!scan.corrupt && !scan.torn_tail);
        let _ = std::fs::remove_dir_all(&state_dir);
    }
}
