//! The compile server: a long-lived, multi-tenant daemon over the
//! [`s1lisp_driver::CompileService`].
//!
//! The paper's compiler is a batch program: read a file, compile it,
//! exit.  This crate keeps the same pipeline resident and serves it to
//! many concurrent clients, the way a Lisp machine's compiler lived
//! inside the running image:
//!
//! * **Transport** ([`proto`]) — length-prefixed JSON frames over
//!   either a TCP socket or stdin/stdout (for tests and CI), with
//!   pipelined, out-of-order responses matched by request id.
//! * **Tenancy** ([`tenant`]) — each connection authenticates to a
//!   tenant namespace with its own specials ordering, globals, and
//!   compiled functions; cache keys are salted by a tenant fingerprint
//!   so tenants never observe each other's artifacts.
//! * **Backpressure** ([`queue`]) — a bounded admission queue with
//!   deficit-round-robin fairness between tenants; when full, requests
//!   are *rejected with a retry hint*, never dropped silently.
//! * **Per-request SLOs** ([`server`]) — every response reports
//!   `{degraded, incident_kind, queue_wait_us, wall_us}`; tenants
//!   accrue an incident budget and are demoted to transformations-off
//!   compilation once it is exhausted.
//! * **Durability** ([`journal`]) — with `--state-dir`, every
//!   namespace mutation is fsynced to a per-tenant write-ahead journal
//!   before it is acknowledged, snapshots compact the journal, and a
//!   restarted server recovers every tenant — tolerating torn tails
//!   and quarantining mid-log corruption — before accepting requests.
//!
//! ```no_run
//! use s1lisp_server::{CompileServer, ServeClient, ServerConfig};
//!
//! let handle = CompileServer::new(ServerConfig::default()).serve_tcp(0).unwrap();
//! let mut client = ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).unwrap();
//! client.hello("alice", None).unwrap();
//! let resp = client.compile("u1", "(defun sq (x) (* x x))").unwrap();
//! assert!(resp.ok);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod proto;
pub mod queue;
pub mod server;
pub mod tenant;

pub use client::{RetryPolicy, ServeClient};
pub use journal::{scan_journal, JournalRecord, JournalScan, TenantJournal, TenantSnapshot};
pub use proto::{read_frame, write_frame, Body, Op, Request, Response, Slo, WireIncident};
pub use queue::{AdmissionQueue, QueueConfig, QueueFull};
pub use server::{CompileServer, ServerConfig, ServerHandle, Stopper};
pub use tenant::{tenant_fingerprint, TenantRegistry, TenantState};
