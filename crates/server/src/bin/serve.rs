//! The compile-server daemon.
//!
//! ```text
//! serve --stdio                         # frames on stdin/stdout (tests, CI)
//! serve --port 0                        # TCP on an ephemeral port
//! serve --port 7878 --workers 8 --jobs 4
//! serve --port 0 --tenant alice:s3cret --tenant bob:hunter2
//! serve --port 0 --state-dir /var/lib/s1lisp   # durable tenant state
//! serve --stdio --fault-seed 42 --fault-permille 200   # seeded fault storm
//! ```
//!
//! In TCP mode the bound address is announced on stderr as
//! `serve: listening on 127.0.0.1:PORT` (stderr so stdio-mode frames
//! own stdout unconditionally).  On shutdown the metrics registry is
//! rendered to stderr.
//!
//! With `--state-dir`, every tenant mutation is journaled before it is
//! acknowledged and tenants found under the directory are recovered
//! before the server listens; `--snapshot-every N` sets the journal
//! compaction cadence.
//!
//! SIGTERM and SIGINT drain gracefully in TCP mode: a self-pipe
//! signal handler wakes a monitor thread that routes through the same
//! shutdown path as a client `shutdown` request, so in-flight work
//! finishes, durable state is consistent, and the process exits 0.

use std::process::ExitCode;

use s1lisp_driver::FaultPlan;
use s1lisp_server::{CompileServer, QueueConfig, ServerConfig, Stopper};

fn usage() -> ! {
    eprintln!(
        "usage: serve (--stdio | --port N) [--workers N] [--jobs N] \
         [--queue-total N] [--queue-per-tenant N] [--quantum N] \
         [--retry-after-ms N] [--incident-budget N] [--run-fuel N] \
         [--state-dir DIR] [--snapshot-every N] \
         [--tenant name:token ...] [--fault-seed N --fault-permille N] [--guard]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("serve: {flag} wants a value");
        usage()
    })
}

/// Graceful-drain signal plumbing (unix only; no-op elsewhere).
///
/// The classic self-pipe trick, on std plus two libc externs: the
/// handler may only do async-signal-safe work, so it writes one byte
/// to a pipe and returns; a monitor thread blocks on the read end and
/// initiates the normal drain.  The pipe and stopper leak (the
/// handler outlives `main`'s scopes), which is exactly what a
/// process-lifetime resource should do.
#[cfg(unix)]
mod signals {
    use super::Stopper;
    use std::os::raw::{c_int, c_void};

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    static mut WAKE_FD: c_int = -1;

    extern "C" fn on_signal(_signum: c_int) {
        // Async-signal-safe: one write(2), ignore the result (if the
        // pipe is full a wakeup is already pending).
        unsafe {
            let byte = 0u8;
            let _ = write(WAKE_FD, std::ptr::addr_of!(byte).cast(), 1);
        }
    }

    /// Installs SIGTERM/SIGINT handlers that wake a monitor thread to
    /// stop the server through its normal drain path.
    pub fn install(stopper: Stopper) {
        let mut fds = [-1 as c_int; 2];
        let read_fd = unsafe {
            if pipe(fds.as_mut_ptr()) != 0 {
                return; // no pipe, no graceful drain — keep serving
            }
            WAKE_FD = fds[1];
            let handler = on_signal as *const () as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
            fds[0]
        };
        std::thread::Builder::new()
            .name("serve-signals".into())
            .spawn(move || {
                let mut byte = 0u8;
                loop {
                    let n = unsafe { read(read_fd, std::ptr::addr_of_mut!(byte).cast(), 1) };
                    if n == 1 {
                        eprintln!("serve: signal received, draining");
                        stopper.stop();
                        return;
                    }
                    if n == 0 {
                        return; // write end gone: process is tearing down
                    }
                    // n < 0: EINTR or similar — retry.
                }
            })
            .expect("spawn signal monitor");
    }
}

#[cfg(not(unix))]
mod signals {
    use super::Stopper;

    /// No signal plumbing off unix; shutdown comes from a client.
    pub fn install(_stopper: Stopper) {}
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut queue = QueueConfig::default();
    let mut stdio = false;
    let mut port: Option<u16> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_permille: u16 = 100;
    let mut allow: Vec<(String, String)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--port" => port = Some(parse(&mut args, "--port")),
            "--workers" => config.workers = parse(&mut args, "--workers"),
            "--jobs" => config.service.jobs = parse(&mut args, "--jobs"),
            "--queue-total" => queue.total = parse(&mut args, "--queue-total"),
            "--queue-per-tenant" => queue.per_tenant = parse(&mut args, "--queue-per-tenant"),
            "--quantum" => queue.quantum = parse(&mut args, "--quantum"),
            "--retry-after-ms" => config.retry_after_ms = parse(&mut args, "--retry-after-ms"),
            "--incident-budget" => config.incident_budget = parse(&mut args, "--incident-budget"),
            "--run-fuel" => config.run_fuel = parse(&mut args, "--run-fuel"),
            "--state-dir" => config.state_dir = Some(parse(&mut args, "--state-dir")),
            "--snapshot-every" => config.snapshot_every = parse(&mut args, "--snapshot-every"),
            "--guard" => config.service.guard = true,
            "--fault-seed" => fault_seed = Some(parse(&mut args, "--fault-seed")),
            "--fault-permille" => fault_permille = parse(&mut args, "--fault-permille"),
            "--tenant" => {
                let spec: String = parse(&mut args, "--tenant");
                match spec.split_once(':') {
                    Some((name, token)) => allow.push((name.to_string(), token.to_string())),
                    None => {
                        eprintln!("serve: --tenant wants name:token");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown flag {other}");
                usage();
            }
        }
    }
    if stdio == port.is_some() {
        eprintln!("serve: pick exactly one of --stdio and --port");
        usage();
    }
    if let Some(seed) = fault_seed {
        config.service.fault_plan = Some(FaultPlan::storm(seed, fault_permille));
    }
    if !allow.is_empty() {
        config.tenants = Some(allow);
    }
    config.queue = queue;

    let server = CompileServer::new(config);
    if stdio {
        match server.serve_stdio() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve: transport error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match server.serve_tcp(port.unwrap_or(0)) {
            Ok(handle) => {
                signals::install(handle.stopper());
                eprintln!("serve: listening on 127.0.0.1:{}", handle.port());
                // Blocks until a client sends `shutdown` (or a signal
                // drains us).
                eprintln!("{}", handle.join());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve: bind failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
