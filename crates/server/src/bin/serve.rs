//! The compile-server daemon.
//!
//! ```text
//! serve --stdio                         # frames on stdin/stdout (tests, CI)
//! serve --port 0                        # TCP on an ephemeral port
//! serve --port 7878 --workers 8 --jobs 4
//! serve --port 0 --tenant alice:s3cret --tenant bob:hunter2
//! serve --stdio --fault-seed 42 --fault-permille 200   # seeded fault storm
//! ```
//!
//! In TCP mode the bound address is announced on stderr as
//! `serve: listening on 127.0.0.1:PORT` (stderr so stdio-mode frames
//! own stdout unconditionally).  On shutdown the metrics registry is
//! rendered to stderr.

use std::process::ExitCode;

use s1lisp_driver::FaultPlan;
use s1lisp_server::{CompileServer, QueueConfig, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve (--stdio | --port N) [--workers N] [--jobs N] \
         [--queue-total N] [--queue-per-tenant N] [--quantum N] \
         [--retry-after-ms N] [--incident-budget N] [--run-fuel N] \
         [--tenant name:token ...] [--fault-seed N --fault-permille N] [--guard]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("serve: {flag} wants a value");
        usage()
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut queue = QueueConfig::default();
    let mut stdio = false;
    let mut port: Option<u16> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_permille: u16 = 100;
    let mut allow: Vec<(String, String)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--port" => port = Some(parse(&mut args, "--port")),
            "--workers" => config.workers = parse(&mut args, "--workers"),
            "--jobs" => config.service.jobs = parse(&mut args, "--jobs"),
            "--queue-total" => queue.total = parse(&mut args, "--queue-total"),
            "--queue-per-tenant" => queue.per_tenant = parse(&mut args, "--queue-per-tenant"),
            "--quantum" => queue.quantum = parse(&mut args, "--quantum"),
            "--retry-after-ms" => config.retry_after_ms = parse(&mut args, "--retry-after-ms"),
            "--incident-budget" => config.incident_budget = parse(&mut args, "--incident-budget"),
            "--run-fuel" => config.run_fuel = parse(&mut args, "--run-fuel"),
            "--guard" => config.service.guard = true,
            "--fault-seed" => fault_seed = Some(parse(&mut args, "--fault-seed")),
            "--fault-permille" => fault_permille = parse(&mut args, "--fault-permille"),
            "--tenant" => {
                let spec: String = parse(&mut args, "--tenant");
                match spec.split_once(':') {
                    Some((name, token)) => allow.push((name.to_string(), token.to_string())),
                    None => {
                        eprintln!("serve: --tenant wants name:token");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown flag {other}");
                usage();
            }
        }
    }
    if stdio == port.is_some() {
        eprintln!("serve: pick exactly one of --stdio and --port");
        usage();
    }
    if let Some(seed) = fault_seed {
        config.service.fault_plan = Some(FaultPlan::storm(seed, fault_permille));
    }
    if !allow.is_empty() {
        config.tenants = Some(allow);
    }
    config.queue = queue;

    let server = CompileServer::new(config);
    if stdio {
        match server.serve_stdio() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve: transport error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match server.serve_tcp(port.unwrap_or(0)) {
            Ok(handle) => {
                eprintln!("serve: listening on 127.0.0.1:{}", handle.port());
                // Blocks until a client sends `shutdown`.
                eprintln!("{}", handle.join());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve: bind failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
