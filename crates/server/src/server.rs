//! The daemon: transports, connection handling, the worker pool, and
//! request processing with per-request SLOs.
//!
//! # Threading model
//!
//! * One **acceptor** thread (TCP mode) owns the listener and spawns a
//!   thread per connection.
//! * **Connection** threads parse frames, answer `hello`/`shutdown`
//!   and backpressure rejections inline, and enqueue everything else.
//! * [`ServerConfig::workers`] **worker** threads drain the admission
//!   queue, serve requests through the shared
//!   [`CompileService`], and write responses straight to the owning
//!   connection (a mutex-guarded writer — responses may interleave
//!   across a connection's pipelined requests, matched by id).
//!
//! A worker panic is contained per request (`catch_unwind`): the client
//! gets an `ok = false` response with `incident_kind = "panic"` and the
//! worker returns to the queue — the fault-storm test hammers this.
//!
//! # SLO accounting
//!
//! `queue_wait_us` is enqueue → claim; `wall_us` is claim → response
//! built.  `degraded` is true when the tenant is demoted *or* any
//! artifact in the response came from a degraded recompile, so a client
//! can always tell whether it got full-strength optimization.
//! Incidents (compile faults, injected simulator traps) accrue against
//! the tenant's [`ServerConfig::incident_budget`]; once exhausted the
//! tenant compiles with transformations off until the server restarts.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use s1lisp::{Compiler, FaultSite, Value};
use s1lisp_driver::{
    unit_decls, BatchTuning, CompileService, IncidentKind, ServiceConfig, SourceUnit,
};
use s1lisp_reader::{read_str, Interner};
use s1lisp_trace::json;
use s1lisp_trace::metrics::{MetricsRegistry, TIME_BUCKETS_US};

use crate::journal::{scan_journal, TenantJournal, TenantSnapshot};
use crate::proto::{read_frame, write_frame, Body, Op, Request, Response, Slo, WireIncident};
use crate::queue::{AdmissionQueue, QueueConfig};
use crate::tenant::{tenant_fingerprint, TenantRegistry, TenantState};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// The compilation service every request serves through.  Its
    /// `fault_plan` also arms the server's `run`-time injection site.
    pub service: ServiceConfig,
    /// Admission-queue bounds and fairness quantum.
    pub queue: QueueConfig,
    /// The hint sent with a backpressure rejection.
    pub retry_after_ms: u64,
    /// Incidents a tenant may accrue before it is demoted to
    /// transformations-off compilation.
    pub incident_budget: u64,
    /// Instruction budget per `run` request, so a runaway program traps
    /// instead of pinning a worker.
    pub run_fuel: u64,
    /// Tenant allowlist as `(name, token)`; `None` is open enrollment
    /// (any tenant name, no token check).
    pub tenants: Option<Vec<(String, String)>>,
    /// Root of the durable state tree (`<state_dir>/<tenant_fp>/…`).
    /// `None` runs the server memory-only: no journals, no recovery,
    /// every response `durable: false`.
    pub state_dir: Option<PathBuf>,
    /// Journaled mutations between automatic snapshots (an explicit
    /// `sync` request snapshots immediately).  Clamped to at least 1.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            service: ServiceConfig::default(),
            queue: QueueConfig::default(),
            retry_after_ms: 25,
            incident_budget: 8,
            run_fuel: 100_000_000,
            tenants: None,
            state_dir: None,
            snapshot_every: 8,
        }
    }
}

/// A writer shared between the connection thread (inline responses)
/// and whichever worker serves the connection's queued requests.
type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

/// One queued request with everything a worker needs to serve it.
struct Work {
    req: Request,
    tenant: Arc<Mutex<TenantState>>,
    reply: Reply,
    enqueued: Instant,
}

struct Shared {
    config: ServerConfig,
    service: CompileService,
    registry: TenantRegistry,
    queue: AdmissionQueue<Work>,
    metrics: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
    /// The bound TCP port, for the shutdown self-connect that unblocks
    /// the acceptor; zero in stdio mode.
    port: AtomicU16,
}

/// The compile server, ready to serve one transport.
pub struct CompileServer {
    shared: Arc<Shared>,
}

impl CompileServer {
    /// Builds a server; serve it with [`CompileServer::serve_tcp`] or
    /// [`CompileServer::serve_stdio`].  With
    /// [`ServerConfig::state_dir`] set, every tenant found under it is
    /// recovered — snapshot loaded, journal tail replayed through the
    /// compiler, torn tails dropped, corrupted tenants quarantined —
    /// before this returns, so the server never serves a request
    /// against half-recovered state.
    pub fn new(config: ServerConfig) -> CompileServer {
        let service = CompileService::new(config.service.clone());
        let metrics = Arc::clone(service.metrics());
        let queue = AdmissionQueue::new(config.queue);
        let registry = TenantRegistry::new();
        if let Some(state_dir) = &config.state_dir {
            recover_tenants(state_dir, &config, &service, &registry, &metrics);
        }
        CompileServer {
            shared: Arc::new(Shared {
                config,
                service,
                registry,
                queue,
                metrics,
                shutdown: AtomicBool::new(false),
                port: AtomicU16::new(0),
            }),
        }
    }

    /// The state for a tenant, or `None` if it is unknown — recovery
    /// drills inspect recovered namespaces through this without (or
    /// before) serving a transport.
    pub fn tenant(&self, name: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.shared.registry.get(name)
    }

    /// Known (including just-recovered) tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// A point-in-time metrics snapshot (the `server.recovery.*`
    /// counters land here during [`CompileServer::new`]).
    pub fn metrics_snapshot(&self) -> s1lisp_trace::metrics::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Binds `127.0.0.1:port` (`0` for an ephemeral port), starts the
    /// worker pool and the acceptor, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_tcp(self, port: u16) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        self.shared.port.store(port, Ordering::SeqCst);
        let mut threads = spawn_workers(&self.shared);
        let shared = Arc::clone(&self.shared);
        threads.push(
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let shared = Arc::clone(&shared);
                        // Connection threads are detached: they exit on
                        // client EOF, and at process level on shutdown.
                        let _ = thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                let _ = handle_conn(&shared, stream);
                            });
                    }
                })
                .expect("spawn acceptor"),
        );
        Ok(ServerHandle {
            port,
            shared: self.shared,
            threads,
        })
    }

    /// Serves frames on stdin/stdout on the calling thread until EOF or
    /// a `shutdown` request, then drains the queue and joins the
    /// workers.  This is the hermetic transport tests and CI use: no
    /// ports, one process, deterministic teardown.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O failures (EOF is a clean return).
    pub fn serve_stdio(self) -> io::Result<()> {
        let workers = spawn_workers(&self.shared);
        let stdout: Reply = Arc::new(Mutex::new(Box::new(io::stdout())));
        let result = serve_frames(&self.shared, &mut io::stdin().lock(), &stdout);
        self.shared.queue.close();
        for t in workers {
            let _ = t.join();
        }
        result
    }
}

/// A running TCP server.
pub struct ServerHandle {
    port: u16,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// A cloneable handle that can stop a running server from any thread.
/// The `serve` binary's signal monitor holds one so SIGTERM/SIGINT
/// route through the same graceful drain as a `shutdown` request.
#[derive(Clone)]
pub struct Stopper {
    shared: Arc<Shared>,
}

impl Stopper {
    /// Stops admissions, unblocks the acceptor, and lets workers drain.
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }
}

impl ServerHandle {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A detached stop handle (see [`Stopper`]).
    pub fn stopper(&self) -> Stopper {
        Stopper {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The state for a tenant of the running server, or `None` if it
    /// is unknown.
    pub fn tenant(&self, name: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.shared.registry.get(name)
    }

    /// Initiates shutdown without a client: stops admissions, unblocks
    /// the acceptor, and lets workers drain.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Renders the server's metrics registry (service and server
    /// families together).
    pub fn render_metrics(&self) -> String {
        self.metrics_snapshot().render()
    }

    /// A point-in-time snapshot of the shared registry — the isolation
    /// tests read the cache counters off this to prove tenants never
    /// warm-hit each other's artifacts.
    pub fn metrics_snapshot(&self) -> s1lisp_trace::metrics::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Waits for the acceptor and workers to exit and returns the final
    /// rendered metrics.  Call [`ServerHandle::shutdown`] first (or
    /// have a client send `shutdown`) or this blocks forever.
    pub fn join(self) -> String {
        for t in self.threads {
            let _ = t.join();
        }
        self.shared.metrics.snapshot().render()
    }
}

fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    let port = shared.port.load(Ordering::SeqCst);
    if port != 0 {
        // Unblock the acceptor's accept(2); it re-checks the flag.
        let _ = TcpStream::connect(("127.0.0.1", port));
    }
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect()
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let reply: Reply = Arc::new(Mutex::new(Box::new(stream.try_clone()?)));
    let mut reader = stream;
    serve_frames(shared, &mut reader, &reply)
}

fn send(reply: &Reply, resp: &Response) {
    let payload = resp.to_json().to_string();
    let mut w = reply.lock().expect("reply writer poisoned");
    let _ = write_frame(&mut *w, payload.as_bytes());
}

/// A minimal response for inline paths (hello, rejections, protocol
/// errors): no queue wait, no wall time, no body.
fn inline_response(id: u64, op: &str, tenant: &str, result: Result<(), String>) -> Response {
    Response {
        id,
        op: op.to_string(),
        tenant: tenant.to_string(),
        ok: result.is_ok(),
        error: result.err(),
        retry_after_ms: 0,
        durable: false,
        slo: Slo::default(),
        body: Body::None,
    }
}

/// The per-connection frame loop, shared by both transports.
fn serve_frames(shared: &Arc<Shared>, r: &mut impl Read, reply: &Reply) -> io::Result<()> {
    let mut session: Option<(String, Arc<Mutex<TenantState>>)> = None;
    while let Some(frame) = read_frame(r)? {
        let req = String::from_utf8(frame)
            .map_err(|e| e.to_string())
            .and_then(|text| json::parse(&text))
            .and_then(|j| Request::from_json(&j));
        let req = match req {
            Ok(req) => req,
            Err(e) => {
                send(reply, &inline_response(0, "error", "", Err(e)));
                continue;
            }
        };
        match &req.op {
            Op::Hello { tenant, token } => {
                let verdict = authenticate(&shared.config, tenant, token.as_deref());
                if verdict.is_ok() {
                    let state = shared.registry.get_or_create(tenant);
                    attach_journal(shared, &state);
                    session = Some((tenant.clone(), state));
                }
                send(reply, &inline_response(req.id, "hello", tenant, verdict));
            }
            Op::Shutdown => {
                let tenant = session.as_ref().map(|(n, _)| n.as_str()).unwrap_or("");
                send(reply, &inline_response(req.id, "shutdown", tenant, Ok(())));
                initiate_shutdown(shared);
                break;
            }
            _ => {
                let Some((name, state)) = &session else {
                    send(
                        reply,
                        &inline_response(
                            req.id,
                            req.op.as_str(),
                            "",
                            Err("say hello first".to_string()),
                        ),
                    );
                    continue;
                };
                state.lock().expect("tenant poisoned").requests += 1;
                let (id, op_label) = (req.id, req.op.as_str());
                let cost = request_cost(&req.op);
                let work = Work {
                    req,
                    tenant: Arc::clone(state),
                    reply: Arc::clone(reply),
                    enqueued: Instant::now(),
                };
                if shared.queue.submit(name, cost, work).is_err() {
                    shared.metrics.counter("server.rejected").inc();
                    let mut rejection =
                        inline_response(id, op_label, name, Err("queue full".to_string()));
                    rejection.retry_after_ms = shared.config.retry_after_ms.max(1);
                    send(reply, &rejection);
                }
                shared
                    .metrics
                    .gauge("server.queue_depth")
                    .set(shared.queue.depth() as i64);
            }
        }
    }
    Ok(())
}

/// Fairness cost: compiles scale with source size so one tenant's big
/// units cannot starve another's small ones; everything else costs 1.
fn request_cost(op: &Op) -> u64 {
    match op {
        Op::Compile { source, .. } => 1 + source.len() as u64 / 512,
        _ => 1,
    }
}

fn authenticate(config: &ServerConfig, tenant: &str, token: Option<&str>) -> Result<(), String> {
    if tenant.is_empty() {
        return Err("tenant name must be nonempty".to_string());
    }
    match &config.tenants {
        None => Ok(()),
        Some(allow) => {
            let known = allow.iter().find(|(name, _)| name == tenant);
            match known {
                Some((_, expected)) if token == Some(expected.as_str()) => Ok(()),
                _ => Err(format!("authentication failed for tenant {tenant}")),
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((tenant_name, work)) = shared.queue.next() {
        let queue_wait_us = elapsed_us(work.enqueued);
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| process(shared, &work)));
        let mut resp = outcome.unwrap_or_else(|payload| {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            accrue_incident(shared, &work.tenant, 1);
            Response {
                id: work.req.id,
                op: work.req.op.as_str().to_string(),
                tenant: tenant_name.clone(),
                ok: false,
                error: Some(format!("request panicked: {detail}")),
                retry_after_ms: 0,
                durable: false,
                slo: Slo {
                    incident_kind: Some("panic".to_string()),
                    ..Slo::default()
                },
                body: Body::None,
            }
        });
        resp.slo.queue_wait_us = queue_wait_us;
        resp.slo.wall_us = elapsed_us(start);
        send(&work.reply, &resp);
        shared.queue.done(&tenant_name);
        record_metrics(shared, &tenant_name, &resp);
    }
}

fn record_metrics(shared: &Shared, tenant: &str, resp: &Response) {
    let m = &shared.metrics;
    m.counter("server.requests").inc();
    m.counter(&format!("server.requests.{}", resp.op)).inc();
    if !resp.ok {
        m.counter("server.errors").inc();
    }
    if resp.slo.degraded {
        m.counter("server.degraded_responses").inc();
    }
    if resp.slo.incident_kind.is_some() {
        m.counter("server.incidents").inc();
    }
    m.histogram("server.queue_wait_us", TIME_BUCKETS_US)
        .observe(resp.slo.queue_wait_us);
    m.histogram("server.wall_us", TIME_BUCKETS_US)
        .observe(resp.slo.wall_us);
    m.scoped(&format!("server.tenant.{tenant}"))
        .counter("requests")
        .inc();
    m.gauge("server.queue_depth")
        .set(shared.queue.depth() as i64);
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Bumps the tenant's incident ledger and demotes it once the budget
/// is exhausted.  Returns whether the tenant is (now) degraded.
fn accrue_incident(shared: &Shared, tenant: &Arc<Mutex<TenantState>>, n: u64) -> bool {
    let mut st = tenant.lock().expect("tenant poisoned");
    st.incidents += n;
    if st.incidents >= shared.config.incident_budget {
        st.degraded = true;
    }
    st.degraded
}

/// Serves one queued request.  SLO timings are filled in by the caller.
fn process(shared: &Shared, work: &Work) -> Response {
    let mut resp = Response {
        id: work.req.id,
        op: work.req.op.as_str().to_string(),
        tenant: String::new(),
        ok: true,
        error: None,
        retry_after_ms: 0,
        durable: false,
        slo: Slo::default(),
        body: Body::None,
    };
    // A quarantined-at-recovery tenant surfaces the loss on its first
    // response after the restart.
    let pending_incident = work
        .tenant
        .lock()
        .expect("tenant poisoned")
        .pending_incident
        .take();
    match &work.req.op {
        Op::Ping => {
            let st = work.tenant.lock().expect("tenant poisoned");
            resp.tenant = st.name.clone();
            resp.slo.degraded = st.degraded;
        }
        Op::Sync => {
            let mut st = work.tenant.lock().expect("tenant poisoned");
            resp.tenant = st.name.clone();
            resp.slo.degraded = st.degraded;
            resp.durable = snapshot_tenant(&shared.metrics, &mut st);
        }
        Op::Compile { unit, source } => serve_compile(shared, work, unit, source, &mut resp),
        Op::Run { entry, args } => serve_run(shared, work, entry, args, &mut resp),
        Op::Explain { name } => {
            let st = work.tenant.lock().expect("tenant poisoned");
            resp.tenant = st.name.clone();
            resp.slo.degraded = st.degraded;
            match st.artifacts.get(name) {
                Some(a) => {
                    resp.body = Body::Explain {
                        dossier: a.dossier.clone(),
                    }
                }
                None => {
                    resp.ok = false;
                    resp.error = Some(format!("unknown function {name}"));
                }
            }
        }
        Op::Hello { .. } | Op::Shutdown => {
            resp.ok = false;
            resp.error = Some("connection-level op reached the queue".to_string());
        }
    }
    if resp.slo.incident_kind.is_none() {
        resp.slo.incident_kind = pending_incident;
    }
    resp
}

fn serve_compile(shared: &Shared, work: &Work, unit: &str, source: &str, resp: &mut Response) {
    // Snapshot the namespace under the lock, but compile outside it:
    // the batch service may fan out to its own workers, and a tenant's
    // single-in-flight guarantee already serializes its requests.
    let (tenant_name, specials, tuning) = {
        let st = work.tenant.lock().expect("tenant poisoned");
        (
            st.name.clone(),
            st.specials.clone(),
            BatchTuning {
                key_salt: st.fingerprint,
                transformations_off: st.degraded,
            },
        )
    };
    resp.tenant = tenant_name;
    // The tenant's accumulated specials precede the unit, so free
    // references in this unit see every `proclaim` the tenant has made
    // — the namespace semantics a resident compiler would give it.  A
    // fresh tenant gets no prefix: its artifacts are byte-identical to
    // a plain `compile_batch` of the same unit (pinned by test).
    let full_source = if specials.is_empty() {
        source.to_string()
    } else {
        format!(
            "(proclaim (quote (special {})))\n{source}",
            specials.join(" ")
        )
    };
    let units = [SourceUnit::new(unit, full_source)];
    let batch = shared.service.compile_batch_with(&units, tuning);
    let incidents: Vec<WireIncident> = batch
        .incidents
        .iter()
        .map(|i| WireIncident {
            function: i.function.clone(),
            kind: i.kind.as_str().to_string(),
            recovered: i.recovered,
        })
        .collect();
    let any_degraded_artifact = batch.artifacts.iter().any(|a| a.degraded);
    let (tenant_degraded, durable) = {
        let mut st = work.tenant.lock().expect("tenant poisoned");
        // Absorb the unit's own declarations (from the *raw* source:
        // the prefix is the tenant's existing state, not news).
        if let Ok((specials, globals)) = unit_decls(source) {
            for s in specials {
                st.absorb_special(&s);
            }
            st.globals.extend(globals);
        }
        let mut durable = false;
        if batch.failures.is_empty() {
            st.sources.push(source.to_string());
            // The mutation's journal record is fsynced here, before the
            // worker can frame the success response — the heart of the
            // durability contract.
            durable = journal_mutation(shared, &mut st, unit, source);
        }
        for a in &batch.artifacts {
            st.artifacts.insert(a.name.clone(), a.clone());
        }
        st.incidents += incidents.len() as u64;
        if st.incidents >= shared.config.incident_budget {
            st.degraded = true;
        }
        (st.degraded, durable)
    };
    resp.durable = durable;
    resp.ok = batch.failures.is_empty();
    resp.error = batch
        .failures
        .first()
        .map(|(scope, e)| format!("{scope}: {e}"));
    resp.slo.degraded = tenant_degraded || tuning.transformations_off || any_degraded_artifact;
    resp.slo.incident_kind = incidents.first().map(|i| i.kind.clone());
    resp.body = Body::Compile {
        artifacts: batch.artifacts,
        incidents,
        failures: batch.failures,
    };
}

fn serve_run(shared: &Shared, work: &Work, entry: &str, args: &[String], resp: &mut Response) {
    let st = work.tenant.lock().expect("tenant poisoned");
    resp.tenant = st.name.clone();
    resp.slo.degraded = st.degraded;
    let sources: Vec<String> = st.sources.clone();
    drop(st);
    // The seeded fault plan's simulator-trap site fires here too, so a
    // fault storm exercises the run path; the trap is contained to this
    // request and accrues against the tenant's budget like any other
    // incident.
    if let Some(plan) = &shared.config.service.fault_plan {
        if plan.fires(FaultSite::SimTrap, entry) {
            resp.slo.degraded = accrue_incident(shared, &work.tenant, 1);
            resp.slo.incident_kind = Some("sim-trap".to_string());
            resp.body = Body::Run {
                value: "trap: injected simulator fault".to_string(),
            };
            return;
        }
    }
    // Rebuild the tenant's world in a fresh compiler (a `Compiler`
    // holds `Rc`s and cannot live across worker threads): replaying
    // the compiled sources in order reconstructs specials, globals,
    // and functions exactly.
    let cfg = &shared.config.service;
    let mut c = Compiler::new();
    c.opt_options = cfg.opt_options.clone();
    c.cse = cfg.cse;
    c.codegen_options = cfg.codegen_options.clone();
    c.tension_branches = cfg.tension_branches;
    for src in &sources {
        if let Err(e) = c.compile_str(src) {
            resp.ok = false;
            resp.error = Some(format!("tenant replay failed: {e}"));
            return;
        }
    }
    let mut interner = Interner::new();
    let mut values = Vec::new();
    for a in args {
        match read_str(a, &mut interner) {
            Ok(d) => values.push(Value::from_datum(&d)),
            Err(e) => {
                resp.ok = false;
                resp.error = Some(format!("argument {a}: {e}"));
                return;
            }
        }
    }
    let mut m = c.machine();
    m.fuel_per_run = shared.config.run_fuel;
    let value = match m.run(entry, &values) {
        Ok(v) => v.to_string(),
        Err(t) => format!("trap: {t}"),
    };
    resp.body = Body::Run { value };
}

/// Gives a tenant its journal on first contact (recovered tenants
/// already carry one).  A fresh tenant immediately writes an initial
/// snapshot so its state directory is self-describing from birth.
fn attach_journal(shared: &Shared, tenant: &Arc<Mutex<TenantState>>) {
    let Some(state_dir) = &shared.config.state_dir else {
        return;
    };
    let mut st = tenant.lock().expect("tenant poisoned");
    if st.journal.is_some() {
        return;
    }
    let plan = shared.config.service.fault_plan.clone();
    match TenantJournal::open(state_dir, st.fingerprint, plan) {
        Ok(journal) => {
            let fresh = !journal.snapshot_path().exists();
            st.journal = Some(journal);
            if fresh {
                snapshot_tenant(&shared.metrics, &mut st);
            }
        }
        Err(_) => {
            shared.metrics.counter("server.journal.open_errors").inc();
        }
    }
}

/// Appends one acknowledged mutation to the tenant's journal — fsynced
/// before the caller can frame its success response — and takes a
/// periodic snapshot.  Returns whether the mutation reached stable
/// storage (`false` on memory-only servers and after an exhausted
/// append: the in-memory serve still succeeded, just non-durably).
fn journal_mutation(shared: &Shared, st: &mut TenantState, unit: &str, source: &str) -> bool {
    let name = st.name.clone();
    let appended = {
        let Some(journal) = st.journal.as_mut() else {
            return false;
        };
        if journal.disabled() {
            return false;
        }
        let start = Instant::now();
        match journal.append(&name, unit, source) {
            Ok((_seq, bytes)) => {
                let m = &shared.metrics;
                m.counter("server.journal.appends").inc();
                m.counter("server.journal.bytes").add(bytes as u64);
                m.histogram("server.journal.append_us", TIME_BUCKETS_US)
                    .observe(elapsed_us(start));
                true
            }
            Err(_) => {
                shared.metrics.counter("server.journal.io_errors").inc();
                false
            }
        }
    };
    let due = st
        .journal
        .as_ref()
        .is_some_and(|j| j.pending() >= shared.config.snapshot_every.max(1));
    if appended && due {
        snapshot_tenant(&shared.metrics, st);
    }
    appended
}

/// Writes the tenant's current state as a durable snapshot and
/// truncates the journal it absorbs.  Returns success (`false` without
/// a journal, with a struck-out one, or on a failed write).
fn snapshot_tenant(metrics: &MetricsRegistry, st: &mut TenantState) -> bool {
    let Some(journal) = st.journal.as_ref() else {
        return false;
    };
    if journal.disabled() {
        return false;
    }
    let body = TenantSnapshot::of(st, journal.next_seq() - 1)
        .to_json()
        .to_string();
    let journal = st.journal.as_mut().expect("present above");
    match journal.write_snapshot(&body) {
        Ok(()) => {
            metrics.counter("server.journal.snapshots").inc();
            true
        }
        Err(_) => {
            metrics.counter("server.journal.snapshot_errors").inc();
            false
        }
    }
}

/// Recovers every tenant directory under `state_dir`, in sorted order
/// so recovery work (and its metrics) replays deterministically.
fn recover_tenants(
    state_dir: &Path,
    config: &ServerConfig,
    service: &CompileService,
    registry: &TenantRegistry,
    metrics: &MetricsRegistry,
) {
    let _ = std::fs::create_dir_all(state_dir);
    let Ok(listing) = std::fs::read_dir(state_dir) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = listing
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        recover_one(&dir, state_dir, config, service, registry, metrics);
    }
}

/// Recovers one tenant directory: snapshot load, journal-tail replay
/// through the same batch service a live `compile` uses (so recovered
/// artifacts are byte-identical), then a compacting snapshot.  Torn
/// tails are dropped and counted; mid-log corruption or an unreadable
/// snapshot quarantines the tenant.
fn recover_one(
    dir: &Path,
    state_dir: &Path,
    config: &ServerConfig,
    service: &CompileService,
    registry: &TenantRegistry,
    metrics: &MetricsRegistry,
) {
    let plan = config.service.fault_plan.clone();
    let snapshot = std::fs::read_to_string(dir.join("snapshot.json"))
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|j| TenantSnapshot::from_json(&j));
    let journal_bytes = std::fs::read(dir.join("journal.log")).unwrap_or_default();
    let Some(snap) = snapshot else {
        // Unreadable or missing snapshot.  Journal records carry the
        // tenant name; with one we can quarantine to a fresh namespace,
        // without one the directory is inert and left untouched.
        let scan = scan_journal(&journal_bytes, 0, |_| false);
        match scan.records.first().map(|r| r.tenant.clone()) {
            Some(name) => quarantine_tenant(dir, &name, config, registry, metrics),
            None => {
                metrics.counter("server.recovery.skipped").inc();
            }
        }
        return;
    };
    let fp = snap.fingerprint;
    let scan = scan_journal(&journal_bytes, snap.applied_seq, |idx| {
        plan.as_ref()
            .is_some_and(|p| p.fires(FaultSite::JournalCorrupt, &format!("{fp:016x}:{idx}")))
    });
    if scan.corrupt {
        metrics.counter("server.recovery.corrupt_journals").inc();
        quarantine_tenant(dir, &snap.tenant, config, registry, metrics);
        return;
    }
    if scan.torn_tail {
        metrics.counter("server.recovery.torn_tails").inc();
    }
    metrics
        .counter("server.recovery.stale_records")
        .add(scan.stale);
    let mut st = TenantState {
        name: snap.tenant.clone(),
        fingerprint: fp,
        specials: snap.specials.clone(),
        globals: snap.globals.clone(),
        sources: snap.sources.clone(),
        incidents: snap.incidents,
        degraded: snap.degraded,
        ..TenantState::default()
    };
    for a in &snap.artifacts {
        st.artifacts.insert(a.name.clone(), a.clone());
    }
    // Replay the tail exactly as serve_compile would have: specials
    // prefix from the state *before* this record, then absorb its
    // declarations.
    let mut last_seq = snap.applied_seq;
    for rec in &scan.records {
        last_seq = rec.seq;
        let full_source = if st.specials.is_empty() {
            rec.source.clone()
        } else {
            format!(
                "(proclaim (quote (special {})))\n{}",
                st.specials.join(" "),
                rec.source
            )
        };
        let units = [SourceUnit::new(&rec.unit, full_source)];
        let tuning = BatchTuning {
            key_salt: fp,
            transformations_off: st.degraded,
        };
        let batch = service.compile_batch_with(&units, tuning);
        if let Ok((specials, globals)) = unit_decls(&rec.source) {
            for s in specials {
                st.absorb_special(&s);
            }
            st.globals.extend(globals);
        }
        if !batch.failures.is_empty() {
            // The record was acknowledged, so this should not happen
            // outside a fault storm; count it and keep the rest.
            metrics.counter("server.recovery.replay_failures").inc();
            continue;
        }
        st.sources.push(rec.source.clone());
        for a in batch.artifacts {
            st.artifacts.insert(a.name.clone(), a);
        }
        st.incidents += batch.incidents.len() as u64;
        if st.incidents >= config.incident_budget {
            st.degraded = true;
        }
        metrics.counter("server.recovery.replayed_records").inc();
    }
    // Re-attach the journal and compact what was just replayed into a
    // fresh snapshot, so the next crash recovers from here.
    match TenantJournal::open(state_dir, fp, plan) {
        Ok(mut journal) => {
            journal.set_next_seq(last_seq + 1);
            st.journal = Some(journal);
            snapshot_tenant(metrics, &mut st);
        }
        Err(_) => {
            metrics.counter("server.journal.open_errors").inc();
        }
    }
    metrics.counter("server.recovery.tenants").inc();
    registry.install(st);
}

/// Quarantines a tenant whose durable state cannot be trusted: the
/// evidence files are renamed aside (never deleted), the tenant
/// restarts as a fresh namespace with one `recovery` incident on its
/// ledger, and its next response carries `incident_kind = "recovery"`.
fn quarantine_tenant(
    dir: &Path,
    name: &str,
    config: &ServerConfig,
    registry: &TenantRegistry,
    metrics: &MetricsRegistry,
) {
    for file in ["journal.log", "snapshot.json"] {
        let src = dir.join(file);
        if !src.exists() {
            continue;
        }
        for n in 0u32.. {
            let dst = dir.join(format!("{file}.quarantined-{n}"));
            if !dst.exists() {
                let _ = std::fs::rename(&src, &dst);
                break;
            }
        }
    }
    let mut st = TenantState {
        name: name.to_string(),
        fingerprint: tenant_fingerprint(name),
        incidents: 1,
        pending_incident: Some(IncidentKind::Recovery.as_str().to_string()),
        ..TenantState::default()
    };
    if let Some(state_dir) = dir.parent() {
        let plan = config.service.fault_plan.clone();
        if let Ok(journal) = TenantJournal::open(state_dir, st.fingerprint, plan) {
            st.journal = Some(journal);
            snapshot_tenant(metrics, &mut st);
        }
    }
    metrics.counter("server.recovery.quarantined").inc();
    metrics.counter("server.recovery.tenants").inc();
    registry.install(st);
}
