//! The wire protocol: length-prefixed JSON frames, and the request /
//! response vocabulary both transports (TCP and stdio) speak.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON.  Requests carry a client-chosen `id`; responses
//! echo it, and because the server dispatches requests to a worker pool
//! they may come back **out of order** — pipelining clients match
//! responses to requests by id, never by arrival position.
//!
//! Every response — success, failure, or backpressure rejection —
//! carries the same fixed surface: `ok`, `error`, `retry_after_ms`, and
//! the per-request SLO block `{degraded, incident_kind, queue_wait_us,
//! wall_us}`.  There is no response without an SLO verdict.

use std::io::{self, Read, Write};

use s1lisp::Artifact;
use s1lisp_trace::json::Json;

/// Refuse frames above this size (16 MiB): a corrupt length prefix must
/// not look like an allocation request.
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("bounded above");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.  `Ok(None)` is clean end-of-stream
/// (EOF exactly at a frame boundary); EOF mid-frame is an error.
///
/// # Errors
///
/// Propagates I/O errors; refuses frames above [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What a request asks the server to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Bind this connection to a tenant (must be the first request).
    Hello {
        /// The tenant namespace to join.
        tenant: String,
        /// Shared secret, checked against the server's allowlist when
        /// one is configured; ignored under open enrollment.
        token: Option<String>,
    },
    /// Compile a unit of top-level forms into the tenant's namespace.
    Compile {
        /// A label for reports (a file name, a request tag, …).
        unit: String,
        /// The top-level forms (`defun`/`defvar`/`proclaim`).
        source: String,
    },
    /// Call a function the tenant has compiled, with printed-datum
    /// arguments (`"3"`, `"-1.5"`, `"(1 2)"`).
    Run {
        /// The function to call.
        entry: String,
        /// Printed-datum arguments.
        args: Vec<String>,
    },
    /// Fetch the compilation dossier of a tenant function.
    Explain {
        /// The function name.
        name: String,
    },
    /// Force a durable snapshot of the tenant's state right now
    /// (normally snapshots happen every `snapshot_every` journaled
    /// mutations).  The response's `durable` flag reports whether the
    /// snapshot reached stable storage; on a server without a state
    /// dir it is simply `false`.
    Sync,
    /// Liveness probe; serves through the queue like any request.
    Ping,
    /// Stop the server: drain in-flight requests, then exit.
    Shutdown,
}

impl Op {
    /// Lower-case label for dispatch, responses, and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            Op::Hello { .. } => "hello",
            Op::Compile { .. } => "compile",
            Op::Run { .. } => "run",
            Op::Explain { .. } => "explain",
            Op::Sync => "sync",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Request {
    /// The wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::uint(self.id)),
            ("op", Json::str(self.op.as_str())),
        ];
        match &self.op {
            Op::Hello { tenant, token } => {
                fields.push(("tenant", Json::str(tenant)));
                fields.push(("token", token.as_ref().map_or(Json::Null, Json::str)));
            }
            Op::Compile { unit, source } => {
                fields.push(("unit", Json::str(unit)));
                fields.push(("source", Json::str(source)));
            }
            Op::Run { entry, args } => {
                fields.push(("entry", Json::str(entry)));
                fields.push(("args", Json::Arr(args.iter().map(Json::str).collect())));
            }
            Op::Explain { name } => fields.push(("name", Json::str(name))),
            Op::Sync | Op::Ping | Op::Shutdown => {}
        }
        obj(fields)
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let id = j
            .get("id")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or("request wants an integer id")?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request wants an op string")?;
        let s = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{op} wants a {key} string"))
        };
        let op = match op {
            "hello" => Op::Hello {
                tenant: s("tenant")?,
                token: j.get("token").and_then(Json::as_str).map(str::to_string),
            },
            "compile" => Op::Compile {
                unit: s("unit")?,
                source: s("source")?,
            },
            "run" => Op::Run {
                entry: s("entry")?,
                args: j
                    .get("args")
                    .and_then(Json::as_arr)
                    .ok_or("run wants an args array")?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "run args must be printed-datum strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "explain" => Op::Explain { name: s("name")? },
            "sync" => Op::Sync,
            "ping" => Op::Ping,
            "shutdown" => Op::Shutdown,
            other => return Err(format!("unknown op {other}")),
        };
        Ok(Request { id, op })
    }
}

/// The per-request service-level verdict every response carries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Slo {
    /// True when the tenant is in degraded mode (incident budget
    /// exhausted — transformations off) or any artifact in the response
    /// came from a degraded recompile.
    pub degraded: bool,
    /// The first incident this request accrued (`panic`, `timeout`,
    /// `guard`, `miscompile`, `sim-trap`), or `None` for a clean serve.
    pub incident_kind: Option<String>,
    /// Time the request sat in the admission queue, in microseconds.
    pub queue_wait_us: u64,
    /// Time a worker spent serving it, in microseconds.
    pub wall_us: u64,
}

impl Slo {
    fn to_json(&self) -> Json {
        obj(vec![
            ("degraded", Json::Bool(self.degraded)),
            (
                "incident_kind",
                self.incident_kind.as_ref().map_or(Json::Null, Json::str),
            ),
            ("queue_wait_us", Json::uint(self.queue_wait_us)),
            ("wall_us", Json::uint(self.wall_us)),
        ])
    }

    fn from_json(j: &Json) -> Option<Slo> {
        let n = |key: &str| u64::try_from(j.get(key)?.as_int()?).ok();
        Some(Slo {
            degraded: j.get("degraded")?.as_bool()?,
            incident_kind: j
                .get("incident_kind")
                .and_then(Json::as_str)
                .map(str::to_string),
            queue_wait_us: n("queue_wait_us")?,
            wall_us: n("wall_us")?,
        })
    }
}

/// One compile incident as surfaced to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireIncident {
    /// The function whose compilation faulted.
    pub function: String,
    /// Panic, timeout, guard violation, or oracle mismatch.
    pub kind: String,
    /// True when the degraded recompile salvaged an artifact.
    pub recovered: bool,
}

/// The op-specific payload of a response.
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// `hello`, `ping`, `shutdown`, and every rejection.
    None,
    /// A served `compile`.
    Compile {
        /// Artifacts in source order, exactly as
        /// [`CompileService::compile_batch`](s1lisp_driver::CompileService::compile_batch)
        /// would produce them for the same unit (pinned by test).
        artifacts: Vec<Artifact>,
        /// Contained faults this request accrued.
        incidents: Vec<WireIncident>,
        /// Failures as `(scope, message)`.
        failures: Vec<(String, String)>,
    },
    /// A served `run`: the printed outcome (a value, or `trap: …`).
    Run {
        /// Printed value or trap.
        value: String,
    },
    /// A served `explain`.
    Explain {
        /// The rendered dossier.
        dossier: String,
    },
}

/// One response frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// The request's op label (`"compile"`, …).
    pub op: String,
    /// The tenant served.
    pub tenant: String,
    /// False on errors and rejections.
    pub ok: bool,
    /// The error description when `ok` is false.
    pub error: Option<String>,
    /// Nonzero only on a backpressure rejection: retry no sooner than
    /// this many milliseconds from now.  A rejection is a first-class
    /// response — the queue never drops a request silently.
    pub retry_after_ms: u64,
    /// True when the request's namespace mutation (or an explicit
    /// `sync`) reached stable storage before this response was framed.
    /// Always false on a server running without `--state-dir`, on
    /// non-mutating ops, and when the journal append failed (the
    /// in-memory serve still succeeded).
    pub durable: bool,
    /// The per-request SLO verdict.
    pub slo: Slo,
    /// The op-specific payload.
    pub body: Body,
}

impl Response {
    /// The wire form.  Fixed keys only — `compile`, `value`, and
    /// `dossier` are always present (null when inapplicable) so the
    /// response schema is one shape per op, pinned by the serve-record
    /// golden.
    pub fn to_json(&self) -> Json {
        let (compile, value, dossier) = match &self.body {
            Body::None => (Json::Null, Json::Null, Json::Null),
            Body::Compile {
                artifacts,
                incidents,
                failures,
            } => {
                let artifacts = artifacts.iter().map(Artifact::to_json).collect();
                let incidents = incidents
                    .iter()
                    .map(|i| {
                        obj(vec![
                            ("function", Json::str(&i.function)),
                            ("kind", Json::str(&i.kind)),
                            ("recovered", Json::Bool(i.recovered)),
                        ])
                    })
                    .collect();
                let failures = failures
                    .iter()
                    .map(|(scope, error)| {
                        obj(vec![
                            ("scope", Json::str(scope)),
                            ("error", Json::str(error)),
                        ])
                    })
                    .collect();
                (
                    obj(vec![
                        ("artifacts", Json::Arr(artifacts)),
                        ("incidents", Json::Arr(incidents)),
                        ("failures", Json::Arr(failures)),
                    ]),
                    Json::Null,
                    Json::Null,
                )
            }
            Body::Run { value } => (Json::Null, Json::str(value), Json::Null),
            Body::Explain { dossier } => (Json::Null, Json::Null, Json::str(dossier)),
        };
        obj(vec![
            ("id", Json::uint(self.id)),
            ("op", Json::str(&self.op)),
            ("tenant", Json::str(&self.tenant)),
            ("ok", Json::Bool(self.ok)),
            ("error", self.error.as_ref().map_or(Json::Null, Json::str)),
            ("retry_after_ms", Json::uint(self.retry_after_ms)),
            ("durable", Json::Bool(self.durable)),
            ("slo", self.slo.to_json()),
            ("compile", compile),
            ("value", value),
            ("dossier", dossier),
        ])
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Response, String> {
        let id = j
            .get("id")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or("response wants an integer id")?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or("response wants an op")?
            .to_string();
        let body = if let Some(c) = j.get("compile").filter(|c| **c != Json::Null) {
            let artifacts = c
                .get("artifacts")
                .and_then(Json::as_arr)
                .ok_or("compile body wants artifacts")?
                .iter()
                .map(|a| Artifact::from_json(a).ok_or("malformed artifact"))
                .collect::<Result<Vec<_>, _>>()?;
            let incidents = c
                .get("incidents")
                .and_then(Json::as_arr)
                .ok_or("compile body wants incidents")?
                .iter()
                .map(|i| {
                    Some(WireIncident {
                        function: i.get("function")?.as_str()?.to_string(),
                        kind: i.get("kind")?.as_str()?.to_string(),
                        recovered: i.get("recovered")?.as_bool()?,
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed incident")?;
            let failures = c
                .get("failures")
                .and_then(Json::as_arr)
                .ok_or("compile body wants failures")?
                .iter()
                .map(|f| {
                    Some((
                        f.get("scope")?.as_str()?.to_string(),
                        f.get("error")?.as_str()?.to_string(),
                    ))
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed failure")?;
            Body::Compile {
                artifacts,
                incidents,
                failures,
            }
        } else if let Some(v) = j.get("value").and_then(Json::as_str) {
            Body::Run {
                value: v.to_string(),
            }
        } else if let Some(d) = j.get("dossier").and_then(Json::as_str) {
            Body::Explain {
                dossier: d.to_string(),
            }
        } else {
            Body::None
        };
        Ok(Response {
            id,
            op,
            tenant: j
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            ok: j
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("response wants ok")?,
            error: j.get("error").and_then(Json::as_str).map(str::to_string),
            retry_after_ms: j
                .get("retry_after_ms")
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .unwrap_or(0),
            durable: j.get("durable").and_then(Json::as_bool).unwrap_or(false),
            slo: j
                .get("slo")
                .and_then(Slo::from_json)
                .ok_or("response wants an slo block")?,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_trace::json;

    #[test]
    fn frames_round_trip_and_eof_is_clean_only_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // EOF inside a header is an error, not a clean close.
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err());
        // A hostile length prefix is refused before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let cases = vec![
            Request {
                id: 1,
                op: Op::Hello {
                    tenant: "alice".into(),
                    token: Some("s3cret".into()),
                },
            },
            Request {
                id: 2,
                op: Op::Compile {
                    unit: "u1".into(),
                    source: "(defun f (x) x)".into(),
                },
            },
            Request {
                id: 3,
                op: Op::Run {
                    entry: "f".into(),
                    args: vec!["1".into(), "(2 3)".into()],
                },
            },
            Request {
                id: 4,
                op: Op::Explain { name: "f".into() },
            },
            Request {
                id: 5,
                op: Op::Ping,
            },
            Request {
                id: 7,
                op: Op::Sync,
            },
            Request {
                id: 6,
                op: Op::Shutdown,
            },
        ];
        for req in cases {
            let text = req.to_json().to_string();
            let parsed = json::parse(&text).expect("well-formed JSON");
            assert_eq!(Request::from_json(&parsed), Ok(req.clone()), "{text}");
        }
    }

    #[test]
    fn responses_round_trip_including_rejections() {
        let resp = Response {
            id: 9,
            op: "compile".into(),
            tenant: "alice".into(),
            ok: false,
            error: Some("queue full".into()),
            retry_after_ms: 25,
            durable: false,
            slo: Slo {
                degraded: true,
                incident_kind: Some("panic".into()),
                queue_wait_us: 0,
                wall_us: 0,
            },
            body: Body::None,
        };
        let text = resp.to_json().to_string();
        let parsed = json::parse(&text).expect("well-formed JSON");
        assert_eq!(Response::from_json(&parsed), Ok(resp));
        // The durability flag survives the wire, and an old-style frame
        // without it parses as non-durable.
        let durable = Response {
            id: 10,
            op: "sync".into(),
            tenant: "alice".into(),
            ok: true,
            error: None,
            retry_after_ms: 0,
            durable: true,
            slo: Slo::default(),
            body: Body::None,
        };
        let text = durable.to_json().to_string();
        let parsed = json::parse(&text).expect("well-formed JSON");
        assert_eq!(Response::from_json(&parsed), Ok(durable));
        let legacy = text.replace("\"durable\":true,", "");
        let parsed = json::parse(&legacy).expect("well-formed JSON");
        assert!(!Response::from_json(&parsed).unwrap().durable);
    }
}
