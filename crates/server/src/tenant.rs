//! Tenant namespaces.
//!
//! A tenant is an isolated compilation world: its own specials
//! ordering, its own globals, its own compiled functions, its own
//! incident ledger.  The isolation has two independent mechanisms:
//!
//! * **Semantic** — a tenant's accumulated `proclaim`ed specials are
//!   prefixed onto every unit it compiles, so the same `defun` text can
//!   legitimately compile to different code for different tenants
//!   (specials change the calling convention of free references).
//! * **Cache** — every tenant's cache keys are XORed with its
//!   [`TenantState::fingerprint`], so even tenants compiling *the same*
//!   form under *the same* options get distinct keys: no warm hits
//!   across tenants, no timing side-channel on another tenant's
//!   artifacts.
//!
//! The per-tenant [`Compiler`](s1lisp::Compiler) is **not** kept alive
//! between requests — `Compiler` is not `Send` (its program holds
//! `Rc`s), and requests for one tenant may serve on different worker
//! threads.  Instead the state keeps the tenant's compiled sources in
//! order and replays them into a fresh compiler when a `run` request
//! needs a live machine; compilation itself goes through the batch
//! service's hermetic jobs and needs no resident compiler at all.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use s1lisp::Artifact;
use s1lisp_ast::Fnv1a64;

use crate::journal::TenantJournal;

/// Everything the server remembers about one tenant.
#[derive(Debug, Default)]
pub struct TenantState {
    /// The tenant name.
    pub name: String,
    /// Nonzero salt XORed into the tenant's artifact-cache keys.
    pub fingerprint: u64,
    /// `proclaim`ed/`defvar`ed specials, in first-proclaimed order.
    /// Order matters: it is part of what every subsequent compile
    /// observes, and two tenants proclaiming the same names in a
    /// different order are *different* namespaces.
    pub specials: Vec<String>,
    /// `defvar` globals as `(name, printed initial value)`.
    pub globals: Vec<(String, String)>,
    /// Latest artifact per function name.
    pub artifacts: HashMap<String, Artifact>,
    /// Successfully compiled unit sources, in arrival order — the
    /// replay log a `run` request rebuilds its machine from.
    pub sources: Vec<String>,
    /// Incidents accrued across the tenant's lifetime.
    pub incidents: u64,
    /// True once the incident budget is exhausted: subsequent compiles
    /// run with transformations off until the server restarts.
    pub degraded: bool,
    /// Requests served (including rejected ones), for fairness tests
    /// and per-tenant metrics.
    pub requests: u64,
    /// The tenant's write-ahead journal, present when the server runs
    /// with a state dir (attached at `hello` for fresh tenants, during
    /// recovery for restored ones).
    pub journal: Option<TenantJournal>,
    /// An incident kind to surface on the tenant's *next* response —
    /// how a quarantined-at-recovery tenant learns its history was
    /// lost (`incident_kind = "recovery"`).
    pub pending_incident: Option<String>,
}

impl TenantState {
    fn new(name: &str) -> TenantState {
        TenantState {
            name: name.to_string(),
            fingerprint: tenant_fingerprint(name),
            ..TenantState::default()
        }
    }

    /// Records a special, keeping first-proclaimed order and ignoring
    /// re-proclaims.
    pub fn absorb_special(&mut self, name: &str) {
        if !self.specials.iter().any(|s| s == name) {
            self.specials.push(name.to_string());
        }
    }
}

/// The tenant's cache-key salt: an FNV-1a fingerprint of its name,
/// forced nonzero so no tenant ever aliases the unsalted (plain
/// `compile_batch`) key space.
pub fn tenant_fingerprint(name: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_str("tenant:");
    h.write_str(name);
    match h.finish() {
        0 => 0x9e37_79b9_7f4a_7c15,
        fp => fp,
    }
}

/// The server's tenant table: name → shared state, created on first
/// `hello`.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, Arc<Mutex<TenantState>>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// The state for `name`, created if this is its first appearance.
    pub fn get_or_create(&self, name: &str) -> Arc<Mutex<TenantState>> {
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        tenants
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(TenantState::new(name))))
            .clone()
    }

    /// The state for `name`, or `None` if it never said hello.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.tenants
            .lock()
            .expect("tenant table poisoned")
            .get(name)
            .cloned()
    }

    /// Installs fully-built state (a recovered or quarantined tenant)
    /// under its name, replacing any existing entry.
    pub fn install(&self, state: TenantState) -> Arc<Mutex<TenantState>> {
        let name = state.name.clone();
        let arc = Arc::new(Mutex::new(state));
        self.tenants
            .lock()
            .expect("tenant table poisoned")
            .insert(name, Arc::clone(&arc));
        arc
    }

    /// Tenant names in sorted order.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .lock()
            .expect("tenant table poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_nonzero_and_distinct() {
        let a = tenant_fingerprint("alice");
        assert_eq!(a, tenant_fingerprint("alice"));
        assert_ne!(a, 0);
        assert_ne!(a, tenant_fingerprint("bob"));
        assert_ne!(tenant_fingerprint(""), 0);
    }

    #[test]
    fn registry_reuses_state_and_specials_keep_first_order() {
        let reg = TenantRegistry::new();
        let t1 = reg.get_or_create("alice");
        let t2 = reg.get_or_create("alice");
        assert!(Arc::ptr_eq(&t1, &t2));
        assert!(reg.get("bob").is_none());
        let mut s = t1.lock().unwrap();
        s.absorb_special("*b*");
        s.absorb_special("*a*");
        s.absorb_special("*b*");
        assert_eq!(s.specials, ["*b*", "*a*"]);
    }
}
