//! Transport-level integration: TCP pipelining, the stdio child
//! process, tenant authentication, backpressure retries, and the
//! signal-driven graceful drain.

use s1lisp_server::{
    Body, CompileServer, Op, QueueConfig, RetryPolicy, ServeClient, ServerConfig, ServerHandle,
};

fn start(config: ServerConfig) -> ServerHandle {
    CompileServer::new(config)
        .serve_tcp(0)
        .expect("bind an ephemeral port")
}

fn connect(handle: &ServerHandle) -> ServeClient {
    ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).expect("connect")
}

#[test]
fn tcp_pipelines_and_matches_out_of_order_responses() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    // Pipeline three requests, then collect them newest-first: the
    // client must match by id, not arrival order.
    let c1 = client
        .send(Op::Compile {
            unit: "u1".into(),
            source: "(defun inc (x) (+ x 1))".into(),
        })
        .unwrap();
    let c2 = client
        .send(Op::Run {
            entry: "inc".into(),
            args: vec!["41".into()],
        })
        .unwrap();
    let c3 = client.send(Op::Ping).unwrap();
    let ping = client.recv_id(c3).unwrap();
    let run = client.recv_id(c2).unwrap();
    let compile = client.recv_id(c1).unwrap();
    assert!(ping.ok && run.ok && compile.ok);
    assert_eq!(run.body, Body::Run { value: "42".into() });
    let Body::Compile { artifacts, .. } = &compile.body else {
        panic!("compile body expected, got {compile:?}");
    };
    assert_eq!(artifacts.len(), 1);
    assert_eq!(artifacts[0].name, "inc");
    // Every response carries the SLO surface.
    for resp in [&ping, &run, &compile] {
        assert!(!resp.slo.degraded);
        assert!(resp.slo.incident_kind.is_none());
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn tcp_serves_two_connections_concurrently() {
    let handle = start(ServerConfig::default());
    let port = handle.port();
    let threads: Vec<_> = ["alice", "bob"]
        .into_iter()
        .map(|tenant| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&format!("127.0.0.1:{port}")).unwrap();
                assert!(client.hello(tenant, None).unwrap().ok);
                for i in 0..4 {
                    let resp = client
                        .compile(
                            &format!("{tenant}-{i}"),
                            &format!("(defun f{i} (x) (* x {i}))"),
                        )
                        .unwrap();
                    assert!(resp.ok, "{tenant} unit {i}: {:?}", resp.error);
                    assert_eq!(resp.tenant, tenant);
                }
                let resp = client.run("f3", &["5"]).unwrap();
                assert_eq!(resp.body, Body::Run { value: "15".into() });
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn allowlist_rejects_bad_tokens_and_unknown_tenants() {
    let handle = start(ServerConfig {
        tenants: Some(vec![("alice".into(), "s3cret".into())]),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    assert!(!client.hello("alice", None).unwrap().ok, "missing token");
    assert!(!client.hello("alice", Some("wrong")).unwrap().ok);
    assert!(!client.hello("mallory", Some("s3cret")).unwrap().ok);
    // Unauthenticated requests are refused at the connection.
    let refused = client.ping().unwrap();
    assert!(!refused.ok);
    assert_eq!(refused.error.as_deref(), Some("say hello first"));
    assert!(client.hello("alice", Some("s3cret")).unwrap().ok);
    assert!(client.ping().unwrap().ok);
    handle.shutdown();
    handle.join();
}

#[test]
fn backoff_retries_absorb_backpressure_without_starving_anyone() {
    // A deliberately tiny queue and one worker: four call-style
    // clients hammering it WILL be rejected with retry hints.  The
    // client's seeded backoff must absorb every rejection — no caller
    // sees a raw `queue full` — and fairness means every tenant
    // finishes its full burst.
    let handle = start(ServerConfig {
        workers: 1,
        queue: QueueConfig {
            total: 2,
            per_tenant: 2,
            ..QueueConfig::default()
        },
        retry_after_ms: 1,
        ..ServerConfig::default()
    });
    let port = handle.port();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&format!("127.0.0.1:{port}")).unwrap();
                client.set_retry_policy(Some(RetryPolicy {
                    budget: 64,
                    cap_ms: 20,
                    seed: 0xFA15 + t,
                }));
                assert!(client.hello(&format!("tenant{t}"), None).unwrap().ok);
                for i in 0..8 {
                    let resp = client
                        .compile(
                            &format!("t{t}u{i}"),
                            &format!("(defun t{t}f{i} (x) (* x {i}))"),
                        )
                        .unwrap();
                    assert!(resp.ok, "tenant{t} unit {i}: {:?}", resp.error);
                    assert_eq!(resp.retry_after_ms, 0, "a rejection leaked through");
                }
                client.retries()
            })
        })
        .collect();
    let total_retries: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        total_retries > 0,
        "a 2-slot queue under 4 clients must reject at least once"
    );
    handle.shutdown();
    handle.join();
}

#[test]
#[cfg(unix)]
fn sigterm_drains_the_daemon_to_a_clean_exit() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--port", "0"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let announce = lines
        .next()
        .expect("an announce line")
        .expect("readable stderr");
    let port: u16 = announce
        .rsplit(':')
        .next()
        .and_then(|p| p.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable announce: {announce}"));
    // Prove it serves, then deliver SIGTERM mid-life.
    let mut client = ServeClient::connect(&format!("127.0.0.1:{port}")).unwrap();
    assert!(client.hello("ci", None).unwrap().ok);
    assert!(client.compile("u0", "(defun f (x) x)").unwrap().ok);
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill -TERM");
    assert!(status.success());
    let exit = child.wait().expect("wait");
    assert!(exit.success(), "SIGTERM must drain to exit 0, got {exit:?}");
}

#[test]
fn stdio_child_round_trips_and_exits_cleanly() {
    let mut client =
        ServeClient::spawn_stdio(env!("CARGO_BIN_EXE_serve"), &[]).expect("spawn serve --stdio");
    assert!(client.hello("ci", None).unwrap().ok);
    let compile = client.compile("smoke", "(defun dbl (x) (+ x x))").unwrap();
    assert!(compile.ok);
    let run = client.run("dbl", &["21"]).unwrap();
    assert_eq!(run.body, Body::Run { value: "42".into() });
    let explain = client.explain("dbl").unwrap();
    let Body::Explain { dossier } = &explain.body else {
        panic!("explain body expected");
    };
    assert!(dossier.contains("dbl"));
    assert!(client.shutdown().unwrap().ok);
    assert!(client.wait_exit().unwrap(), "server exited nonzero");
}
