//! Crash-recovery edges: the durability contract under clean
//! restarts, randomized kill points, adversarial journals, and the
//! seeded journal fault sites.
//!
//! The contract under test: an acknowledged-durable mutation survives
//! any crash; a mutation never acknowledged durable is cleanly absent
//! after recovery (never half-applied); and recovered state equals
//! the acknowledged prefix, byte for byte.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use s1lisp_driver::{CompileService, FaultPlan, FaultSite, ServiceConfig, SourceUnit};
use s1lisp_server::{
    tenant_fingerprint, Body, CompileServer, ServeClient, ServerConfig, ServerHandle,
};
use s1lisp_trace::rng::SplitMix64;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn state_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("s1lisp-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        state_dir: Some(dir.to_path_buf()),
        // Keep every record in the journal so tests can truncate it at
        // arbitrary byte offsets; snapshot cadence has its own test.
        snapshot_every: u64::MAX,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    CompileServer::new(config)
        .serve_tcp(0)
        .expect("bind an ephemeral port")
}

fn connect(handle: &ServerHandle) -> ServeClient {
    ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).expect("connect")
}

fn unit_source(i: usize) -> String {
    format!("(defun f{i} (x) (+ x {i}))")
}

fn tenant_dir(state_dir: &Path, tenant: &str) -> PathBuf {
    state_dir.join(format!("{:016x}", tenant_fingerprint(tenant)))
}

/// Byte boundaries after each complete journal record.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 8 + len;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

fn sources_of(server: &CompileServer, tenant: &str) -> Vec<String> {
    let state = server.tenant(tenant).expect("tenant recovered");
    let st = state.lock().unwrap();
    st.sources.clone()
}

#[test]
fn clean_restart_recovers_sources_artifacts_and_runs() {
    let dir = state_dir("clean");
    let handle = start(durable_config(&dir));
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let mut acked_artifacts = Vec::new();
    for i in 0..5 {
        let resp = client.compile(&format!("u{i}"), &unit_source(i)).unwrap();
        assert!(resp.ok && resp.durable, "compile {i} must ack durable");
        let Body::Compile { artifacts, .. } = &resp.body else {
            panic!("compile body expected");
        };
        acked_artifacts.extend(artifacts.iter().map(|a| a.to_json().to_string()));
    }
    // Specials flow through the journal too.
    let resp = client
        .compile(
            "decl",
            "(proclaim (quote (special *mode*)))\n(defvar *mode* 7)",
        )
        .unwrap();
    assert!(resp.ok && resp.durable);
    handle.shutdown();
    handle.join();

    // Restart on the same state dir: everything is back before any
    // request is served.
    let recovered = CompileServer::new(durable_config(&dir));
    assert_eq!(recovered.tenant_names(), ["alice"]);
    {
        let state = recovered.tenant("alice").expect("alice recovered");
        let st = state.lock().unwrap();
        assert_eq!(st.sources.len(), 6);
        assert_eq!(st.sources[2], unit_source(2));
        assert_eq!(st.specials, ["*mode*"]);
        assert_eq!(st.globals, [("*mode*".to_string(), "7".to_string())]);
        assert_eq!(st.incidents, 0);
        assert!(st.pending_incident.is_none());
        // Recovered artifacts are byte-identical to the acknowledged
        // ones.
        for acked in &acked_artifacts {
            let name = acked
                .split("\"name\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .unwrap();
            let got = st.artifacts.get(name).expect("artifact recovered");
            assert_eq!(&got.to_json().to_string(), acked, "artifact {name}");
        }
        // ... and to a cold compile_batch of the same units (the
        // chaos-drill contract, checked here in-process).
        let cold = CompileService::new(ServiceConfig::default())
            .compile_batch(&[SourceUnit::new("u3", unit_source(3))]);
        assert_eq!(
            st.artifacts.get("f3").unwrap().to_json().to_string(),
            cold.artifacts[0].to_json().to_string()
        );
    }
    // A recovered server serves: run replays the recovered sources.
    let handle = recovered.serve_tcp(0).expect("bind");
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let run = client.run("f4", &["38"]).unwrap();
    assert_eq!(run.body, Body::Run { value: "42".into() });
    handle.shutdown();
    handle.join();

    // Recovery is idempotent: a third cold start sees the same world.
    let again = CompileServer::new(durable_config(&dir));
    assert_eq!(sources_of(&again, "alice").len(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_kill_point_recovers_exactly_the_acknowledged_prefix() {
    // Build a journal of 6 acknowledged mutations, then simulate
    // kill -9 at seeded random byte offsets by truncating a copy of
    // the journal.  Each cut must recover a clean prefix: whole
    // records survive, the torn one vanishes, nothing else appears.
    let dir = state_dir("killpoints");
    let handle = start(durable_config(&dir));
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let sources: Vec<String> = (0..6).map(unit_source).collect();
    for (i, src) in sources.iter().enumerate() {
        let resp = client.compile(&format!("u{i}"), src).unwrap();
        assert!(resp.ok && resp.durable);
    }
    handle.shutdown();
    handle.join();

    let alice_dir = tenant_dir(&dir, "alice");
    let journal = std::fs::read(alice_dir.join("journal.log")).unwrap();
    let snapshot = std::fs::read(alice_dir.join("snapshot.json")).unwrap();
    let ends = record_ends(&journal);
    assert_eq!(ends.len(), 6, "all six mutations journaled");

    let mut rng = SplitMix64::new(0x5EED_0C75);
    let mut cuts: Vec<usize> = (0..24).map(|_| rng.range_usize(0, journal.len())).collect();
    cuts.push(0); // the zero-length journal
    cuts.push(journal.len()); // the uncut journal
    for cut in cuts {
        let trial = state_dir("killpoint-trial");
        let trial_tenant = tenant_dir(&trial, "alice");
        std::fs::create_dir_all(&trial_tenant).unwrap();
        std::fs::write(trial_tenant.join("snapshot.json"), &snapshot).unwrap();
        std::fs::write(trial_tenant.join("journal.log"), &journal[..cut]).unwrap();
        let recovered = CompileServer::new(durable_config(&trial));
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        let got = sources_of(&recovered, "alice");
        assert_eq!(got, &sources[..whole], "cut at byte {cut}");
        // A kill is never misread as corruption.
        let state = recovered.tenant("alice").unwrap();
        let st = state.lock().unwrap();
        assert_eq!(st.incidents, 0, "cut at byte {cut} quarantined");
        assert!(st.pending_incident.is_none());
        drop(st);
        let _ = std::fs::remove_dir_all(&trial);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adversarial_journals_follow_the_recovery_ladder() {
    // One clean run to get authentic on-disk state to corrupt.
    let dir = state_dir("adversarial");
    let handle = start(durable_config(&dir));
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let sources: Vec<String> = (0..4).map(unit_source).collect();
    for (i, src) in sources.iter().enumerate() {
        assert!(client.compile(&format!("u{i}"), src).unwrap().ok);
    }
    handle.shutdown();
    handle.join();
    let alice_dir = tenant_dir(&dir, "alice");
    let journal = std::fs::read(alice_dir.join("journal.log")).unwrap();
    let snapshot = std::fs::read(alice_dir.join("snapshot.json")).unwrap();
    let ends = record_ends(&journal);

    let trial = |name: &str, journal_bytes: &[u8], snapshot_bytes: &[u8]| {
        let t = state_dir(name);
        let td = tenant_dir(&t, "alice");
        std::fs::create_dir_all(&td).unwrap();
        std::fs::write(td.join("snapshot.json"), snapshot_bytes).unwrap();
        std::fs::write(td.join("journal.log"), journal_bytes).unwrap();
        t
    };

    // Bit-flipped CRC in the FINAL record: a torn tail, not
    // corruption — the prefix survives.
    let mut torn = journal.clone();
    let last_payload = ends[2] + 8;
    torn[last_payload] ^= 0x40;
    let t = trial("torn", &torn, &snapshot);
    let server = CompileServer::new(durable_config(&t));
    assert_eq!(sources_of(&server, "alice"), &sources[..3]);
    assert_eq!(
        server
            .metrics_snapshot()
            .counter("server.recovery.torn_tails"),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&t);

    // Bit-flipped CRC MID-LOG: acknowledged history is gone — the
    // tenant is quarantined to a fresh namespace with a recovery
    // incident, and the evidence is renamed aside, not deleted.
    let mut corrupt = journal.clone();
    corrupt[ends[0] + 8] ^= 0x40; // inside record 1 of 4
    let t = trial("corrupt", &corrupt, &snapshot);
    let server = CompileServer::new(durable_config(&t));
    {
        let state = server.tenant("alice").expect("quarantined, not dropped");
        let st = state.lock().unwrap();
        assert!(st.sources.is_empty());
        assert_eq!(st.incidents, 1);
        assert_eq!(st.pending_incident.as_deref(), Some("recovery"));
    }
    let td = tenant_dir(&t, "alice");
    assert!(td.join("journal.log.quarantined-0").exists());
    assert!(td.join("snapshot.json.quarantined-0").exists());
    assert_eq!(
        server
            .metrics_snapshot()
            .counter("server.recovery.quarantined"),
        Some(1)
    );
    // The recovery incident is surfaced on the tenant's first
    // response after the restart, then cleared.
    let handle = server.serve_tcp(0).expect("bind");
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let first = client.ping().unwrap();
    assert_eq!(first.slo.incident_kind.as_deref(), Some("recovery"));
    assert!(client.ping().unwrap().slo.incident_kind.is_none());
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&t);

    // Zero-length SNAPSHOT with an intact journal: the snapshot cannot
    // be trusted, so the tenant (named by its journal records) is
    // quarantined rather than half-loaded.
    let t = trial("zerosnap", &journal, b"");
    let server = CompileServer::new(durable_config(&t));
    {
        let state = server.tenant("alice").expect("named by the journal");
        let st = state.lock().unwrap();
        assert!(st.sources.is_empty());
        assert_eq!(st.pending_incident.as_deref(), Some("recovery"));
    }
    let _ = std::fs::remove_dir_all(&t);

    // Duplicate record ids: a replayed-once record is applied once.
    let mut duped = journal.clone();
    duped.extend_from_slice(&journal[..ends[0]]); // re-append record 1
    let t = trial("dupes", &duped, &snapshot);
    let server = CompileServer::new(durable_config(&t));
    assert_eq!(sources_of(&server, "alice"), sources);
    assert_eq!(
        server
            .metrics_snapshot()
            .counter("server.recovery.stale_records"),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&t);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_write_faults_make_responses_nondurable_and_recovery_honest() {
    // Arm only the journal-write site: compiles still succeed in
    // memory, but some appends exhaust their retries and the response
    // says durable: false.  After a restart, exactly the durable
    // acknowledgements are back — the flag is the contract.
    let dir = state_dir("writefault");
    let mut config = durable_config(&dir);
    config.service.fault_plan = Some(FaultPlan::new(0xD06).arm(FaultSite::JournalWrite, 500));
    let handle = start(config);
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let mut durable_sources = Vec::new();
    let mut nondurable = 0;
    for i in 0..12 {
        let src = unit_source(i);
        let resp = client.compile(&format!("u{i}"), &src).unwrap();
        assert!(resp.ok, "compile {i} still serves from memory");
        if resp.durable {
            durable_sources.push(src);
        } else {
            nondurable += 1;
        }
    }
    assert!(nondurable > 0, "seed 0xD06 at 500 permille must doom some");
    assert!(!durable_sources.is_empty(), "and not all");
    handle.shutdown();
    handle.join();

    let recovered = CompileServer::new(durable_config(&dir));
    assert_eq!(sources_of(&recovered, "alice"), durable_sources);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_corrupt_fault_site_quarantines_from_its_seed() {
    // A clean on-disk state plus an armed journal-corrupt site: the
    // injected read-time corruption quarantines the tenant while the
    // disk stays intact — rerunning recovery without the plan gets
    // everything back.
    let dir = state_dir("corruptsite");
    let handle = start(durable_config(&dir));
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    for i in 0..3 {
        assert!(
            client
                .compile(&format!("u{i}"), &unit_source(i))
                .unwrap()
                .ok
        );
    }
    handle.shutdown();
    handle.join();

    // Copy the state aside first: quarantine renames the real files.
    let drill = state_dir("corruptsite-drill");
    let src_td = tenant_dir(&dir, "alice");
    let dst_td = tenant_dir(&drill, "alice");
    std::fs::create_dir_all(&dst_td).unwrap();
    for f in ["journal.log", "snapshot.json"] {
        std::fs::copy(src_td.join(f), dst_td.join(f)).unwrap();
    }
    let mut config = durable_config(&drill);
    config.service.fault_plan = Some(FaultPlan::new(7).arm(FaultSite::JournalCorrupt, 1000));
    let server = CompileServer::new(config);
    {
        let state = server.tenant("alice").expect("quarantined");
        let st = state.lock().unwrap();
        assert!(st.sources.is_empty());
        assert_eq!(st.pending_incident.as_deref(), Some("recovery"));
    }
    // The original, uninjected state dir still recovers fully.
    let clean = CompileServer::new(durable_config(&dir));
    assert_eq!(sources_of(&clean, "alice").len(), 3);
    let _ = std::fs::remove_dir_all(&drill);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_compact_the_journal_and_sync_forces_one() {
    let dir = state_dir("snapshots");
    let mut config = durable_config(&dir);
    config.snapshot_every = 2;
    let handle = start(config);
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    for i in 0..5 {
        assert!(
            client
                .compile(&format!("u{i}"), &unit_source(i))
                .unwrap()
                .ok
        );
    }
    // 5 appends at cadence 2: snapshots after #2 and #4, one record
    // left in the journal.
    let alice_dir = tenant_dir(&dir, "alice");
    let journal = std::fs::read(alice_dir.join("journal.log")).unwrap();
    assert_eq!(
        record_ends(&journal).len(),
        1,
        "journal holds only the tail"
    );
    // An explicit sync absorbs the rest.
    let synced = client.sync().unwrap();
    assert!(synced.ok && synced.durable);
    assert_eq!(
        std::fs::read(alice_dir.join("journal.log")).unwrap().len(),
        0
    );
    handle.shutdown();
    handle.join();
    // Snapshot-only recovery (no journal replay) still has everything.
    let recovered = CompileServer::new(durable_config(&dir));
    assert_eq!(sources_of(&recovered, "alice").len(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_only_servers_never_claim_durability() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);
    assert!(client.hello("alice", None).unwrap().ok);
    let resp = client.compile("u0", &unit_source(0)).unwrap();
    assert!(resp.ok && !resp.durable);
    let synced = client.sync().unwrap();
    assert!(synced.ok && !synced.durable);
    handle.shutdown();
    handle.join();
}
