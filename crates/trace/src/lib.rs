//! Observability for the s1lisp pipeline.
//!
//! The paper explains itself twice over: §7 reproduces the compiler's
//! own debugging transcript (";**** courtesy of META-EVALUATE-…"), and
//! §6 *measures* the optimizations it describes ("nearly all of the
//! time it is possible … to generate code … that requires no MOV
//! instructions").  Both are observability artifacts — the compiler
//! narrating its decisions, the machine proving they paid off.  This
//! crate is the shared instrument: a [`TraceSink`] span/event model the
//! whole pipeline reports into, covering every phase of Table 1.
//!
//! * [`TraceSink`] — the recording interface.  Phases open *spans*
//!   (named after Table 1 rows), attribute *counters* to the innermost
//!   open span, and may log free-form *events*.
//! * [`NullSink`] — the default, all methods no-ops: tracing disabled
//!   costs nothing beyond a dead-branch check at phase boundaries.
//! * [`MemorySink`] — aggregates spans per phase (call counts, wall
//!   time, counter totals), keeps the event log, and retains every span
//!   as a [`SpanRec`] so per-unit (per-function) views can be rebuilt —
//!   the substrate of `Compiler::explain`'s compilation dossiers.
//! * [`json`] — a dependency-free JSON model with a stable field order
//!   and a schema extractor, so `report --json` output can be pinned by
//!   golden tests.
//! * [`rng`] — a tiny deterministic PRNG; the workspace's property
//!   tests run offline and reproducibly on top of it.
//! * [`fault`] — seeded, order-independent fault injection
//!   ([`fault::FaultPlan`]); the robustness counterpart of tracing,
//!   letting any failure scenario replay exactly from a seed.
//! * [`metrics`] — the unified registry of counters, gauges, and
//!   fixed-bucket histograms every subsystem (simulator, heap, cache,
//!   service, pipeline) reports into; snapshots serialize through
//!   [`json`] with the same schema-pinning discipline.
//! * [`chrome`] — renders [`MemorySink`] span trees (and any other
//!   span forest) as Chrome trace-event JSON loadable in
//!   about:tracing/Perfetto, on a deterministic synthetic timeline.

#![warn(missing_docs)]

pub mod chrome;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod rng;
mod sink;

pub use sink::{Event, MemorySink, NullSink, PhaseAgg, SpanId, SpanRec, TraceSink};
