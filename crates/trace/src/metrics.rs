//! A unified metrics registry: counters, gauges, and fixed-bucket
//! histograms, snapshotable to the schema-signed JSON layer.
//!
//! The paper's methodology (§6, Tables 1–2) is cost *attribution*: every
//! claim is a counter compared across configurations.  This module is
//! the workspace-wide instrument for that discipline — one registry type
//! the simulator, the heap, the compiler pipeline, the artifact cache,
//! and the compile service all report into, so `report --metrics` and
//! the `perfbench` trajectory harness read a single surface.
//!
//! # Model
//!
//! * [`Counter`] — a monotonically increasing `u64`.
//! * [`Gauge`] — a point-in-time `i64` (last write wins).
//! * [`Histogram`] — a fixed-bucket distribution of `u64` observations
//!   (bounds chosen at registration; observations above the last bound
//!   land in an overflow bucket).  Buckets are *not* cumulative.
//!
//! Handles are cheap `Arc`-backed clones over atomics, so one registry
//! can be shared across the service's worker threads while the
//! simulator's single-threaded hot loop pays only a relaxed atomic add.
//!
//! # Determinism convention
//!
//! Metric names ending in `_ns`, `_us`, or `_per_sec` are *host-time*
//! metrics: their values (and, for histograms, their bucket counts)
//! depend on wall-clock scheduling, not on simulated behavior.
//! [`MetricsSnapshot::zero_time_metrics`] zeroes exactly these, leaving
//! a byte-deterministic snapshot for golden pinning — the same
//! discipline the PR-2 post-mortem goldens use.  Everything else in a
//! snapshot must be a pure function of (workload, seed, options).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Default bucket bounds (microseconds) for latency histograms.
pub const TIME_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 1_000_000,
];

/// Default bucket bounds (words) for size histograms.
pub const SIZE_BUCKETS_WORDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value; the last `set` wins.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive), strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound, plus one overflow bucket at the end.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Bulk-merges counts that were already bucketed elsewhere (e.g. the
    /// heap's plain, clone-safe allocation-size table).  `counts` must
    /// have one entry per bound, in bound order.
    pub fn record_prebucketed(&self, counts: &[u64], overflow: u64, sum: u64) {
        assert_eq!(
            counts.len(),
            self.0.bounds.len(),
            "prebucketed counts must match the bound count"
        );
        for (slot, &n) in self.0.counts.iter().zip(counts.iter().chain([&overflow])) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
        let total = counts.iter().sum::<u64>() + overflow;
        self.0.count.fetch_add(total, Ordering::Relaxed);
        self.0.sum.fetch_add(sum, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self
                .0
                .bounds
                .iter()
                .zip(&self.0.counts)
                .map(|(&le, n)| (le, n.load(Ordering::Relaxed)))
                .collect(),
            overflow: self.0.counts[self.0.bounds.len()].load(Ordering::Relaxed),
        }
    }
}

/// The frozen state of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// `(upper bound, observations ≤ bound)` per bucket (not
    /// cumulative), in bound order.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    fn zeroed(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: self.buckets.iter().map(|&(le, _)| (le, 0)).collect(),
            overflow: 0,
        }
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: named metric handles, one namespace per kind.
///
/// Registration is get-or-create, so independent subsystems can reach
/// for the same metric by name; a histogram re-registered with
/// different bounds keeps its original bounds.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registered>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created with `bounds` on first use.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// A name-prefixing view: `scoped("server.tenant.alice")` hands out
    /// the same get-or-create handles as the registry itself, with every
    /// name spelled `<prefix>.<name>`.  This is how per-entity metric
    /// families (the compile server's per-tenant request counters) stay
    /// on one registry without every call site re-assembling names.
    pub fn scoped(&self, prefix: &str) -> ScopedMetrics<'_> {
        ScopedMetrics {
            registry: self,
            prefix: prefix.to_string(),
        }
    }

    /// Freezes every registered metric, names sorted within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A registry view that prefixes every metric name (see
/// [`MetricsRegistry::scoped`]).  Handles are the registry's own; the
/// view adds nothing but the spelling.
pub struct ScopedMetrics<'a> {
    registry: &'a MetricsRegistry,
    prefix: String,
}

impl ScopedMetrics<'_> {
    /// The counter named `<prefix>.<name>`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&format!("{}.{name}", self.prefix))
    }

    /// The gauge named `<prefix>.<name>`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&format!("{}.{name}", self.prefix))
    }

    /// The histogram named `<prefix>.<name>`, created with `bounds` on
    /// first use.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.registry
            .histogram(&format!("{}.{name}", self.prefix), bounds)
    }
}

/// True when `name` follows the host-time naming convention (see the
/// module docs): such metrics are zeroed for deterministic goldens.
pub fn is_time_metric(name: &str) -> bool {
    name.ends_with("_ns") || name.ends_with("_us") || name.ends_with("_per_sec")
}

/// A frozen, ordered view of a registry — the unit `report --metrics`
/// renders and the golden tests pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The state of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Inserts (or overwrites) a counter, keeping name order.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 = value,
            Err(i) => self.counters.insert(i, (name.to_string(), value)),
        }
    }

    /// Inserts (or overwrites) a gauge, keeping name order.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// Zeroes every host-time metric (see [`is_time_metric`]): counters
    /// and gauges to 0, histograms to empty (bucket structure kept).
    /// What remains is a pure function of workload, seed, and options —
    /// two identical runs must agree byte for byte.
    pub fn zero_time_metrics(&mut self) {
        for (name, v) in &mut self.counters {
            if is_time_metric(name) {
                *v = 0;
            }
        }
        for (name, v) in &mut self.gauges {
            if is_time_metric(name) {
                *v = 0;
            }
        }
        for (name, h) in &mut self.histograms {
            if is_time_metric(name) {
                *h = h.zeroed();
            }
        }
    }

    /// The machine-readable form: fixed kind sections, dynamic metric
    /// names as [`Json::Map`] keys (names are data, value types are
    /// schema).
    pub fn to_json(&self) -> Json {
        let counters = Json::Map(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::uint(*v)))
                .collect(),
        );
        let gauges = Json::Map(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::Int(*v)))
                .collect(),
        );
        let histograms = Json::Map(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    let buckets = h
                        .buckets
                        .iter()
                        .map(|&(le, count)| {
                            Json::Obj(vec![
                                ("le".to_string(), Json::uint(le)),
                                ("n".to_string(), Json::uint(count)),
                            ])
                        })
                        .collect();
                    (
                        n.clone(),
                        Json::Obj(vec![
                            ("count".to_string(), Json::uint(h.count)),
                            ("sum".to_string(), Json::uint(h.sum)),
                            ("overflow".to_string(), Json::uint(h.overflow)),
                            ("buckets".to_string(), Json::Arr(buckets)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }

    /// An aligned human-readable table, one metric per line, grouped by
    /// kind.  Histograms render as `count/sum` plus the nonzero buckets.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (n, v) in &self.counters {
                let _ = writeln!(out, "  {n:<width$}  {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (n, v) in &self.gauges {
                let _ = writeln!(out, "  {n:<width$}  {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (n, h) in &self.histograms {
                let _ = writeln!(out, "  {n:<width$}  count={} sum={}", h.count, h.sum);
                for &(le, count) in h.buckets.iter().filter(|&&(_, c)| c > 0) {
                    let _ = writeln!(out, "  {:<width$}    ≤{le}: {count}", "");
                }
                if h.overflow > 0 {
                    let _ = writeln!(out, "  {:<width$}    >max: {}", "", h.overflow);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sim.insns_retired");
        c.add(5);
        reg.counter("sim.insns_retired").inc();
        reg.gauge("heap.live_words").set(42);
        let h = reg.histogram("cache.get_us", &[10, 100]);
        h.observe(3);
        h.observe(50);
        h.observe(5_000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.insns_retired"), Some(6));
        assert_eq!(snap.gauge("heap.live_words"), Some(42));
        let hs = snap.histogram("cache.get_us").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 5_053);
        assert_eq!(hs.buckets, vec![(10, 1), (100, 1)]);
        assert_eq!(hs.overflow, 1);
    }

    #[test]
    fn histogram_boundary_values_land_in_the_inclusive_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("edges", &[10, 20, 30]);
        // Bounds are inclusive upper edges: a value equal to a bound
        // belongs to that bound's bucket, one more spills to the next.
        for v in [0, 10, 11, 20, 21, 30, 31] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("edges").unwrap();
        assert_eq!(hs.buckets, vec![(10, 2), (20, 2), (30, 2)]);
        assert_eq!(hs.overflow, 1);
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 123);
    }

    #[test]
    fn histogram_overflow_accounting_is_complete() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("over", &[5]);
        h.observe(5); // last in-range value
        h.observe(6); // first overflow value
        h.observe(u64::MAX / 2); // far overflow
        let snap = reg.snapshot();
        let hs = snap.histogram("over").unwrap();
        // Overflow observations are not dropped: they appear in the
        // overflow bucket AND in count and sum.
        assert_eq!(hs.overflow, 2);
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 5 + 6 + u64::MAX / 2);
        let bucketed: u64 = hs.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucketed + hs.overflow, hs.count);
    }

    #[test]
    fn quarantine_zeroes_exactly_the_time_suffixed_names() {
        // Register counters, gauges, and histograms under every time
        // suffix the convention quarantines, plus non-time controls,
        // then check zero_time_metrics() touches exactly the time set.
        let reg = MetricsRegistry::new();
        for name in ["a_ns", "b_us", "c_per_sec", "d_words", "e_rate"] {
            reg.counter(&format!("c.{name}")).add(41);
            reg.gauge(&format!("g.{name}")).set(-7);
            reg.histogram(&format!("h.{name}"), &[1, 2]).observe(9);
        }
        let before = reg.snapshot();
        let mut snap = reg.snapshot();
        snap.zero_time_metrics();
        for ((name, v), (_, orig)) in snap.counters.iter().zip(before.counters.iter()) {
            assert_eq!(*v == 0, is_time_metric(name), "counter {name}");
            assert!(is_time_metric(name) || v == orig);
        }
        for ((name, v), (_, orig)) in snap.gauges.iter().zip(before.gauges.iter()) {
            assert_eq!(*v == 0, is_time_metric(name), "gauge {name}");
            assert!(is_time_metric(name) || v == orig);
        }
        for ((name, h), (_, orig)) in snap.histograms.iter().zip(before.histograms.iter()) {
            assert_eq!(h.count == 0, is_time_metric(name), "histogram {name}");
            assert!(is_time_metric(name) || h == orig);
            // Zeroed histograms keep their bucket structure.
            assert_eq!(h.buckets.len(), orig.buckets.len());
        }
    }

    #[test]
    fn snapshot_is_name_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        reg.counter("mid").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn prebucketed_merge_matches_observations() {
        let bounds = [2, 4, 8];
        let reg = MetricsRegistry::new();
        let a = reg.histogram("a", &bounds);
        for v in [1, 2, 3, 9, 100] {
            a.observe(v);
        }
        let b = reg.histogram("b", &bounds);
        b.record_prebucketed(&[2, 1, 0], 2, 115);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("a"), snap.histogram("b"));
    }

    #[test]
    fn zeroing_strips_host_time_but_keeps_structure() {
        let reg = MetricsRegistry::new();
        reg.counter("sim.run_wall_ns").add(999);
        reg.counter("sim.insns_retired").add(7);
        reg.gauge("sim.insns_per_sec").set(123_456);
        reg.histogram("service.job_wall_us", TIME_BUCKETS_US)
            .observe(40);
        reg.histogram("heap.alloc_size_words", SIZE_BUCKETS_WORDS)
            .observe(2);
        let mut snap = reg.snapshot();
        snap.zero_time_metrics();
        assert_eq!(snap.counter("sim.run_wall_ns"), Some(0));
        assert_eq!(snap.counter("sim.insns_retired"), Some(7));
        assert_eq!(snap.gauge("sim.insns_per_sec"), Some(0));
        let wall = snap.histogram("service.job_wall_us").unwrap();
        assert_eq!(wall.count, 0);
        assert_eq!(wall.buckets.len(), TIME_BUCKETS_US.len());
        assert!(wall.buckets.iter().all(|&(_, c)| c == 0));
        // Non-time histograms keep their observations.
        assert_eq!(snap.histogram("heap.alloc_size_words").unwrap().count, 1);
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs");
        let h = reg.histogram("lat_us", TIME_BUCKETS_US);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs"), Some(4_000));
        assert_eq!(snap.histogram("lat_us").unwrap().count, 4_000);
    }

    #[test]
    fn scoped_metrics_prefix_and_share_the_registry() {
        let reg = MetricsRegistry::new();
        let tenant = reg.scoped("server.tenant.alice");
        tenant.counter("requests").add(2);
        tenant.gauge("depth").set(7);
        tenant.histogram("wait_us", &[10, 100]).observe(50);
        // The scoped handles are the same instruments as the fully
        // qualified names — not a parallel family.
        reg.counter("server.tenant.alice.requests").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("server.tenant.alice.requests"), Some(3));
        assert_eq!(snap.gauge("server.tenant.alice.depth"), Some(7));
        assert_eq!(
            snap.histogram("server.tenant.alice.wait_us").unwrap().count,
            1
        );
        assert_eq!(snap.counter("requests"), None, "no unprefixed leak");
    }

    #[test]
    fn snapshot_json_is_well_formed_and_schema_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("c1").add(1);
        reg.gauge("g1").set(-3);
        reg.histogram("h1", &[1, 2]).observe(1);
        let v = reg.snapshot().to_json();
        json::parse(&v.to_string()).expect("well-formed");
        assert_eq!(
            json::schema(&v),
            "{counters:map<int>,gauges:map<int>,histograms:map<{count:int,sum:int,overflow:int,buckets:[{le:int,n:int}]}>}"
        );
    }
}
