//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms named fault sites across the pipeline — cache
//! I/O, per-phase panics, watchdog overruns, simulator traps — from a
//! single seed.  The plan is a *pure decision function*: whether a
//! fault fires at `(site, key)` depends only on the seed, the site, and
//! the key, never on how many decisions were made before or in what
//! order.  Worker pools schedule jobs nondeterministically, so a
//! stateful RNG stream would make fault scenarios unreplayable; here
//! every scenario replays exactly from its seed regardless of thread
//! interleaving.

use crate::rng::SplitMix64;

/// A named place where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A disk-cache read fails with an I/O error.
    CacheRead,
    /// A disk-cache write fails with an I/O error.
    CacheWrite,
    /// A disk-cache read succeeds but returns corrupted bytes.
    CacheCorrupt,
    /// A compiler phase panics mid-function.
    PhasePanic,
    /// A compile job overruns its time budget.
    Overrun,
    /// The simulator traps while running an oracle case.
    SimTrap,
    /// The optimized artifact computes a wrong answer (exercises the
    /// differential oracle).
    Miscompile,
    /// A write-ahead-journal append fails with an I/O error.
    JournalWrite,
    /// A journal record reads back with corrupted bytes during
    /// recovery (the on-disk log itself stays intact, mirroring
    /// [`FaultSite::CacheCorrupt`]).
    JournalCorrupt,
}

impl FaultSite {
    /// All sites, for arming sweeps and reports.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::CacheRead,
        FaultSite::CacheWrite,
        FaultSite::CacheCorrupt,
        FaultSite::PhasePanic,
        FaultSite::Overrun,
        FaultSite::SimTrap,
        FaultSite::Miscompile,
        FaultSite::JournalWrite,
        FaultSite::JournalCorrupt,
    ];

    /// Stable name used in keys, reports, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CacheRead => "cache-read",
            FaultSite::CacheWrite => "cache-write",
            FaultSite::CacheCorrupt => "cache-corrupt",
            FaultSite::PhasePanic => "phase-panic",
            FaultSite::Overrun => "overrun",
            FaultSite::SimTrap => "sim-trap",
            FaultSite::Miscompile => "miscompile",
            FaultSite::JournalWrite => "journal-write",
            FaultSite::JournalCorrupt => "journal-corrupt",
        }
    }

    /// A per-site salt so the same key draws independently at each site.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; fixed forever so seeds stay replayable.
        match self {
            FaultSite::CacheRead => 0x9c9e_4f1d_0b35_7a11,
            FaultSite::CacheWrite => 0x51ab_72c3_9d0e_6f2b,
            FaultSite::CacheCorrupt => 0xe3d1_08b7_44c5_2a39,
            FaultSite::PhasePanic => 0x27f8_b1a5_c04d_9e53,
            FaultSite::Overrun => 0x8b64_d90f_1e72_c467,
            FaultSite::SimTrap => 0x40c2_e6a9_7b18_f58d,
            FaultSite::Miscompile => 0xf517_3c8e_a2d0_649f,
            FaultSite::JournalWrite => 0x6d2b_91c4_5a8f_e073,
            FaultSite::JournalCorrupt => 0x1f84_c6d2_39b7_0ae5,
        }
    }
}

/// A seeded plan deciding which faults fire where.
///
/// Rates are in permille (0–1000).  A site with rate 0 is disarmed;
/// rate 1000 fires on every key.  Retryable I/O sites additionally
/// decide a deterministic *failure count* — how many consecutive
/// attempts fail before one succeeds — so bounded retry loops have
/// reproducible outcomes too.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The seed every decision derives from.
    pub seed: u64,
    rates: [u16; FaultSite::ALL.len()],
}

impl FaultPlan {
    /// A plan with every site disarmed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0; FaultSite::ALL.len()],
        }
    }

    /// A fault storm: every site armed at the given permille rate.
    pub fn storm(seed: u64, permille: u16) -> FaultPlan {
        let mut p = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            p = p.arm(site, permille);
        }
        p
    }

    /// Arms one site at the given permille rate (builder style).
    pub fn arm(mut self, site: FaultSite, permille: u16) -> FaultPlan {
        self.rates[Self::index(site)] = permille.min(1000);
        self
    }

    /// The armed rate of a site, in permille.
    pub fn rate(&self, site: FaultSite) -> u16 {
        self.rates[Self::index(site)]
    }

    /// Whether any site is armed at all.
    pub fn is_armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// Whether the fault at `site` fires for `key`.  Pure: independent
    /// of call order and of every other `(site, key)` decision.
    pub fn fires(&self, site: FaultSite, key: &str) -> bool {
        let rate = self.rate(site);
        if rate == 0 {
            return false;
        }
        self.draw(site, key).below(1000) < u64::from(rate)
    }

    /// For retryable I/O sites: how many consecutive attempts fail
    /// before one succeeds.  Zero when the fault does not fire; when it
    /// does, between 1 and `max_failures` inclusive (deterministic per
    /// key).
    pub fn failure_count(&self, site: FaultSite, key: &str, max_failures: u32) -> u32 {
        if max_failures == 0 || !self.fires(site, key) {
            return 0;
        }
        let mut r = self.draw(site, key);
        r.next_u64(); // skip the word `fires` consumed
        1 + r.below(u64::from(max_failures)) as u32
    }

    /// Summary of armed sites as `site:rate` pairs (for reports).
    pub fn armed_sites(&self) -> Vec<(&'static str, u16)> {
        FaultSite::ALL
            .iter()
            .filter(|s| self.rate(**s) > 0)
            .map(|s| (s.name(), self.rate(*s)))
            .collect()
    }

    fn draw(&self, site: FaultSite, key: &str) -> SplitMix64 {
        SplitMix64::new(self.seed ^ site.salt() ^ fnv1a(key.as_bytes()))
    }

    fn index(site: FaultSite) -> usize {
        FaultSite::ALL.iter().position(|s| *s == site).unwrap()
    }
}

/// FNV-1a over raw bytes (local copy; `trace` sits below the AST crate
/// that hosts the tree fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let p = FaultPlan::storm(42, 500);
        let keys = ["alpha", "beta", "gamma", "delta"];
        let forward: Vec<bool> = keys
            .iter()
            .map(|k| p.fires(FaultSite::PhasePanic, k))
            .collect();
        let backward: Vec<bool> = keys
            .iter()
            .rev()
            .map(|k| p.fires(FaultSite::PhasePanic, k))
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
        // Replaying from the same seed gives the same decisions.
        let q = FaultPlan::storm(42, 500);
        for k in keys {
            assert_eq!(
                p.fires(FaultSite::CacheRead, k),
                q.fires(FaultSite::CacheRead, k)
            );
        }
    }

    #[test]
    fn sites_draw_independently() {
        // With a 50% rate over many keys, the per-site decision vectors
        // must differ (they share keys but not salts).
        let p = FaultPlan::storm(7, 500);
        let keys: Vec<String> = (0..64).map(|i| format!("fn{i}")).collect();
        let reads: Vec<bool> = keys
            .iter()
            .map(|k| p.fires(FaultSite::CacheRead, k))
            .collect();
        let writes: Vec<bool> = keys
            .iter()
            .map(|k| p.fires(FaultSite::CacheWrite, k))
            .collect();
        assert_ne!(reads, writes);
        assert!(reads.iter().any(|&b| b) && reads.iter().any(|&b| !b));
    }

    #[test]
    fn rates_bound_firing() {
        let p = FaultPlan::new(3);
        assert!(!p.is_armed());
        for i in 0..100 {
            assert!(!p.fires(FaultSite::Overrun, &format!("k{i}")));
        }
        let full = FaultPlan::new(3).arm(FaultSite::Overrun, 1000);
        for i in 0..100 {
            assert!(full.fires(FaultSite::Overrun, &format!("k{i}")));
        }
    }

    #[test]
    fn failure_counts_are_bounded_and_deterministic() {
        let p = FaultPlan::storm(11, 1000);
        for i in 0..50 {
            let k = format!("entry{i}");
            let n = p.failure_count(FaultSite::CacheRead, &k, 3);
            assert!((1..=3).contains(&n), "{n}");
            assert_eq!(n, p.failure_count(FaultSite::CacheRead, &k, 3));
        }
        let off = FaultPlan::new(11);
        assert_eq!(off.failure_count(FaultSite::CacheRead, "x", 3), 0);
    }

    #[test]
    fn armed_sites_report() {
        let p = FaultPlan::new(1)
            .arm(FaultSite::PhasePanic, 250)
            .arm(FaultSite::Miscompile, 1000);
        assert_eq!(
            p.armed_sites(),
            vec![("phase-panic", 250), ("miscompile", 1000)]
        );
    }
}
