//! A dependency-free JSON model for machine-readable reports.
//!
//! Two kinds of objects are distinguished so schemas can be pinned:
//! [`Json::Obj`] has a *fixed* field set (part of the schema), while
//! [`Json::Map`] holds *dynamic* keys (rule names, opcode names) whose
//! value type, not key set, is schema.  [`schema`] renders a canonical
//! type signature; golden tests compare signatures so field renames or
//! type changes are caught while measured values stay free to vary.

use std::fmt;

/// A JSON value with ordered object keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with `.` or exponent; NaN/inf become null).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with a fixed, schema-relevant field set.
    Obj(Vec<(String, Json)>),
    /// An object with dynamic keys (histograms: rule → count, …).
    Map(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an unsigned counter.
    pub fn uint(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    /// The value of a field, for [`Json::Obj`] and [`Json::Map`]
    /// (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) | Json::Map(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string inside a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside a [`Json::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The flag inside a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items inside a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs of a [`Json::Obj`] or [`Json::Map`], in
    /// serialization order.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) | Json::Map(fields) => Some(fields),
            _ => None,
        }
    }
}

fn escape(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => escape(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) | Json::Map(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Renders the canonical type signature of a JSON value.
///
/// * scalars → `null` / `bool` / `int` / `float` / `str`
/// * arrays → `[T]` with `T` the signature of the first element
///   (`[]` when empty); heterogeneous arrays render every distinct
///   signature, comma-separated, in first-occurrence order
/// * fixed objects → `{key:T,…}` with keys in serialization order
/// * dynamic maps → `map<T>` (`map<>` when empty)
pub fn schema(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(_) => "bool".into(),
        Json::Int(_) => "int".into(),
        Json::Float(_) => "float".into(),
        Json::Str(_) => "str".into(),
        Json::Arr(items) => {
            let mut sigs: Vec<String> = Vec::new();
            for item in items {
                let s = schema(item);
                if !sigs.contains(&s) {
                    sigs.push(s);
                }
            }
            format!("[{}]", sigs.join(","))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}:{}", schema(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Json::Map(fields) => match fields.first() {
            Some((_, v)) => format!("map<{}>", schema(v)),
            None => "map<>".into(),
        },
    }
}

/// A minimal validating parser (objects parse as [`Json::Obj`]); used by
/// tests to confirm emitted text is well-formed JSON.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at {}", self.i)),
                    }
                }
            }
            Some(_) => self.number(),
            None => Err("unexpected end".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self.b.get(self.i + 1..self.i + 5).ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    let start = self.i;
                    while self.b.get(self.i).is_some_and(|&c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "invalid utf8")?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|&c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number {text:?} at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Json)]) -> Json {
        Json::Obj(
            fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn serialization_round_trips() {
        let v = obj(&[
            ("id", Json::str("e1")),
            ("n", Json::Int(42)),
            ("x", Json::Float(1.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("note", Json::str("a \"quoted\" line\nnext")),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Int(2).to_string(), "2");
    }

    #[test]
    fn schema_distinguishes_fixed_and_dynamic_objects() {
        let v = obj(&[
            (
                "phases",
                Json::Arr(vec![obj(&[
                    ("phase", Json::str("Preliminary")),
                    ("wall_ns", Json::Int(12)),
                ])]),
            ),
            (
                "rules",
                Json::Map(vec![("META-SUBSTITUTE".into(), Json::Int(3))]),
            ),
        ]);
        assert_eq!(
            schema(&v),
            "{phases:[{phase:str,wall_ns:int}],rules:map<int>}"
        );
        // Different dynamic keys, same schema.
        let v2 = obj(&[
            (
                "phases",
                Json::Arr(vec![obj(&[
                    ("phase", Json::str("Code generation")),
                    ("wall_ns", Json::Int(99)),
                ])]),
            ),
            (
                "rules",
                Json::Map(vec![
                    ("META-CALL-LAMBDA".into(), Json::Int(1)),
                    ("META-IF-DISTRIBUTE".into(), Json::Int(2)),
                ]),
            ),
        ]);
        assert_eq!(schema(&v), schema(&v2));
    }

    #[test]
    fn accessors_navigate_parsed_values() {
        let v = parse(r#"{"name":"f","n":3,"ok":true,"xs":[1,2],"sub":{"k":9}}"#).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("f"));
        assert_eq!(v.get("n").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let sub = v.get("sub").unwrap();
        assert_eq!(sub.get("k").and_then(Json::as_int), Some(9));
        assert_eq!(sub.entries().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Int(1).get("k").is_none());
        assert!(Json::Str("s".into()).as_int().is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nulls").is_err());
        assert!(parse("\"abc").is_err());
    }
}
