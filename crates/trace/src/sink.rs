//! The span/event recording model.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of an open span, returned by [`TraceSink::span_begin`]
/// and consumed by [`TraceSink::span_end`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

impl SpanId {
    /// The id handed out by sinks that record nothing.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// A recording surface for compilation telemetry.
///
/// Phases open a span per unit of work (usually one function), counters
/// attribute to the phase of the innermost open span, and events carry
/// free-form detail (rule firings, packing decisions).  Implementations
/// must tolerate arbitrary nesting and unbalanced counters-outside-spans.
pub trait TraceSink {
    /// Whether this sink records anything.  Phases use this to skip
    /// computing expensive metrics (e.g. conflict-graph edge counts)
    /// when tracing is off.
    fn enabled(&self) -> bool;

    /// Opens a span for `phase` (a Table 1 phase name) over `unit`
    /// (usually a function name).
    fn span_begin(&mut self, phase: &'static str, unit: &str) -> SpanId;

    /// Closes a span, attributing its wall time to the phase.
    fn span_end(&mut self, span: SpanId);

    /// Adds `delta` to the named counter of the innermost open span's
    /// phase.
    fn add(&mut self, counter: &'static str, delta: u64);

    /// Records a free-form event under the innermost open span's phase.
    fn event(&mut self, name: &'static str, detail: &str);
}

/// The default sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn span_begin(&mut self, _phase: &'static str, _unit: &str) -> SpanId {
        SpanId::NONE
    }

    fn span_end(&mut self, _span: SpanId) {}

    fn add(&mut self, _counter: &'static str, _delta: u64) {}

    fn event(&mut self, _name: &'static str, _detail: &str) {}
}

/// Aggregated telemetry for one phase: how many spans ran, their total
/// wall time, and the counter totals attributed to the phase.
#[derive(Clone, Debug)]
pub struct PhaseAgg {
    /// The Table 1 phase name.
    pub phase: &'static str,
    /// Number of spans (units of work, usually functions).
    pub spans: u64,
    /// Total wall time across spans.
    pub wall: Duration,
    /// Counter totals, in first-recorded order.
    pub counters: Vec<(&'static str, u64)>,
}

impl PhaseAgg {
    fn new(phase: &'static str) -> PhaseAgg {
        PhaseAgg {
            phase,
            spans: 0,
            wall: Duration::ZERO,
            counters: Vec::new(),
        }
    }

    /// The value of a counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    fn bump(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 += delta,
            None => self.counters.push((name, delta)),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Phase of the innermost span open at record time (`"(toplevel)"`
    /// if none).
    pub phase: &'static str,
    /// Unit of the innermost span open at record time (empty if none).
    pub unit: String,
    /// Event name.
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// One recorded span: phase, unit, tree position, wall time, and the
/// counters and events attributed to it while it was innermost.
///
/// Unlike [`PhaseAgg`] (which aggregates across every unit), span
/// records keep the per-unit story, so a [`MemorySink`] can answer
/// "Table-1 timing for function F" — the paper's §7 per-function
/// transcript view — instead of only whole-run totals.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// The Table 1 phase name.
    pub phase: &'static str,
    /// The unit of work (usually a function name).
    pub unit: String,
    /// Index of the enclosing span in [`MemorySink::spans`], if nested.
    pub parent: Option<u32>,
    /// Wall time between begin and end (zero while still open).
    pub wall: Duration,
    /// Counters attributed while this span was innermost.
    pub counters: Vec<(&'static str, u64)>,
    /// Events attributed while this span was innermost.
    pub events: Vec<(&'static str, String)>,
    /// Whether the span was closed.
    pub closed: bool,
}

impl SpanRec {
    /// The value of a counter on this span (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }
}

struct OpenSpan {
    phase_idx: usize,
    start: Instant,
}

impl fmt::Debug for OpenSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpenSpan(phase {})", self.phase_idx)
    }
}

/// A sink that aggregates spans per phase, keeps the event log, and
/// retains every span as a [`SpanRec`] for per-unit queries.
#[derive(Debug, Default)]
pub struct MemorySink {
    phases: Vec<PhaseAgg>,
    index: HashMap<&'static str, usize>,
    arena: Vec<OpenSpan>,
    records: Vec<SpanRec>,
    open: Vec<u32>,
    /// Every recorded event, in order.
    pub events: Vec<Event>,
}

/// Counters recorded outside any span land on this pseudo-phase.
pub(crate) const TOPLEVEL: &str = "(toplevel)";

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    fn phase_idx(&mut self, phase: &'static str) -> usize {
        if let Some(&i) = self.index.get(phase) {
            return i;
        }
        let i = self.phases.len();
        self.phases.push(PhaseAgg::new(phase));
        self.index.insert(phase, i);
        i
    }

    fn innermost(&mut self) -> usize {
        match self.open.last() {
            Some(&s) => self.arena[s as usize].phase_idx,
            None => self.phase_idx(TOPLEVEL),
        }
    }

    /// All phase aggregates, in first-seen (pipeline) order.
    pub fn phases(&self) -> &[PhaseAgg] {
        &self.phases
    }

    /// The aggregate for one phase, if any span of it ran.
    pub fn phase(&self, name: &str) -> Option<&PhaseAgg> {
        self.index.get(name).map(|&i| &self.phases[i])
    }

    /// The total of `counter` under `phase` (0 if absent).
    pub fn counter(&self, phase: &str, counter: &str) -> u64 {
        self.phase(phase).map_or(0, |p| p.counter(counter))
    }

    /// Every recorded span, in begin order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.records
    }

    /// The distinct units spans were opened over, in first-seen order.
    pub fn units(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.unit.as_str()) {
                out.push(&r.unit);
            }
        }
        out
    }

    /// Per-phase aggregates restricted to the spans of one unit, in the
    /// unit's own pipeline order — the Table-1 timing table for a single
    /// function.
    pub fn unit_phases(&self, unit: &str) -> Vec<PhaseAgg> {
        let mut out: Vec<PhaseAgg> = Vec::new();
        for r in self.records.iter().filter(|r| r.unit == unit) {
            let agg = match out.iter_mut().find(|p| p.phase == r.phase) {
                Some(a) => a,
                None => {
                    out.push(PhaseAgg::new(r.phase));
                    out.last_mut().expect("just pushed")
                }
            };
            agg.spans += 1;
            agg.wall += r.wall;
            for &(name, delta) in &r.counters {
                agg.bump(name, delta);
            }
        }
        out
    }

    /// Event details named `name` recorded under any span of `unit`, in
    /// record order.
    pub fn unit_events(&self, unit: &str, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for r in self.records.iter().filter(|r| r.unit == unit) {
            for (n, detail) in &r.events {
                if *n == name {
                    out.push(detail.as_str());
                }
            }
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&mut self, phase: &'static str, unit: &str) -> SpanId {
        let phase_idx = self.phase_idx(phase);
        let id = self.arena.len() as u32;
        self.arena.push(OpenSpan {
            phase_idx,
            start: Instant::now(),
        });
        self.records.push(SpanRec {
            phase,
            unit: unit.to_string(),
            parent: self.open.last().copied(),
            wall: Duration::ZERO,
            counters: Vec::new(),
            events: Vec::new(),
            closed: false,
        });
        self.open.push(id);
        SpanId(id)
    }

    fn span_end(&mut self, span: SpanId) {
        if span == SpanId::NONE {
            return;
        }
        let elapsed = self.arena[span.0 as usize].start.elapsed();
        let idx = self.arena[span.0 as usize].phase_idx;
        self.phases[idx].spans += 1;
        self.phases[idx].wall += elapsed;
        let rec = &mut self.records[span.0 as usize];
        rec.wall = elapsed;
        rec.closed = true;
        // Tolerate out-of-order ends: drop the span wherever it sits.
        if let Some(pos) = self.open.iter().rposition(|&s| s == span.0) {
            self.open.remove(pos);
        }
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        let idx = self.innermost();
        self.phases[idx].bump(counter, delta);
        if let Some(&s) = self.open.last() {
            let rec = &mut self.records[s as usize];
            match rec.counters.iter_mut().find(|(n, _)| *n == counter) {
                Some(slot) => slot.1 += delta,
                None => rec.counters.push((counter, delta)),
            }
        }
    }

    fn event(&mut self, name: &'static str, detail: &str) {
        let idx = self.innermost();
        let phase = self.phases[idx].phase;
        let unit = match self.open.last() {
            Some(&s) => {
                let rec = &mut self.records[s as usize];
                rec.events.push((name, detail.to_string()));
                rec.unit.clone()
            }
            None => String::new(),
        };
        self.events.push(Event {
            phase,
            unit,
            name,
            detail: detail.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_inert() {
        let mut s = NullSink;
        assert!(!s.enabled());
        let sp = s.span_begin("Code generation", "f");
        assert_eq!(sp, SpanId::NONE);
        s.add("tns", 3);
        s.event("note", "nothing");
        s.span_end(sp);
    }

    #[test]
    fn memory_sink_aggregates_spans_and_counters() {
        let mut s = MemorySink::new();
        assert!(s.enabled());
        for unit in ["f", "g"] {
            let sp = s.span_begin("Target annotation", unit);
            s.add("tns", 4);
            s.add("in_registers", 2);
            s.span_end(sp);
        }
        let agg = s.phase("Target annotation").unwrap();
        assert_eq!(agg.spans, 2);
        assert_eq!(agg.counter("tns"), 8);
        assert_eq!(agg.counter("in_registers"), 4);
        assert_eq!(agg.counter("missing"), 0);
        assert_eq!(s.counter("Target annotation", "tns"), 8);
    }

    #[test]
    fn counters_attribute_to_innermost_span() {
        let mut s = MemorySink::new();
        let outer = s.span_begin("Code generation", "f");
        let inner = s.span_begin("Target annotation", "f");
        s.add("tns", 1);
        s.span_end(inner);
        s.add("coercions", 5);
        s.span_end(outer);
        assert_eq!(s.counter("Target annotation", "tns"), 1);
        assert_eq!(s.counter("Code generation", "coercions"), 5);
        // Outside any span: the toplevel pseudo-phase.
        s.add("stray", 7);
        assert_eq!(s.counter(TOPLEVEL, "stray"), 7);
    }

    #[test]
    fn events_carry_their_phase() {
        let mut s = MemorySink::new();
        let sp = s.span_begin("Source-level optimization", "f");
        s.event("rule", "META-SUBSTITUTE");
        s.span_end(sp);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].phase, "Source-level optimization");
        assert_eq!(s.events[0].unit, "f");
        assert_eq!(s.events[0].detail, "META-SUBSTITUTE");
    }

    #[test]
    fn span_records_keep_the_per_unit_story() {
        let mut s = MemorySink::new();
        for unit in ["f", "g"] {
            let sp = s.span_begin("Source-level optimization", unit);
            s.add("transformations", 3);
            s.span_end(sp);
            let sp = s.span_begin("Code generation", unit);
            s.add("insns_emitted", 10);
            s.event("coercion", "Swflo->Pointer");
            s.span_end(sp);
        }
        // Whole-run aggregates still sum across units...
        assert_eq!(s.counter("Code generation", "insns_emitted"), 20);
        // ...while the per-unit view keeps them separate.
        assert_eq!(s.units(), vec!["f", "g"]);
        let f = s.unit_phases("f");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].phase, "Source-level optimization");
        assert_eq!(f[0].counter("transformations"), 3);
        assert_eq!(f[1].counter("insns_emitted"), 10);
        assert_eq!(s.unit_events("g", "coercion"), vec!["Swflo->Pointer"]);
        assert!(s.unit_events("g", "missing").is_empty());
        assert!(s.unit_phases("h").is_empty());
    }

    #[test]
    fn nested_spans_record_parents() {
        let mut s = MemorySink::new();
        let outer = s.span_begin("Code generation", "f");
        let inner = s.span_begin("Target annotation", "f");
        s.span_end(inner);
        s.span_end(outer);
        let spans = s.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert!(spans[0].closed && spans[1].closed);
        // Same-phase spans of one unit aggregate in unit_phases.
        let sp2 = s.span_begin("Code generation", "f");
        s.add("insns_emitted", 4);
        s.span_end(sp2);
        let phases = s.unit_phases("f");
        assert_eq!(phases[0].spans, 2);
        assert_eq!(phases[0].counter("insns_emitted"), 4);
    }
}
