//! The span/event recording model.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of an open span, returned by [`TraceSink::span_begin`]
/// and consumed by [`TraceSink::span_end`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

impl SpanId {
    /// The id handed out by sinks that record nothing.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// A recording surface for compilation telemetry.
///
/// Phases open a span per unit of work (usually one function), counters
/// attribute to the phase of the innermost open span, and events carry
/// free-form detail (rule firings, packing decisions).  Implementations
/// must tolerate arbitrary nesting and unbalanced counters-outside-spans.
pub trait TraceSink {
    /// Whether this sink records anything.  Phases use this to skip
    /// computing expensive metrics (e.g. conflict-graph edge counts)
    /// when tracing is off.
    fn enabled(&self) -> bool;

    /// Opens a span for `phase` (a Table 1 phase name) over `unit`
    /// (usually a function name).
    fn span_begin(&mut self, phase: &'static str, unit: &str) -> SpanId;

    /// Closes a span, attributing its wall time to the phase.
    fn span_end(&mut self, span: SpanId);

    /// Adds `delta` to the named counter of the innermost open span's
    /// phase.
    fn add(&mut self, counter: &'static str, delta: u64);

    /// Records a free-form event under the innermost open span's phase.
    fn event(&mut self, name: &'static str, detail: &str);
}

/// The default sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn span_begin(&mut self, _phase: &'static str, _unit: &str) -> SpanId {
        SpanId::NONE
    }

    fn span_end(&mut self, _span: SpanId) {}

    fn add(&mut self, _counter: &'static str, _delta: u64) {}

    fn event(&mut self, _name: &'static str, _detail: &str) {}
}

/// Aggregated telemetry for one phase: how many spans ran, their total
/// wall time, and the counter totals attributed to the phase.
#[derive(Clone, Debug)]
pub struct PhaseAgg {
    /// The Table 1 phase name.
    pub phase: &'static str,
    /// Number of spans (units of work, usually functions).
    pub spans: u64,
    /// Total wall time across spans.
    pub wall: Duration,
    /// Counter totals, in first-recorded order.
    pub counters: Vec<(&'static str, u64)>,
}

impl PhaseAgg {
    fn new(phase: &'static str) -> PhaseAgg {
        PhaseAgg {
            phase,
            spans: 0,
            wall: Duration::ZERO,
            counters: Vec::new(),
        }
    }

    /// The value of a counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    fn bump(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 += delta,
            None => self.counters.push((name, delta)),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Phase of the innermost span open at record time (`"(toplevel)"`
    /// if none).
    pub phase: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
}

struct OpenSpan {
    phase_idx: usize,
    start: Instant,
}

impl fmt::Debug for OpenSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpenSpan(phase {})", self.phase_idx)
    }
}

/// A sink that aggregates spans per phase and keeps the event log.
#[derive(Debug, Default)]
pub struct MemorySink {
    phases: Vec<PhaseAgg>,
    index: HashMap<&'static str, usize>,
    arena: Vec<OpenSpan>,
    open: Vec<u32>,
    /// Every recorded event, in order.
    pub events: Vec<Event>,
}

/// Counters recorded outside any span land on this pseudo-phase.
pub(crate) const TOPLEVEL: &str = "(toplevel)";

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    fn phase_idx(&mut self, phase: &'static str) -> usize {
        if let Some(&i) = self.index.get(phase) {
            return i;
        }
        let i = self.phases.len();
        self.phases.push(PhaseAgg::new(phase));
        self.index.insert(phase, i);
        i
    }

    fn innermost(&mut self) -> usize {
        match self.open.last() {
            Some(&s) => self.arena[s as usize].phase_idx,
            None => self.phase_idx(TOPLEVEL),
        }
    }

    /// All phase aggregates, in first-seen (pipeline) order.
    pub fn phases(&self) -> &[PhaseAgg] {
        &self.phases
    }

    /// The aggregate for one phase, if any span of it ran.
    pub fn phase(&self, name: &str) -> Option<&PhaseAgg> {
        self.index.get(name).map(|&i| &self.phases[i])
    }

    /// The total of `counter` under `phase` (0 if absent).
    pub fn counter(&self, phase: &str, counter: &str) -> u64 {
        self.phase(phase).map_or(0, |p| p.counter(counter))
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&mut self, phase: &'static str, _unit: &str) -> SpanId {
        let phase_idx = self.phase_idx(phase);
        let id = self.arena.len() as u32;
        self.arena.push(OpenSpan {
            phase_idx,
            start: Instant::now(),
        });
        self.open.push(id);
        SpanId(id)
    }

    fn span_end(&mut self, span: SpanId) {
        if span == SpanId::NONE {
            return;
        }
        let elapsed = self.arena[span.0 as usize].start.elapsed();
        let idx = self.arena[span.0 as usize].phase_idx;
        self.phases[idx].spans += 1;
        self.phases[idx].wall += elapsed;
        // Tolerate out-of-order ends: drop the span wherever it sits.
        if let Some(pos) = self.open.iter().rposition(|&s| s == span.0) {
            self.open.remove(pos);
        }
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        let idx = self.innermost();
        self.phases[idx].bump(counter, delta);
    }

    fn event(&mut self, name: &'static str, detail: &str) {
        let idx = self.innermost();
        let phase = self.phases[idx].phase;
        self.events.push(Event {
            phase,
            name,
            detail: detail.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_inert() {
        let mut s = NullSink;
        assert!(!s.enabled());
        let sp = s.span_begin("Code generation", "f");
        assert_eq!(sp, SpanId::NONE);
        s.add("tns", 3);
        s.event("note", "nothing");
        s.span_end(sp);
    }

    #[test]
    fn memory_sink_aggregates_spans_and_counters() {
        let mut s = MemorySink::new();
        assert!(s.enabled());
        for unit in ["f", "g"] {
            let sp = s.span_begin("Target annotation", unit);
            s.add("tns", 4);
            s.add("in_registers", 2);
            s.span_end(sp);
        }
        let agg = s.phase("Target annotation").unwrap();
        assert_eq!(agg.spans, 2);
        assert_eq!(agg.counter("tns"), 8);
        assert_eq!(agg.counter("in_registers"), 4);
        assert_eq!(agg.counter("missing"), 0);
        assert_eq!(s.counter("Target annotation", "tns"), 8);
    }

    #[test]
    fn counters_attribute_to_innermost_span() {
        let mut s = MemorySink::new();
        let outer = s.span_begin("Code generation", "f");
        let inner = s.span_begin("Target annotation", "f");
        s.add("tns", 1);
        s.span_end(inner);
        s.add("coercions", 5);
        s.span_end(outer);
        assert_eq!(s.counter("Target annotation", "tns"), 1);
        assert_eq!(s.counter("Code generation", "coercions"), 5);
        // Outside any span: the toplevel pseudo-phase.
        s.add("stray", 7);
        assert_eq!(s.counter(TOPLEVEL, "stray"), 7);
    }

    #[test]
    fn events_carry_their_phase() {
        let mut s = MemorySink::new();
        let sp = s.span_begin("Source-level optimization", "f");
        s.event("rule", "META-SUBSTITUTE");
        s.span_end(sp);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].phase, "Source-level optimization");
        assert_eq!(s.events[0].detail, "META-SUBSTITUTE");
    }
}
