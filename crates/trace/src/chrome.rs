//! Chrome trace-event export: renders span trees as the JSON array
//! form of the [trace-event format] that `chrome://tracing`, Perfetto,
//! and speedscope all load.
//!
//! Every event is a *complete* event (`"ph":"X"`) with the six required
//! fields `name`/`ph`/`ts`/`dur`/`pid`/`tid` plus an `args` object
//! carrying the unit and the span's counters.  A [`MemorySink`] records
//! relative wall durations but no absolute timestamps, so the exporter
//! *synthesizes* a deterministic timeline: sibling spans are laid out
//! sequentially starting at their parent's timestamp (roots start at
//! zero), and a parent's rendered duration is stretched to contain its
//! children when timing jitter makes the recorded spans overlap.  Two
//! exports of the same span tree therefore produce identical ids and
//! identical ordering — only the durations vary with the host clock.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;
use crate::sink::MemorySink;

/// One complete (`"ph":"X"`) trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (a phase or job label).
    pub name: String,
    /// Synthesized start timestamp, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Process id lane (one per exported subsystem).
    pub pid: u64,
    /// Thread id lane (0 for the single-threaded pipeline; worker index
    /// for driver timelines).
    pub tid: u64,
    /// The unit of work (usually a function name), carried in `args`.
    pub unit: String,
    /// Counters attributed to the span, carried in `args`.
    pub counters: Vec<(String, u64)>,
}

impl TraceEvent {
    /// The event as a trace-event JSON object with the fixed field set
    /// `name`/`ph`/`ts`/`dur`/`pid`/`tid`/`args`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::uint(*value)))
            .collect();
        let args = Json::Obj(vec![
            ("unit".to_string(), Json::str(&self.unit)),
            ("counters".to_string(), Json::Map(counters)),
        ]);
        Json::Obj(vec![
            ("name".to_string(), Json::str(&self.name)),
            ("ph".to_string(), Json::str("X")),
            ("ts".to_string(), Json::uint(self.ts_us)),
            ("dur".to_string(), Json::uint(self.dur_us)),
            ("pid".to_string(), Json::uint(self.pid)),
            ("tid".to_string(), Json::uint(self.tid)),
            ("args".to_string(), args),
        ])
    }
}

/// Renders `events` as the trace-event JSON array (the form
/// about:tracing and Perfetto open directly).
pub fn trace_json(events: &[TraceEvent]) -> Json {
    Json::Arr(events.iter().map(TraceEvent::to_json).collect())
}

/// Lays a span forest out on a synthetic timeline.
///
/// `spans` is `(parent index, wall microseconds)` in begin order (every
/// parent precedes its children, as [`MemorySink::spans`] guarantees).
/// Returns `(ts, dur)` per span: siblings are placed sequentially from
/// their parent's start (roots from zero), and each span's rendered
/// duration is `max(own wall, sum of child durations)` so nesting stays
/// containment-valid even when recorded child times exceed the parent's.
pub fn layout_spans(spans: &[(Option<u32>, u64)]) -> Vec<(u64, u64)> {
    let n = spans.len();
    // Rendered durations, children first (parents precede children, so
    // a reverse scan sees every child before its parent).
    let mut dur: Vec<u64> = spans.iter().map(|&(_, wall)| wall).collect();
    let mut child_sum = vec![0u64; n];
    for i in (0..n).rev() {
        dur[i] = dur[i].max(child_sum[i]);
        if let Some(p) = spans[i].0 {
            child_sum[p as usize] += dur[i];
        }
    }
    // Timestamps, parents first: each node advances its parent's child
    // cursor (roots advance a shared toplevel cursor).
    let mut ts = vec![0u64; n];
    let mut cursor = vec![0u64; n];
    let mut root_cursor = 0u64;
    for i in 0..n {
        match spans[i].0 {
            Some(p) => {
                ts[i] = cursor[p as usize];
                cursor[p as usize] += dur[i];
            }
            None => {
                ts[i] = root_cursor;
                root_cursor += dur[i];
            }
        }
        cursor[i] = ts[i];
    }
    ts.into_iter().zip(dur).collect()
}

/// Renders a [`MemorySink`]'s span tree as complete events on `pid`
/// lane `tid`, one event per recorded span in begin order, named by
/// phase, with the unit and counters in `args`.
pub fn sink_events(sink: &MemorySink, pid: u64, tid: u64) -> Vec<TraceEvent> {
    let spans = sink.spans();
    let shape: Vec<(Option<u32>, u64)> = spans
        .iter()
        .map(|s| (s.parent, s.wall.as_micros() as u64))
        .collect();
    let placed = layout_spans(&shape);
    spans
        .iter()
        .zip(placed)
        .map(|(s, (ts_us, dur_us))| TraceEvent {
            name: s.phase.to_string(),
            ts_us,
            dur_us,
            pid,
            tid,
            unit: s.unit.clone(),
            counters: s
                .counters
                .iter()
                .map(|&(name, value)| (name.to_string(), value))
                .collect(),
        })
        .collect()
}

/// Validates that `json` is a trace-event array: every element must
/// carry the six required fields (`name`, `ph`, `ts`, `dur`, `pid`,
/// `tid`).  Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformed event.
pub fn validate_trace(json: &Json) -> Result<usize, String> {
    let Json::Arr(events) = json else {
        return Err("trace is not a JSON array".to_string());
    };
    for (i, event) in events.iter().enumerate() {
        for field in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if event.get(field).is_none() {
                return Err(format!("event {i} is missing required field {field:?}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    #[test]
    fn layout_places_siblings_sequentially_inside_their_parent() {
        // root(10) { a(3), b(4) }, root2(5)
        let spans = [(None, 10), (Some(0), 3), (Some(0), 4), (None, 5)];
        let placed = layout_spans(&spans);
        assert_eq!(placed, vec![(0, 10), (0, 3), (3, 4), (10, 5)]);
    }

    #[test]
    fn layout_stretches_parents_to_contain_their_children() {
        // Parent recorded 2us but its children total 9us.
        let spans = [(None, 2), (Some(0), 4), (Some(0), 5), (None, 1)];
        let placed = layout_spans(&spans);
        assert_eq!(placed[0], (0, 9));
        assert_eq!(placed[3], (9, 1));
    }

    #[test]
    fn sink_export_is_deterministic_and_valid() {
        let mut s = MemorySink::new();
        let outer = s.span_begin("Code generation", "f");
        let inner = s.span_begin("Target annotation", "f");
        s.add("tns", 3);
        s.span_end(inner);
        s.span_end(outer);
        let events = sink_events(&s, 1, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "Code generation");
        assert_eq!(events[1].name, "Target annotation");
        assert_eq!(events[1].counters, vec![("tns".to_string(), 3)]);
        // Exporting twice yields identical structure.
        assert_eq!(events, sink_events(&s, 1, 0));
        let json = trace_json(&events);
        assert_eq!(validate_trace(&json).unwrap(), 2);
    }

    #[test]
    fn validate_rejects_missing_fields() {
        let json = Json::Arr(vec![Json::Obj(vec![("name".to_string(), Json::str("x"))])]);
        let err = validate_trace(&json).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");
        assert!(validate_trace(&Json::Int(3)).is_err());
    }
}
