//! A tiny deterministic PRNG (SplitMix64).
//!
//! The workspace's property tests and fuzz loops run offline and must
//! not depend on external crates; this generator is small, fast, and
//! reproducible from a seed, which also makes failures replayable.

/// SplitMix64 — Steele, Lea & Flood's statistically solid 64-bit mixer.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per
        // draw, far under what property tests can observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A signed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi.wrapping_sub(lo) as u64) as i64
    }

    /// A usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A "normal-ish" finite float spanning many magnitudes: a uniform
    /// mantissa scaled by a random power of two in `[-60, 60]`, with
    /// random sign.  Never NaN, infinite, or subnormal-extreme.
    pub fn wide_f64(&mut self) -> f64 {
        let mantissa = self.f64() + 0.5; // [0.5, 1.5)
        let exp = self.range_i64(-60, 61) as i32;
        let sign = if self.below(2) == 0 { 1.0 } else { -1.0 };
        sign * mantissa * exp2(exp)
    }

    /// One element of a slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

fn exp2(e: i32) -> f64 {
    (e as f64).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let u = r.below(3);
            assert!(u < 3);
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let w = r.wide_f64();
            assert!(w.is_finite() && w != 0.0);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
