//! Pdl number annotation (§6.3).
//!
//! "A lifetime analysis of those numerical quantities that must be
//! converted to pointer form determines when stack allocation may be used
//! rather than heap allocation."  Two flags per node, computed in a
//! combined top-down/bottom-up walk (the paper's "outorder" tree walk):
//!
//! * **PDLOKP** — "whether the node's parent is willing to accept a pdl
//!   number (unsafe pointer) as the result of this node."  More than a
//!   flag: "if not false, it points to the node that originally
//!   authorized the use of a pdl number" — the value's required lifetime.
//! * **PDLNUMP** — "whether the node itself might be inclined to produce
//!   a pdl number."
//!
//! A node whose PDLOKP is non-false, whose PDLNUMP is true, whose WANTREP
//! is POINTER, and whose ISREP is a boxable numeric representation gets a
//! stack slot instead of a heap box.

use std::collections::{HashMap, HashSet};

use s1lisp_analysis::primop;
use s1lisp_ast::{CallFunc, NodeId, NodeKind, ProgItem, Tree};

use crate::binding::{BindingInfo, VarAlloc};
use crate::rep::{Rep, RepInfo};

/// The results of pdl-number annotation.
#[derive(Clone, Debug, Default)]
pub struct PdlInfo {
    /// PDLOKP: the authorizing node, if any ("the lifetime of the pdl
    /// number must extend at least until execution of the \[authorizing\]
    /// node").
    pub pdlokp: HashMap<NodeId, Option<NodeId>>,
    /// PDLNUMP: might this node produce a pdl number?
    pub pdlnump: HashMap<NodeId, bool>,
    /// Nodes whose raw-number→pointer coercion may allocate on the
    /// stack.
    pub stack_boxes: HashSet<NodeId>,
    /// Nodes whose value might be an unsafe (stack) pointer — the
    /// certification analysis: such values must be certified before
    /// reaching an unsafe operation or being returned.
    pub maybe_unsafe: HashMap<NodeId, bool>,
}

impl PdlInfo {
    /// Whether the coercion at `node` may stack-allocate.
    pub fn stack_box(&self, node: NodeId) -> bool {
        self.stack_boxes.contains(&node)
    }

    /// Whether the value of `node` might be an unsafe pointer.
    pub fn unsafe_p(&self, node: NodeId) -> bool {
        self.maybe_unsafe.get(&node).copied().unwrap_or(false)
    }
}

/// Runs pdl-number annotation.
pub fn pdl_annotation(tree: &Tree, binding: &BindingInfo, rep: &RepInfo) -> PdlInfo {
    let mut info = PdlInfo::default();
    okp_pass(tree, tree.root, None, binding, &mut info);
    nump_pass(tree, tree.root, binding, rep, &mut info);
    // "The TNBIND phase was then modified to attach an extra TN to a node
    // when all of the following conditions hold" (§6.3):
    for (&node, &auth) in &info.pdlokp {
        if auth.is_none() {
            continue;
        }
        if !info.pdlnump.get(&node).copied().unwrap_or(false) {
            continue;
        }
        if rep.want(node) != Rep::Pointer {
            continue;
        }
        if !rep.is(node).is_raw_numeric() || rep.is(node) == Rep::Swfix {
            // Fixnums are immediate in this implementation: no box at
            // all, so no pdl slot either.
            continue;
        }
        info.stack_boxes.insert(node);
    }
    info
}

/// Top-down PDLOKP pass.
fn okp_pass(
    tree: &Tree,
    node: NodeId,
    auth: Option<NodeId>,
    binding: &BindingInfo,
    info: &mut PdlInfo,
) {
    info.pdlokp.insert(node, auth);
    match tree.kind(node) {
        NodeKind::Constant(_) | NodeKind::VarRef(_) | NodeKind::Go(_) => {}
        NodeKind::Setq { var, value } => {
            // Storing into a stack variable keeps the pointer within the
            // frame; storing into a heap cell or a special publishes it.
            let ok = binding.var_alloc.get(var) == Some(&VarAlloc::Stack);
            okp_pass(tree, *value, ok.then_some(node), binding, info);
        }
        NodeKind::If { test, then, els } => {
            // "The processing of an if node simply passes the PDLOKP
            // authorization of its parent down to the two arms …  On the
            // other hand, it always of itself authorizes the predicate
            // computation, because the conditional test performed by if
            // is a safe operation."
            okp_pass(tree, *test, Some(node), binding, info);
            okp_pass(tree, *then, auth, binding, info);
            okp_pass(tree, *els, auth, binding, info);
        }
        NodeKind::Progn(body) => {
            let (last, init) = body.split_last().expect("non-empty");
            for &b in init {
                okp_pass(tree, b, Some(node), binding, info);
            }
            okp_pass(tree, *last, auth, binding, info);
        }
        NodeKind::Call { func, args } => match func {
            CallFunc::Global(g) => {
                // "in the context (+$f x y), the node for x is permitted
                // to produce a pdl number … in (rplaca x y), y may not."
                // Passing a pointer to a user procedure is safe.
                let safe = primop(g.as_str()).map(|p| p.pdl_safe).unwrap_or(true);
                for &a in args {
                    okp_pass(tree, a, safe.then_some(node), binding, info);
                }
            }
            CallFunc::Expr(f) => {
                if let NodeKind::Lambda(l) = tree.kind(*f) {
                    // A let: each init binds a variable; stack variables
                    // may hold pdl numbers for the whole let.
                    info.pdlokp.insert(*f, None);
                    for (j, &a) in args.iter().enumerate() {
                        let ok = l
                            .required
                            .get(j)
                            .map(|v| binding.var_alloc.get(v) == Some(&VarAlloc::Stack))
                            .unwrap_or(false);
                        okp_pass(tree, a, ok.then_some(node), binding, info);
                    }
                    for opt in &l.optional {
                        okp_pass(tree, opt.default, None, binding, info);
                    }
                    okp_pass(tree, l.body, auth, binding, info);
                } else {
                    okp_pass(tree, *f, Some(node), binding, info);
                    for &a in args {
                        okp_pass(tree, a, Some(node), binding, info);
                    }
                }
            }
        },
        NodeKind::Lambda(l) => {
            // A closure body runs at an unknown time: nothing in it may
            // rely on the current frame's pdl slots.
            for opt in &l.optional {
                okp_pass(tree, opt.default, None, binding, info);
            }
            okp_pass(tree, l.body, None, binding, info);
        }
        NodeKind::Caseq {
            key,
            clauses,
            default,
        } => {
            okp_pass(tree, *key, Some(node), binding, info);
            for c in clauses {
                okp_pass(tree, c.body, auth, binding, info);
            }
            okp_pass(tree, *default, auth, binding, info);
        }
        NodeKind::Catcher { tag, body } => {
            okp_pass(tree, *tag, Some(node), binding, info);
            // Thrown/caught values escape the expression context.
            okp_pass(tree, *body, None, binding, info);
        }
        NodeKind::Progbody(items) => {
            for item in items {
                if let ProgItem::Stmt(s) = item {
                    okp_pass(tree, *s, Some(node), binding, info);
                }
            }
        }
        NodeKind::Return(v) => {
            // The returned value leaves the progbody; give it the
            // progbody's own authorization (none if the progbody's value
            // escapes the function).
            okp_pass(tree, *v, None, binding, info);
        }
    }
}

/// Bottom-up PDLNUMP / maybe-unsafe pass.
fn nump_pass(
    tree: &Tree,
    node: NodeId,
    binding: &BindingInfo,
    rep: &RepInfo,
    info: &mut PdlInfo,
) -> (bool, bool) {
    let mut child_results = Vec::new();
    for c in tree.children(node) {
        child_results.push((c, nump_pass(tree, c, binding, rep, info)));
    }
    let get = |n: NodeId, results: &[(NodeId, (bool, bool))]| {
        results
            .iter()
            .find(|(id, _)| *id == n)
            .map(|(_, r)| *r)
            .unwrap_or((false, false))
    };
    let (nump, unsafe_p) = match tree.kind(node) {
        NodeKind::Constant(_) => (false, false),
        // Any pointer-holding stack variable might hold a pdl number
        // (the calling convention lets callers pass them in); and a
        // *raw-representation* variable produces one when a pointer is
        // required (the box happens at the reference).
        NodeKind::VarRef(v) => {
            let stack = binding.var_alloc.get(v) == Some(&VarAlloc::Stack);
            let raw = rep.var_rep.get(v).copied().unwrap_or(Rep::Pointer);
            let produces = raw.is_raw_numeric() && raw != Rep::Swfix;
            (produces, stack)
        }
        NodeKind::Setq { value, .. } => get(*value, &child_results),
        NodeKind::If { then, els, .. } => {
            let (n1, u1) = get(*then, &child_results);
            let (n2, u2) = get(*els, &child_results);
            (n1 || n2, u1 || u2)
        }
        NodeKind::Progn(body) => get(*body.last().expect("non-empty"), &child_results),
        NodeKind::Call { func, args: _ } => match func {
            CallFunc::Global(g) => match primop(g.as_str()) {
                // "the result of (+$f x y) might well be a pdl number if
                // a pointer result is required.  On the other hand, the
                // result of (car x) is never a pdl number."  Generic
                // operations lowered by type deduction count too.
                Some(p) => {
                    let numeric = typedish(g.as_str())
                        || (rep.is(node).is_raw_numeric() && rep.is(node) != Rep::Swfix);
                    (numeric, numeric && p.pdl_safe)
                }
                // "values returned by procedures … are guaranteed safe".
                None => (false, false),
            },
            CallFunc::Expr(f) => {
                if let NodeKind::Lambda(l) = tree.kind(*f) {
                    get(l.body, &child_results)
                } else {
                    (false, false)
                }
            }
        },
        NodeKind::Caseq {
            clauses, default, ..
        } => {
            let mut acc = get(*default, &child_results);
            for c in clauses {
                let r = get(c.body, &child_results);
                acc = (acc.0 || r.0, acc.1 || r.1);
            }
            acc
        }
        _ => (false, false),
    };
    info.pdlnump.insert(node, nump);
    info.maybe_unsafe.insert(node, unsafe_p);
    (nump, unsafe_p)
}

/// Operations producing raw numbers that would need boxing (known
/// primitives only).
fn typedish(name: &str) -> bool {
    primop(name).is_some() && (name.ends_with("$f") || name.ends_with('&'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::binding_annotation;
    use crate::rep::rep_annotation;
    use s1lisp_ast::subtree_nodes;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn annotate(src: &str) -> (Tree, PdlInfo) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let b = binding_annotation(&f.tree);
        let r = rep_annotation(&f.tree, &b);
        let p = pdl_annotation(&f.tree, &b, &r);
        (f.tree, p)
    }

    fn find_call(tree: &Tree, name: &str) -> NodeId {
        subtree_nodes(tree, tree.root)
            .into_iter()
            .find(|&n| {
                matches!(tree.kind(n), NodeKind::Call { func: CallFunc::Global(g), .. }
                         if g.as_str() == name)
            })
            .unwrap()
    }

    #[test]
    fn let_bound_float_temporaries_stack_allocate() {
        // The testfn shape: d and e are pdl numbers (Table 4 installs
        // them in PDL slots).  With variable-representation inference the
        // variables themselves hold raw floats and the pdl boxes happen
        // at the pointer-requiring references (the frotz arguments).
        let (tree, p) =
            annotate("(defun f (a b) (let ((d (+$f a b)) (e (*$f a b))) (frotz d e) '()))");
        let frotz = find_call(&tree, "frotz");
        let NodeKind::Call { args, .. } = tree.kind(frotz).clone() else {
            panic!()
        };
        assert!(p.stack_box(args[0]), "d's reference boxes on the stack");
        assert!(p.stack_box(args[1]), "e's reference boxes on the stack");
        // The initializing calls feed raw slots: no box there at all.
        assert!(!p.stack_box(find_call(&tree, "+$f")));
    }

    #[test]
    fn returned_value_heap_allocates() {
        let (tree, p) = annotate("(defun f (a b) (+$f a b))");
        let call = find_call(&tree, "+$f");
        assert_eq!(p.pdlokp[&call], None);
        assert!(!p.stack_box(call));
    }

    #[test]
    fn unsafe_operation_argument_heap_allocates() {
        let (tree, p) = annotate("(defun f (x a b) (rplaca x (+$f a b)) x)");
        let call = find_call(&tree, "+$f");
        assert_eq!(p.pdlokp[&call], None);
        assert!(!p.stack_box(call));
    }

    #[test]
    fn atan_authorizes_through_the_conditional() {
        // "in (atan (if p x y) 3.0), x has a non-false PDLOKP property
        // that points to the atan node, not the if node."
        let (tree, p) = annotate("(defun f (p x y) (atan (if p (+$f x x) (+$f y y)) 3.0) '())");
        let atan = find_call(&tree, "atan");
        let NodeKind::Call { args, .. } = tree.kind(atan) else {
            panic!()
        };
        let if_node = args[0];
        let NodeKind::If { then, .. } = *tree.kind(if_node) else {
            panic!()
        };
        assert_eq!(p.pdlokp[&then], Some(atan), "authorizer is atan, not if");
        // And the predicate is authorized by the if itself.
        let NodeKind::If { test, .. } = *tree.kind(if_node) else {
            panic!()
        };
        assert_eq!(p.pdlokp[&test], Some(if_node));
    }

    #[test]
    fn closure_bodies_get_no_authorization() {
        let (tree, p) = annotate("(defun f (a) (frotz (lambda () (+$f a a))) '())");
        let call = find_call(&tree, "+$f");
        assert!(!p.stack_box(call));
    }

    #[test]
    fn car_never_produces_pdl_numbers() {
        let (tree, p) = annotate("(defun f (x) (frotz (car x)) '())");
        let car = find_call(&tree, "car");
        assert!(!p.pdlnump[&car]);
    }

    #[test]
    fn argument_variables_are_maybe_unsafe() {
        // Callers may pass pdl pointers: storing an argument into the
        // heap requires certification.
        let (tree, p) = annotate("(defun f (x y) (rplaca x y))");
        let NodeKind::Call { args, .. } = tree.kind(find_call(&tree, "rplaca")).clone() else {
            panic!()
        };
        assert!(p.unsafe_p(args[1]));
    }

    #[test]
    fn user_call_results_are_safe() {
        let (tree, p) = annotate("(defun f (x) (rplaca x (frotz)))");
        let NodeKind::Call { args, .. } = tree.kind(find_call(&tree, "rplaca")).clone() else {
            panic!()
        };
        assert!(!p.unsafe_p(args[1]), "returned values are guaranteed safe");
    }
}
