//! Machine-dependent annotation (§4.4 of the paper).
//!
//! "From this point on the data collected and added to the tree is
//! machine dependent."  Three phases:
//!
//! * **Binding annotation** ([`binding`]): "examines each
//!   lambda-expression in the tree and determines how that
//!   lambda-expression is to be compiled" — as an inline `let`, as a
//!   local code block reached by parameter-passing gotos, or as a real
//!   run-time closure — "and determines which variables can be
//!   stack-allocated and which must (because they are referred to by
//!   closures) be heap-allocated."
//! * **Representation annotation** ([`rep`]): "determine, for every
//!   variable and every temporary value, the machine representation to be
//!   used for that value" — LISP pointer vs. raw machine number, via the
//!   top-down WANTREP and bottom-up ISREP passes of §6.2.
//! * **Pdl number annotation** ([`pdl`]): "determine which numerical
//!   quantities may be stack-allocated rather than heap-allocated,
//!   despite passing pointers to them to other procedures" — the
//!   PDLOKP/PDLNUMP flags of §6.3.
//!
//! # Examples
//!
//! ```
//! use s1lisp_annotate::Annotations;
//! use s1lisp_frontend::Frontend;
//! use s1lisp_reader::{read_str, Interner};
//!
//! let mut i = Interner::new();
//! let src = read_str("(defun f (x) (lambda () x))", &mut i).unwrap();
//! let mut fe = Frontend::new(&mut i);
//! let func = fe.convert_defun(&src).unwrap();
//! let ann = Annotations::compute(&func.tree);
//! // x is captured by a real closure, so it must live in a heap cell.
//! let x = func.tree.var_ids().find(|&v| func.tree.var(v).name.as_str() == "x").unwrap();
//! assert_eq!(ann.binding.var_alloc[&x], s1lisp_annotate::VarAlloc::Heap);
//! ```

#![warn(missing_docs)]

pub mod binding;
pub mod pdl;
pub mod rep;

pub use binding::{binding_annotation, BindingInfo, LambdaStrategy, VarAlloc};
pub use pdl::{pdl_annotation, PdlInfo};
pub use rep::{rep_annotation, Rep, RepInfo};

use s1lisp_ast::Tree;

/// The bundle of all machine-dependent annotations for one function.
#[derive(Debug, Clone)]
pub struct Annotations {
    /// How each lambda compiles; where each variable lives.
    pub binding: BindingInfo,
    /// WANTREP/ISREP for every node; representation of every variable.
    pub rep: RepInfo,
    /// PDLOKP/PDLNUMP and the stack-boxing decisions.
    pub pdl: PdlInfo,
}

impl Annotations {
    /// Runs all three annotation phases (backlinks must be current).
    pub fn compute(tree: &Tree) -> Annotations {
        let binding = binding_annotation(tree);
        let rep = rep_annotation(tree, &binding);
        let pdl = pdl_annotation(tree, &binding, &rep);
        Annotations { binding, rep, pdl }
    }
}
