//! Machine-dependent annotation (§4.4 of the paper).
//!
//! "From this point on the data collected and added to the tree is
//! machine dependent."  Three phases:
//!
//! * **Binding annotation** ([`binding`]): "examines each
//!   lambda-expression in the tree and determines how that
//!   lambda-expression is to be compiled" — as an inline `let`, as a
//!   local code block reached by parameter-passing gotos, or as a real
//!   run-time closure — "and determines which variables can be
//!   stack-allocated and which must (because they are referred to by
//!   closures) be heap-allocated."
//! * **Representation annotation** ([`rep`]): "determine, for every
//!   variable and every temporary value, the machine representation to be
//!   used for that value" — LISP pointer vs. raw machine number, via the
//!   top-down WANTREP and bottom-up ISREP passes of §6.2.
//! * **Pdl number annotation** ([`pdl`]): "determine which numerical
//!   quantities may be stack-allocated rather than heap-allocated,
//!   despite passing pointers to them to other procedures" — the
//!   PDLOKP/PDLNUMP flags of §6.3.
//!
//! # Examples
//!
//! ```
//! use s1lisp_annotate::Annotations;
//! use s1lisp_frontend::Frontend;
//! use s1lisp_reader::{read_str, Interner};
//!
//! let mut i = Interner::new();
//! let src = read_str("(defun f (x) (lambda () x))", &mut i).unwrap();
//! let mut fe = Frontend::new(&mut i);
//! let func = fe.convert_defun(&src).unwrap();
//! let ann = Annotations::compute(&func.tree);
//! // x is captured by a real closure, so it must live in a heap cell.
//! let x = func.tree.var_ids().find(|&v| func.tree.var(v).name.as_str() == "x").unwrap();
//! assert_eq!(ann.binding.var_alloc[&x], s1lisp_annotate::VarAlloc::Heap);
//! ```

#![warn(missing_docs)]

pub mod binding;
pub mod pdl;
pub mod rep;

pub use binding::{binding_annotation, BindingInfo, LambdaStrategy, VarAlloc};
pub use pdl::{pdl_annotation, PdlInfo};
pub use rep::{rep_annotation, Rep, RepInfo};

use std::collections::HashMap;

use s1lisp_ast::{clip_form, NodeId, Tree, VarId};
use s1lisp_trace::TraceSink;

/// The bundle of all machine-dependent annotations for one function.
#[derive(Debug, Clone)]
pub struct Annotations {
    /// How each lambda compiles; where each variable lives.
    pub binding: BindingInfo,
    /// WANTREP/ISREP for every node; representation of every variable.
    pub rep: RepInfo,
    /// PDLOKP/PDLNUMP and the stack-boxing decisions.
    pub pdl: PdlInfo,
}

impl Annotations {
    /// Runs all three annotation phases (backlinks must be current).
    pub fn compute(tree: &Tree) -> Annotations {
        let binding = binding_annotation(tree);
        let rep = rep_annotation(tree, &binding);
        let pdl = pdl_annotation(tree, &binding, &rep);
        Annotations { binding, rep, pdl }
    }
}

/// [`binding_annotation`] under a Table-1 trace span ("Binding
/// annotation") for `unit`, recording the lambda-strategy and
/// heap-variable counters.  With a disabled sink the span and counters
/// are no-ops and only the analysis itself runs.
pub fn binding_annotation_traced(tree: &Tree, unit: &str, sink: &mut dyn TraceSink) -> BindingInfo {
    let sp = sink.span_begin("Binding annotation", unit);
    let binding = binding_annotation(tree);
    if sink.enabled() {
        sink.add("lambdas", binding.strategy.len() as u64);
        let count =
            |want: LambdaStrategy| binding.strategy.values().filter(|&&s| s == want).count() as u64;
        sink.add("lambdas_let", count(LambdaStrategy::Let));
        sink.add("lambdas_local", count(LambdaStrategy::LocalFunction));
        sink.add("lambdas_closure", count(LambdaStrategy::Closure));
        sink.add(
            "heap_vars",
            binding
                .var_alloc
                .values()
                .filter(|&&a| a == VarAlloc::Heap)
                .count() as u64,
        );
    }
    sink.span_end(sp);
    binding
}

/// [`rep_annotation`] under a Table-1 trace span ("Representation
/// annotation") for `unit`: counts raw WANTREP/ISREP verdicts and
/// lowered generic ops, and emits the per-variable and per-node verdict
/// events the dossiers list ("rep_var" / "lowered"), sorted by arena
/// index so the event order is deterministic.
pub fn rep_annotation_traced(
    tree: &Tree,
    binding: &BindingInfo,
    unit: &str,
    sink: &mut dyn TraceSink,
) -> RepInfo {
    let sp = sink.span_begin("Representation annotation", unit);
    let rep = rep_annotation(tree, binding);
    if sink.enabled() {
        let raw =
            |m: &HashMap<NodeId, Rep>| m.values().filter(|&&r| r != Rep::Pointer).count() as u64;
        sink.add("raw_wantreps", raw(&rep.wantrep));
        sink.add("raw_isreps", raw(&rep.isrep));
        sink.add(
            "raw_vars",
            rep.var_rep.values().filter(|&&r| r != Rep::Pointer).count() as u64,
        );
        sink.add("lowered_generic_ops", rep.lowered.len() as u64);
        let mut vars: Vec<(VarId, Rep)> = rep.var_rep.iter().map(|(&v, &r)| (v, r)).collect();
        vars.sort_by_key(|&(v, _)| v.index());
        for (v, r) in vars {
            if r != Rep::Pointer {
                sink.event(
                    "rep_var",
                    &format!("{} kept {r:?}", tree.var(v).name.as_str()),
                );
            }
        }
        let mut lows: Vec<(NodeId, Rep)> = rep.lowered.iter().map(|(&n, &r)| (n, r)).collect();
        lows.sort_by_key(|&(n, _)| n.index());
        for (n, r) in lows {
            sink.event(
                "lowered",
                &format!("{} compiles as {r:?}", clip_form(tree, n)),
            );
        }
    }
    sink.span_end(sp);
    rep
}

/// [`pdl_annotation`] under a Table-1 trace span ("Pdl number
/// annotation") for `unit`, recording the stack-boxing counters.
pub fn pdl_annotation_traced(
    tree: &Tree,
    binding: &BindingInfo,
    rep: &RepInfo,
    unit: &str,
    sink: &mut dyn TraceSink,
) -> PdlInfo {
    let sp = sink.span_begin("Pdl number annotation", unit);
    let pdl = pdl_annotation(tree, binding, rep);
    if sink.enabled() {
        sink.add("stack_box_sites", pdl.stack_boxes.len() as u64);
        sink.add(
            "pdlnump_nodes",
            pdl.pdlnump.values().filter(|&&b| b).count() as u64,
        );
        sink.add(
            "maybe_unsafe_nodes",
            pdl.maybe_unsafe.values().filter(|&&b| b).count() as u64,
        );
    }
    sink.span_end(sp);
    pdl
}

impl Annotations {
    /// [`Annotations::compute`], with each phase under its Table-1
    /// trace span for `unit`.
    pub fn compute_traced(tree: &Tree, unit: &str, sink: &mut dyn TraceSink) -> Annotations {
        let binding = binding_annotation_traced(tree, unit, sink);
        let rep = rep_annotation_traced(tree, &binding, unit, sink);
        let pdl = pdl_annotation_traced(tree, &binding, &rep, unit, sink);
        Annotations { binding, rep, pdl }
    }
}
