//! Representation analysis (§6.2).
//!
//! "The representation analysis is carried out in two passes.  The first
//! pass is top-down; every internal tree node is annotated with a desired
//! representation, called the WANTREP for the node. … The second pass is
//! bottom-up; every internal tree node is annotated with a deliverable
//! representation, called the ISREP for the node."
//!
//! The full Table 3 lattice is modeled; inference in this dialect
//! produces `SWFIX`, `SWFLO`, `POINTER`, `JUMP`, and `NONE` (the
//! double/complex widths exist on the S-1 but the dialect's `$f`
//! operators are all single-width — see DESIGN.md).

use std::collections::HashMap;

use s1lisp_analysis::{primop, NumKind};
use s1lisp_ast::{CallFunc, DeclaredType, NodeId, NodeKind, ProgItem, Tree, VarId};

use crate::binding::{BindingInfo, VarAlloc};

/// An internal object representation — Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rep {
    /// 36-bit integer ("raw machine number").
    Swfix,
    /// 72-bit integer.
    Dwfix,
    /// 18-bit floating-point number.
    Hwflo,
    /// 36-bit floating-point number.
    Swflo,
    /// 72-bit floating-point number.
    Dwflo,
    /// 144-bit floating-point number.
    Twflo,
    /// 36-bit complex floating-point number.
    Hwcplx,
    /// 72-bit complex floating-point number.
    Swcplx,
    /// 144-bit complex floating-point number.
    Dwcplx,
    /// 288-bit complex floating-point number.
    Twcplx,
    /// LISP pointer.
    Pointer,
    /// 1-bit integer.
    Bit,
    /// Conditional jump: "we would prefer that the result of calculating
    /// p be a conditional jump rather than an actual value."
    Jump,
    /// Don't care (value not used).
    None_,
}

impl Rep {
    /// Raw numeric representations that have "corresponding user-visible,
    /// heap-allocated pointer representations" (§6.3's boxable list).
    pub fn is_raw_numeric(self) -> bool {
        matches!(
            self,
            Rep::Swfix
                | Rep::Dwfix
                | Rep::Hwflo
                | Rep::Swflo
                | Rep::Dwflo
                | Rep::Twflo
                | Rep::Hwcplx
                | Rep::Swcplx
                | Rep::Dwcplx
                | Rep::Twcplx
        )
    }

    /// Whether an `isrep` of `self` can be converted at run time to
    /// `want` (dereference, box, truth-materialize, or test).
    pub fn coercible_to(self, want: Rep) -> bool {
        match (self, want) {
            _ if self == want => true,
            (_, Rep::None_) => true,
            (Rep::None_, _) => false,
            // Any value can be tested for truth; a jump can materialize
            // t/nil.
            (_, Rep::Jump) | (Rep::Jump, _) => true,
            // Box / unbox.
            (s, Rep::Pointer) if s.is_raw_numeric() => true,
            (Rep::Pointer, w) if w.is_raw_numeric() => true,
            // Int ↔ float conversions are explicit user operations, not
            // implicit coercions.
            _ => false,
        }
    }
}

/// The results of representation analysis.
#[derive(Clone, Debug, Default)]
pub struct RepInfo {
    /// Desired representation per node (top-down pass).
    pub wantrep: HashMap<NodeId, Rep>,
    /// Deliverable representation per node (bottom-up pass).
    pub isrep: HashMap<NodeId, Rep>,
    /// Chosen representation per variable.
    pub var_rep: HashMap<VarId, Rep>,
    /// Generic arithmetic calls *deduced* to operate on one raw numeric
    /// representation — the paper's stated future work ("a system of
    /// optional type declarations … will eventually allow the compiler to
    /// make the usual type deductions without requiring every operation
    /// to be type-annotated, but this has not yet been implemented"),
    /// implemented here: when every operand of a generic `+`/`-`/`*`/…
    /// delivers SWFLO (or SWFIX), the operation compiles like its `$f`
    /// (or `&`) twin.  The value is the deduced representation.
    pub lowered: std::collections::HashMap<NodeId, Rep>,
}

impl RepInfo {
    /// The WANTREP of a node (`Pointer` when unrecorded).
    pub fn want(&self, n: NodeId) -> Rep {
        self.wantrep.get(&n).copied().unwrap_or(Rep::Pointer)
    }

    /// The ISREP of a node (`Pointer` when unrecorded).
    pub fn is(&self, n: NodeId) -> Rep {
        self.isrep.get(&n).copied().unwrap_or(Rep::Pointer)
    }

    /// Whether the node needs a representation conversion — the paper's
    /// WANTTN/ISTN pair exists exactly when this is true.
    pub fn needs_coercion(&self, n: NodeId) -> bool {
        let (w, i) = (self.want(n), self.is(n));
        w != i && w != Rep::None_ && !(w == Rep::Jump)
    }
}

/// Representation of a typed primitive's operands and result, if the
/// operation is type-specific.  Only *known* primitives qualify — a user
/// function that happens to be named with a `$f` suffix is still a
/// general call.
fn typed_op(name: &str) -> Option<(Rep, Rep)> {
    primop(name)?;
    if name.ends_with("$f") {
        return Some((Rep::Swflo, Rep::Swflo));
    }
    if name.ends_with('&') {
        return Some((Rep::Swfix, Rep::Swfix));
    }
    None
}

/// Generic operators eligible for float lowering (their all-float
/// reference semantics coincide with the `$f` instructions).
pub fn lowerable(name: &str) -> bool {
    matches!(
        name,
        "+" | "-" | "*" | "/" | "max" | "min" | "1+" | "1-"
            // Unary transcendentals whose S-1 instruction uses the same
            // convention as the generic operator (sin/cos are *not* here:
            // the hardware takes cycles, the generic functions radians).
            | "sqrt" | "exp" | "log" | "atan"
    )
}

/// Generic operators with a fixnum instruction twin (the S-1 has all
/// sixteen rounding modes as primitive instructions, §3).
pub fn lowerable_int(name: &str) -> bool {
    matches!(
        name,
        "+" | "-" | "*" | "/" | "1+" | "1-" | "rem" | "mod" | "floor"
    )
}

/// Runs both passes, iterating once more when type deduction lowers a
/// generic operation ("to produce the very best analysis in general,
/// solutions must be found to simultaneous equations over the discrete
/// domain of internal types.  In practice, a little heuristic guesswork
/// suffices", §6.2).
pub fn rep_annotation(tree: &Tree, binding: &BindingInfo) -> RepInfo {
    let mut info = RepInfo::default();
    // Variable representations: declaration-driven ("suitable
    // declarations … may permit compile-time type analysis", §2), but
    // only stack-allocated lexicals can live unboxed.
    for v in tree.var_ids() {
        let var = tree.var(v);
        let stack = binding.var_alloc.get(&v) == Some(&VarAlloc::Stack);
        let rep = match (stack, var.declared_type) {
            (true, Some(DeclaredType::Flonum)) => Rep::Swflo,
            (true, Some(DeclaredType::Fixnum)) => Rep::Swfix,
            _ => Rep::Pointer,
        };
        info.var_rep.insert(v, rep);
    }
    for _ in 0..4 {
        info.wantrep.clear();
        info.isrep.clear();
        want_pass(tree, tree.root, Rep::Pointer, &mut info);
        let before = info.lowered.len();
        is_pass(tree, tree.root, &mut info);
        let vars_changed = infer_var_reps(tree, binding, &mut info);
        if info.lowered.len() == before && !vars_changed {
            break;
        }
    }
    info
}

/// Sound representation inference for let-bound variables ("in practice,
/// a little heuristic guesswork suffices: if not all the references to a
/// variable agree as to what type is desirable for it, the type POINTER
/// can always be used", §6.2): a stack variable whose initializing
/// expression *delivers* SWFLO and all of whose assignments deliver SWFLO
/// provably holds a raw float.  Parameters are excluded — their callers
/// pass arbitrary pointers, so only an explicit declaration (a user
/// promise) may unbox them.
fn infer_var_reps(tree: &Tree, binding: &BindingInfo, info: &mut RepInfo) -> bool {
    let mut changed = false;
    for v in tree.var_ids() {
        let var = tree.var(v);
        if var.special
            || var.declared_type.is_some()
            || info.var_rep.get(&v) == Some(&Rep::Swflo)
            || binding.var_alloc.get(&v) != Some(&VarAlloc::Stack)
        {
            continue;
        }
        // Find the initializing expression: the argument feeding this
        // parameter of a *called* lambda (a let).  The root lambda's
        // parameters have no visible initializer.
        let Some(binder) = var.binder else { continue };
        if binder == tree.root {
            continue;
        }
        let Some(parent) = tree.node(binder).parent else {
            continue;
        };
        let NodeKind::Call { func, args } = tree.kind(parent) else {
            continue;
        };
        let CallFunc::Expr(f) = func else { continue };
        if *f != binder {
            continue;
        }
        let NodeKind::Lambda(l) = tree.kind(binder) else {
            continue;
        };
        let Some(j) = l.required.iter().position(|&p| p == v) else {
            continue;
        };
        let Some(&init) = args.get(j) else { continue };
        let float_delivering = |n: NodeId| {
            info.is(n) == Rep::Swflo
                || matches!(
                    tree.kind(n),
                    NodeKind::Constant(s1lisp_reader::Datum::Flonum(_))
                )
        };
        if !float_delivering(init) {
            continue;
        }
        let setqs_float = var.setqs.iter().all(|&sq| {
            matches!(tree.kind(sq), NodeKind::Setq { value, .. }
                     if float_delivering(*value))
        });
        if setqs_float {
            info.var_rep.insert(v, Rep::Swflo);
            changed = true;
        }
    }
    changed
}

/// Top-down WANTREP pass.
fn want_pass(tree: &Tree, node: NodeId, want: Rep, info: &mut RepInfo) {
    info.wantrep.insert(node, want);
    match tree.kind(node) {
        NodeKind::Constant(_) | NodeKind::VarRef(_) | NodeKind::Go(_) => {}
        NodeKind::Setq { var, value } => {
            want_pass(tree, *value, info.var_rep[var], info);
        }
        NodeKind::If { test, then, els } => {
            // "For an if expression (if p x y), the WANTREP for the
            // expression p is JUMP."
            want_pass(tree, *test, Rep::Jump, info);
            want_pass(tree, *then, want, info);
            want_pass(tree, *els, want, info);
        }
        NodeKind::Progn(body) => {
            let (last, init) = body.split_last().expect("non-empty");
            for &b in init {
                want_pass(tree, b, Rep::None_, info);
            }
            want_pass(tree, *last, want, info);
        }
        NodeKind::Call { func, args } => match func {
            CallFunc::Global(g) => {
                let arg_want = typed_op(g.as_str())
                    .map(|(operand, _)| operand)
                    .or_else(|| info.lowered.get(&node).copied());
                for &a in args {
                    want_pass(tree, a, arg_want.unwrap_or(Rep::Pointer), info);
                }
            }
            CallFunc::Expr(f) => {
                if let NodeKind::Lambda(l) = tree.kind(*f) {
                    // A let: each init wants its variable's representation;
                    // the body delivers the let's value.
                    info.wantrep.insert(*f, Rep::None_);
                    for (j, &a) in args.iter().enumerate() {
                        let w = l
                            .required
                            .get(j)
                            .map(|v| info.var_rep[v])
                            .unwrap_or(Rep::Pointer);
                        want_pass(tree, a, w, info);
                    }
                    for opt in &l.optional {
                        want_pass(tree, opt.default, info.var_rep[&opt.var], info);
                    }
                    want_pass(tree, l.body, want, info);
                } else {
                    want_pass(tree, *f, Rep::Pointer, info);
                    for &a in args {
                        want_pass(tree, a, Rep::Pointer, info);
                    }
                }
            }
        },
        NodeKind::Lambda(l) => {
            for opt in &l.optional {
                want_pass(tree, opt.default, info.var_rep[&opt.var], info);
            }
            // A separate function's body returns a pointer.
            want_pass(tree, l.body, Rep::Pointer, info);
        }
        NodeKind::Caseq {
            key,
            clauses,
            default,
        } => {
            want_pass(tree, *key, Rep::Pointer, info);
            for c in clauses {
                want_pass(tree, c.body, want, info);
            }
            want_pass(tree, *default, want, info);
        }
        NodeKind::Catcher { tag, body } => {
            want_pass(tree, *tag, Rep::Pointer, info);
            // The catch may receive a thrown pointer, so its body must
            // deliver one too.
            want_pass(tree, *body, Rep::Pointer, info);
        }
        NodeKind::Progbody(items) => {
            for item in items {
                if let ProgItem::Stmt(s) = item {
                    want_pass(tree, *s, Rep::None_, info);
                }
            }
        }
        NodeKind::Return(v) => {
            // Return values travel through the progbody as pointers.
            want_pass(tree, *v, Rep::Pointer, info);
        }
    }
}

/// Bottom-up ISREP pass.
fn is_pass(tree: &Tree, node: NodeId, info: &mut RepInfo) -> Rep {
    let children = tree.children(node);
    let mut child_reps = Vec::with_capacity(children.len());
    for c in children {
        child_reps.push(is_pass(tree, c, info));
    }
    let want = info.want(node);
    let rep = match tree.kind(node) {
        NodeKind::Constant(d) => match d {
            s1lisp_reader::Datum::Fixnum(_) if want == Rep::Swfix => Rep::Swfix,
            s1lisp_reader::Datum::Flonum(_) if want == Rep::Swflo => Rep::Swflo,
            _ => Rep::Pointer,
        },
        NodeKind::VarRef(v) => info.var_rep[v],
        NodeKind::Setq { var, .. } => info.var_rep[var],
        NodeKind::If { then, els, .. } => merge_arms(info.is(*then), info.is(*els), want),
        NodeKind::Progn(body) => info.is(*body.last().expect("non-empty")),
        NodeKind::Call { func, args } => match func {
            CallFunc::Global(g) => {
                if let Some((_, result)) = typed_op(g.as_str()) {
                    result
                } else if matches!(
                    primop(g.as_str()).map(|p| p.result),
                    Some(NumKind::Generic | NumKind::Flonum)
                ) && lowerable(g.as_str())
                    && !args.is_empty()
                    && args.iter().all(|&a| {
                        info.is(a) == Rep::Swflo
                            || matches!(
                                tree.kind(a),
                                NodeKind::Constant(s1lisp_reader::Datum::Flonum(_))
                            )
                    })
                {
                    // Type deduction: all operands are (or can be loaded
                    // as) raw floats — compile like the $f twin.
                    info.lowered.insert(node, Rep::Swflo);
                    Rep::Swflo
                } else if primop(g.as_str()).map(|p| p.result) == Some(NumKind::Generic)
                    && lowerable_int(g.as_str())
                    && !args.is_empty()
                    && args.iter().all(|&a| {
                        info.is(a) == Rep::Swfix
                            || matches!(
                                tree.kind(a),
                                NodeKind::Constant(s1lisp_reader::Datum::Fixnum(_))
                            )
                    })
                {
                    // All-fixnum generic arithmetic: the fixnum
                    // instruction twin (fixnums are immediate, so this is
                    // an instruction-selection decision only).
                    info.lowered.insert(node, Rep::Swfix);
                    Rep::Swfix
                } else {
                    match primop(g.as_str()).map(|p| p.result) {
                        // A comparison "delivers" a jump when one is
                        // wanted; otherwise it materializes t/nil.
                        Some(NumKind::Boolean) if want == Rep::Jump => Rep::Jump,
                        _ => Rep::Pointer,
                    }
                }
            }
            CallFunc::Expr(f) => {
                if let NodeKind::Lambda(l) = tree.kind(*f) {
                    info.is(l.body)
                } else {
                    Rep::Pointer
                }
            }
        },
        NodeKind::Lambda(_) => Rep::Pointer,
        NodeKind::Caseq {
            clauses, default, ..
        } => {
            let mut rep = info.is(*default);
            for c in clauses {
                rep = merge_arms(rep, info.is(c.body), want);
            }
            rep
        }
        NodeKind::Catcher { .. } | NodeKind::Progbody(_) => Rep::Pointer,
        NodeKind::Go(_) | NodeKind::Return(_) => Rep::None_,
    };
    info.isrep.insert(node, rep);
    rep
}

/// The paper's arm-merging rule: equal ISREPs win; else if one arm
/// already matches the WANTREP and the other is convertible, use the
/// WANTREP ("this is better than the ultimate default strategy of
/// letting the ISREP of an if expression be POINTER"); else POINTER.
fn merge_arms(a: Rep, b: Rep, want: Rep) -> Rep {
    if want == Rep::None_ {
        return Rep::None_;
    }
    if a == b {
        return a;
    }
    if (a == want && b.coercible_to(want)) || (b == want && a.coercible_to(want)) {
        return want;
    }
    Rep::Pointer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::binding_annotation;
    use s1lisp_ast::subtree_nodes;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn annotate(src: &str) -> (Tree, RepInfo) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let b = binding_annotation(&f.tree);
        let r = rep_annotation(&f.tree, &b);
        (f.tree, r)
    }

    fn find_call(tree: &Tree, name: &str) -> NodeId {
        subtree_nodes(tree, tree.root)
            .into_iter()
            .find(|&n| {
                matches!(tree.kind(n), NodeKind::Call { func: CallFunc::Global(g), .. }
                         if g.as_str() == name)
            })
            .unwrap()
    }

    #[test]
    fn typed_float_op_wants_raw_operands() {
        let (tree, r) = annotate("(defun f (x y) (+$f x y))");
        let call = find_call(&tree, "+$f");
        // Result must become a pointer (function return).
        assert_eq!(r.want(call), Rep::Pointer);
        assert_eq!(r.is(call), Rep::Swflo);
        assert!(r.needs_coercion(call));
        // Operands are wanted raw; variables are pointers (undeclared),
        // so they need dereferencing.
        let NodeKind::Call { args, .. } = tree.kind(call) else {
            panic!()
        };
        for &a in args {
            assert_eq!(r.want(a), Rep::Swflo);
            assert_eq!(r.is(a), Rep::Pointer);
            assert!(r.needs_coercion(a));
        }
    }

    #[test]
    fn papers_if_example_delivers_swflo() {
        // (+$f (if p (sqrt$f q) (car r)) 3.0): the ISREP of the if is
        // SWFLO, not POINTER, saving the box-then-deref on the sqrt arm.
        let (tree, r) = annotate("(defun f (p q s) (+$f (if p (sqrt$f q) (car s)) 3.0))");
        let NodeKind::Lambda(l) = tree.kind(tree.root) else {
            panic!()
        };
        let NodeKind::Call { args, .. } = tree.kind(l.body) else {
            panic!()
        };
        let if_node = args[0];
        assert!(matches!(tree.kind(if_node), NodeKind::If { .. }));
        assert_eq!(r.want(if_node), Rep::Swflo);
        assert_eq!(r.is(if_node), Rep::Swflo, "the paper's §6.2 example");
        // The sqrt arm needs no conversion; the car arm coerces
        // POINTER → SWFLO (a dereference).
        let NodeKind::If { then, els, .. } = *tree.kind(if_node) else {
            panic!()
        };
        assert!(!r.needs_coercion(then));
        assert!(r.needs_coercion(els));
    }

    #[test]
    fn if_test_wants_a_jump() {
        let (tree, r) = annotate("(defun f (p) (if (< p 3) 1 2))");
        let cmp = find_call(&tree, "<");
        assert_eq!(r.want(cmp), Rep::Jump);
        assert_eq!(r.is(cmp), Rep::Jump);
        assert!(!r.needs_coercion(cmp));
    }

    #[test]
    fn comparison_as_value_materializes() {
        let (tree, r) = annotate("(defun f (p) (< p 3))");
        let cmp = find_call(&tree, "<");
        assert_eq!(r.want(cmp), Rep::Pointer);
        assert_eq!(r.is(cmp), Rep::Pointer);
    }

    #[test]
    fn declared_variables_live_raw() {
        let (tree, r) = annotate("(defun f (x) (declare (flonum x)) (+$f x 1.0))");
        let x = tree
            .var_ids()
            .find(|&v| tree.var(v).name.as_str() == "x")
            .unwrap();
        assert_eq!(r.var_rep[&x], Rep::Swflo);
        // The reference then needs no conversion.
        let call = find_call(&tree, "+$f");
        let NodeKind::Call { args, .. } = tree.kind(call) else {
            panic!()
        };
        assert!(!r.needs_coercion(args[0]));
        // And the constant is loaded raw directly.
        assert_eq!(r.is(args[1]), Rep::Swflo);
    }

    #[test]
    fn captured_variables_stay_pointers() {
        let (tree, r) = annotate("(defun f (x) (declare (flonum x)) (lambda () (+$f x 1.0)))");
        let x = tree
            .var_ids()
            .find(|&v| tree.var(v).name.as_str() == "x")
            .unwrap();
        assert_eq!(r.var_rep[&x], Rep::Pointer, "heap cells hold pointers");
    }

    #[test]
    fn progn_discards_are_none() {
        let (tree, r) = annotate("(defun f (x) (progn (frotz x) (g x)))");
        let frotz = find_call(&tree, "frotz");
        assert_eq!(r.want(frotz), Rep::None_);
    }

    #[test]
    fn coercibility_lattice() {
        assert!(Rep::Swflo.coercible_to(Rep::Pointer));
        assert!(Rep::Pointer.coercible_to(Rep::Swflo));
        assert!(Rep::Pointer.coercible_to(Rep::Jump));
        assert!(Rep::Swflo.coercible_to(Rep::None_));
        assert!(!Rep::Swfix.coercible_to(Rep::Swflo));
        assert!(!Rep::None_.coercible_to(Rep::Pointer));
        assert!(Rep::Dwcplx.is_raw_numeric());
        assert!(!Rep::Pointer.is_raw_numeric());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::binding::binding_annotation;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn annotate(src: &str) -> (Tree, RepInfo) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let b = binding_annotation(&f.tree);
        let r = rep_annotation(&f.tree, &b);
        (f.tree, r)
    }

    #[test]
    fn user_functions_with_dollar_names_stay_generic() {
        // A user function named like a typed primitive must not be
        // treated as one (regression for the step$f bug).
        let (tree, r) = annotate("(defun g (a b) (my-op$f a b))");
        let call = s1lisp_ast::subtree_nodes(&tree, tree.root)
            .into_iter()
            .find(|&n| matches!(tree.kind(n), NodeKind::Call { .. }))
            .unwrap();
        assert_eq!(r.is(call), Rep::Pointer);
        let NodeKind::Call { args, .. } = tree.kind(call) else {
            panic!()
        };
        assert_eq!(r.want(args[0]), Rep::Pointer);
    }

    #[test]
    fn let_inits_want_their_variables_representation() {
        let (tree, r) = annotate(
            "(defun f (x) (declare (flonum x))
               (let ((y (+$f x 1.0))) (declare (flonum y)) (+$f y y)))",
        );
        let y = tree
            .var_ids()
            .find(|&v| tree.var(v).name.as_str() == "y")
            .unwrap();
        assert_eq!(r.var_rep[&y], Rep::Swflo);
        // The init (+$f x 1.0) is wanted raw: no coercion at the binding.
        let init = tree.var(y).binder.and_then(|b| {
            let parent = tree.node(b).parent?;
            let NodeKind::Call { args, .. } = tree.kind(parent) else {
                return None;
            };
            args.first().copied()
        });
        let init = init.expect("let init found");
        assert_eq!(r.want(init), Rep::Swflo);
        assert_eq!(r.is(init), Rep::Swflo);
        assert!(!r.needs_coercion(init));
    }

    #[test]
    fn caseq_arms_merge_like_if() {
        let (tree, r) =
            annotate("(defun f (k a b) (+$f (caseq k ((1) (+$f a 1.0)) (t (*$f b 2.0))) 3.0))");
        let caseq = s1lisp_ast::subtree_nodes(&tree, tree.root)
            .into_iter()
            .find(|&n| matches!(tree.kind(n), NodeKind::Caseq { .. }))
            .unwrap();
        assert_eq!(r.want(caseq), Rep::Swflo);
        assert_eq!(r.is(caseq), Rep::Swflo, "both arms deliver raw floats");
    }

    #[test]
    fn setq_wants_the_variables_representation() {
        let (tree, r) = annotate("(defun f (x) (declare (flonum x)) (setq x (+$f x 1.0)) x)");
        let setq = s1lisp_ast::subtree_nodes(&tree, tree.root)
            .into_iter()
            .find(|&n| matches!(tree.kind(n), NodeKind::Setq { .. }))
            .unwrap();
        let NodeKind::Setq { value, .. } = *tree.kind(setq) else {
            panic!()
        };
        assert_eq!(r.want(value), Rep::Swflo);
        assert!(!r.needs_coercion(value));
    }
}
