//! Binding annotation (§4.4).
//!
//! "In the most general case, a closure object must be explicitly
//! constructed at run time … However, in many special cases this is not
//! necessary.  If through compile-time analysis all the places can be
//! found where the lambda-expression may be invoked, then it may be
//! possible to compile all such calls as, in effect, parameter-passing
//! goto statements, and no closure need be constructed at run time."

use std::collections::HashMap;

use s1lisp_analysis::environment;
use s1lisp_ast::{subtree_nodes, CallFunc, NodeId, NodeKind, Tree, VarId};

/// How a lambda-expression is compiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LambdaStrategy {
    /// A manifest lambda in call position (a `let`): parameters bind in
    /// the enclosing frame; no function object exists at all.
    Let,
    /// All call sites are known: the body compiles as a local code block
    /// reached by jumps or the "special (fast) subroutine linkage", and
    /// "no closure need be constructed at run time".
    LocalFunction,
    /// The general case: a closure object is constructed at run time.
    Closure,
}

/// Where a variable's storage lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarAlloc {
    /// Stack frame slot (or a register, at TNBIND's discretion).
    Stack,
    /// A heap-allocated value cell — the variable is "referred to by
    /// closures".
    Heap,
    /// Deep-bound special variable (no lexical storage at all).
    Special,
}

/// The results of binding annotation.
#[derive(Clone, Debug, Default)]
pub struct BindingInfo {
    /// Strategy per lambda node.
    pub strategy: HashMap<NodeId, LambdaStrategy>,
    /// Allocation per variable.
    pub var_alloc: HashMap<VarId, VarAlloc>,
    /// For each `Closure` lambda: the captured variables, in environment
    /// slot order.
    pub captures: HashMap<NodeId, Vec<VarId>>,
}

/// Runs binding annotation on the whole tree.
pub fn binding_annotation(tree: &Tree) -> BindingInfo {
    let env = environment(tree);
    let mut info = BindingInfo::default();

    // Classify every lambda.
    for node in subtree_nodes(tree, tree.root) {
        let NodeKind::Lambda(_) = tree.kind(node) else {
            continue;
        };
        let strategy = classify(tree, node);
        info.strategy.insert(node, strategy);
        if strategy == LambdaStrategy::Closure {
            let mut captured: Vec<VarId> = env.free_of(node).iter().copied().collect();
            captured.sort();
            info.captures.insert(node, captured);
        }
    }

    // Allocate every variable: special ⊃ heap-captured ⊃ stack.
    for v in tree.var_ids() {
        let var = tree.var(v);
        let alloc = if var.special {
            VarAlloc::Special
        } else if captured_by_closure(&info, v) {
            VarAlloc::Heap
        } else {
            VarAlloc::Stack
        };
        info.var_alloc.insert(v, alloc);
    }
    info
}

fn captured_by_closure(info: &BindingInfo, v: VarId) -> bool {
    info.captures.values().any(|captured| captured.contains(&v))
}

/// Classifies one lambda node.
fn classify(tree: &Tree, lambda: NodeId) -> LambdaStrategy {
    if lambda == tree.root {
        // The whole-function lambda is its own category; calling it
        // `Let` keeps its parameters on the stack.
        return LambdaStrategy::Let;
    }
    let Some(parent) = tree.node(lambda).parent else {
        return LambdaStrategy::Closure;
    };
    // Manifest lambda in call position: a let.
    if let NodeKind::Call {
        func: CallFunc::Expr(f),
        ..
    } = tree.kind(parent)
    {
        if *f == lambda {
            return LambdaStrategy::Let;
        }
    }
    // A lambda bound to a let variable all of whose references are
    // call-position uses: a local function (join point).
    if let NodeKind::Call {
        func: CallFunc::Expr(f),
        args,
    } = tree.kind(parent)
    {
        if let NodeKind::Lambda(l) = tree.kind(*f) {
            if let Some(j) = args.iter().position(|&a| a == lambda) {
                if let Some(&var) = l.required.get(j) {
                    let v = tree.var(var);
                    let all_calls = !v.refs.is_empty()
                        && v.setqs.is_empty()
                        && !v.special
                        && v.refs.iter().all(|&r| is_call_position(tree, r));
                    if all_calls {
                        return LambdaStrategy::LocalFunction;
                    }
                }
            }
        }
    }
    LambdaStrategy::Closure
}

/// Is node `r` the function position of a call?
fn is_call_position(tree: &Tree, r: NodeId) -> bool {
    let Some(parent) = tree.node(r).parent else {
        return false;
    };
    matches!(
        tree.kind(parent),
        NodeKind::Call { func: CallFunc::Expr(f), .. } if *f == r
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn annotate(src: &str) -> (Tree, BindingInfo) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let b = binding_annotation(&f.tree);
        (f.tree, b)
    }

    fn lambdas(tree: &Tree) -> Vec<NodeId> {
        subtree_nodes(tree, tree.root)
            .into_iter()
            .filter(|&n| matches!(tree.kind(n), NodeKind::Lambda(_)))
            .collect()
    }

    fn var(tree: &Tree, name: &str) -> VarId {
        tree.var_ids()
            .find(|&v| tree.var(v).name.as_str() == name)
            .unwrap()
    }

    #[test]
    fn let_lambdas_are_lets() {
        let (tree, b) = annotate("(defun f (x) (let ((y (* x x))) (+ y 1)))");
        for l in lambdas(&tree) {
            assert_eq!(b.strategy[&l], LambdaStrategy::Let);
        }
        assert_eq!(b.var_alloc[&var(&tree, "y")], VarAlloc::Stack);
    }

    #[test]
    fn escaping_lambda_is_a_closure_capturing_its_frees() {
        let (tree, b) = annotate("(defun make-adder (n) (lambda (x) (+ x n)))");
        let inner = lambdas(&tree)[1];
        assert_eq!(b.strategy[&inner], LambdaStrategy::Closure);
        let n = var(&tree, "n");
        assert_eq!(b.captures[&inner], vec![n]);
        // n must be heap-allocated; the closure's own parameter stays on
        // the stack.
        assert_eq!(b.var_alloc[&n], VarAlloc::Heap);
        assert_eq!(b.var_alloc[&var(&tree, "x")], VarAlloc::Stack);
    }

    #[test]
    fn called_only_bindings_are_local_functions() {
        // The shape if-distribution creates: thunks called at (f) sites.
        let (tree, b) = annotate(
            "(defun f (a) ((lambda (g h) (if a (g) (h)))
                           (lambda () (e1))
                           (lambda () (e2))))",
        );
        let ls = lambdas(&tree);
        // ls[0] is the defun, ls[1] the binder; the two thunks follow.
        let thunks: Vec<_> = ls
            .iter()
            .filter(|&&l| b.strategy[&l] == LambdaStrategy::LocalFunction)
            .collect();
        assert_eq!(thunks.len(), 2, "{:?}", b.strategy);
        // No closures anywhere: the boolean-short-circuit claim (E3).
        assert!(ls.iter().all(|l| b.strategy[l] != LambdaStrategy::Closure));
    }

    #[test]
    fn stored_lambda_is_a_closure() {
        let (tree, b) = annotate("(defun f (a) ((lambda (g) (frotz g) (g)) (lambda () (e1))))");
        let closure_count = lambdas(&tree)
            .iter()
            .filter(|&&l| b.strategy[&l] == LambdaStrategy::Closure)
            .count();
        // g escapes via (frotz g), so its lambda needs a real closure.
        assert_eq!(closure_count, 1);
    }

    #[test]
    fn specials_have_no_lexical_storage() {
        let (tree, b) = annotate("(defun f (x) (declare (special x)) x)");
        assert_eq!(b.var_alloc[&var(&tree, "x")], VarAlloc::Special);
    }

    #[test]
    fn mutated_capture_is_heap_allocated() {
        let (tree, b) =
            annotate("(defun make-counter () (let ((n 0)) (lambda () (setq n (+ n 1)) n)))");
        assert_eq!(b.var_alloc[&var(&tree, "n")], VarAlloc::Heap);
    }
}
