//! Built-in (primitive) functions of the dialect.
//!
//! These are the "known primitive operations" of Table 2's `call` node.
//! The same operation set is understood by the compiler's primop table
//! (`s1lisp-analysis`) and by the S-1 code generator; the interpreter
//! gives their reference semantics.
//!
//! Generic arithmetic (`+`, `*`, …) operates on fixnums and flonums with
//! fixnum→flonum contagion.  The `$f`-suffixed operators are the paper's
//! type-specific single-float operations ("`+$f` and `+$d` indicate
//! single-precision and double-precision floating-point addition"), and
//! the `&`-suffixed ones are fixnum-specific.  `sinc$f` is sine with the
//! argument in *cycles* (the S-1 `SIN` instruction's convention).

use s1lisp_reader::Symbol;

use crate::error::LispError;
use crate::value::Value;

/// Calls builtin `name`, or returns `None` if `name` is not a builtin.
///
/// Public so that alternative execution engines (the bytecode
/// evaluator) share the primitives' reference semantics verbatim
/// instead of reimplementing them.
pub fn call_builtin(name: &str, args: &[Value], t: &Symbol) -> Option<Result<Value, LispError>> {
    dispatch(name, args, t)
}

/// Evaluates a primitive on constant (datum) operands, for the
/// compiler's compile-time expression evaluation (§5: "invoking primitive
/// functions known to be free of side effects on constant operands, a
/// very convenient thing to do in LISP").
///
/// Returns `None` if `name` is not a builtin, if evaluation signals an
/// error (the compiler then leaves the form for run time), or if the
/// result has no datum form.
pub fn eval_primop(name: &str, args: &[s1lisp_reader::Datum]) -> Option<s1lisp_reader::Datum> {
    let t = s1lisp_reader::Interner::new().intern("t");
    let argv: Vec<Value> = args.iter().map(Value::from_datum).collect();
    let result = call_builtin(name, &argv, &t)?.ok()?;
    result.to_datum()
}

/// All builtin names (kept in sync with `dispatch` by the
/// `dispatch_covers_all_names` test).
pub const NAMES: &[&str] = &[
    "+",
    "-",
    "*",
    "/",
    "1+",
    "1-",
    "abs",
    "min",
    "max",
    "floor",
    "ceiling",
    "truncate",
    "round",
    "mod",
    "rem",
    "expt",
    "=",
    "/=",
    "<",
    ">",
    "<=",
    ">=",
    "zerop",
    "oddp",
    "evenp",
    "plusp",
    "minusp",
    "+$f",
    "-$f",
    "*$f",
    "/$f",
    "max$f",
    "min$f",
    "abs$f",
    "+&",
    "-&",
    "*&",
    "sqrt",
    "sqrt$f",
    "sin",
    "cos",
    "sin$f",
    "cos$f",
    "sinc$f",
    "cosc$f",
    "atan",
    "exp",
    "log",
    "float",
    "fix",
    "null",
    "not",
    "atom",
    "consp",
    "listp",
    "symbolp",
    "numberp",
    "fixnump",
    "flonump",
    "stringp",
    "functionp",
    "eq",
    "eql",
    "equal",
    "cons",
    "car",
    "cdr",
    "caar",
    "cadr",
    "cdar",
    "cddr",
    "caddr",
    "cdddr",
    "list",
    "list*",
    "append",
    "reverse",
    "length",
    "nth",
    "nthcdr",
    "last",
    "assq",
    "assoc",
    "memq",
    "member",
    "rplaca",
    "rplacd",
    "identity",
    "error",
];

fn err(msg: impl Into<String>) -> LispError {
    LispError::new(msg)
}

fn num(v: &Value, who: &str) -> Result<f64, LispError> {
    match v {
        Value::Fixnum(n) => Ok(*n as f64),
        Value::Flonum(x) => Ok(*x),
        other => Err(err(format!("{who}: not a number: {other}"))),
    }
}

fn flo(v: &Value, who: &str) -> Result<f64, LispError> {
    match v {
        Value::Flonum(x) => Ok(*x),
        // The $f operators dereference pointers at run time after a type
        // check (§6.2); a fixnum is a wrong-type argument.
        other => Err(err(format!("{who}: not a flonum: {other}"))),
    }
}

fn fix(v: &Value, who: &str) -> Result<i64, LispError> {
    match v {
        Value::Fixnum(n) => Ok(*n),
        other => Err(err(format!("{who}: not a fixnum: {other}"))),
    }
}

fn both_fix(args: &[Value]) -> bool {
    args.iter().all(|a| matches!(a, Value::Fixnum(_)))
}

fn arity(args: &[Value], n: usize, who: &str) -> Result<(), LispError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(format!(
            "{who}: wants {n} arguments, got {}",
            args.len()
        )))
    }
}

fn at_least(args: &[Value], n: usize, who: &str) -> Result<(), LispError> {
    if args.len() >= n {
        Ok(())
    } else {
        Err(err(format!(
            "{who}: wants at least {n} arguments, got {}",
            args.len()
        )))
    }
}

fn bool_v(b: bool, t: &Symbol) -> Value {
    if b {
        Value::Sym(t.clone())
    } else {
        Value::Nil
    }
}

fn fold_generic(
    args: &[Value],
    who: &str,
    unit: Option<i64>,
    fixop: fn(i64, i64) -> Option<i64>,
    floop: fn(f64, f64) -> f64,
) -> Result<Value, LispError> {
    let mut iter = args.iter();
    let first = match (iter.next(), unit) {
        (Some(v), _) => v.clone(),
        (None, Some(u)) => return Ok(Value::Fixnum(u)),
        (None, None) => return Err(err(format!("{who}: wants at least 1 argument"))),
    };
    if args.len() == 1 && unit.is_some() {
        num(&first, who)?; // type check
        return Ok(first);
    }
    let mut acc = first;
    for v in iter {
        acc = match (&acc, v) {
            (Value::Fixnum(a), Value::Fixnum(b)) => {
                Value::Fixnum(fixop(*a, *b).ok_or_else(|| err(format!("{who}: fixnum overflow")))?)
            }
            _ => Value::Flonum(floop(num(&acc, who)?, num(v, who)?)),
        };
    }
    Ok(acc)
}

fn compare_chain(
    args: &[Value],
    who: &str,
    t: &Symbol,
    ok: fn(f64, f64) -> bool,
) -> Result<Value, LispError> {
    at_least(args, 2, who)?;
    for w in args.windows(2) {
        if !ok(num(&w[0], who)?, num(&w[1], who)?) {
            return Ok(Value::Nil);
        }
    }
    Ok(bool_v(true, t))
}

fn car_of(v: &Value, who: &str) -> Result<Value, LispError> {
    match v {
        Value::Nil => Ok(Value::Nil), // (car '()) is () in this dialect
        Value::Cons(c) => Ok(c.car.borrow().clone()),
        other => Err(err(format!("{who}: not a list: {other}"))),
    }
}

fn cdr_of(v: &Value, who: &str) -> Result<Value, LispError> {
    match v {
        Value::Nil => Ok(Value::Nil),
        Value::Cons(c) => Ok(c.cdr.borrow().clone()),
        other => Err(err(format!("{who}: not a list: {other}"))),
    }
}

fn list_items(v: &Value, who: &str) -> Result<Vec<Value>, LispError> {
    let mut out = Vec::new();
    let mut cur = v.clone();
    loop {
        match cur {
            Value::Nil => return Ok(out),
            Value::Cons(c) => {
                out.push(c.car.borrow().clone());
                let next = c.cdr.borrow().clone();
                cur = next;
            }
            other => return Err(err(format!("{who}: improper list ending in {other}"))),
        }
    }
}

#[allow(clippy::too_many_lines)]
fn dispatch(name: &str, args: &[Value], t: &Symbol) -> Option<Result<Value, LispError>> {
    let r = match name {
        // ---- generic arithmetic ----
        "+" => fold_generic(args, "+", Some(0), i64::checked_add, |a, b| a + b),
        "-" => {
            if args.len() == 1 {
                match &args[0] {
                    Value::Fixnum(n) => n
                        .checked_neg()
                        .map(Value::Fixnum)
                        .ok_or_else(|| err("-: fixnum overflow")),
                    v => num(v, "-").map(|x| Value::Flonum(-x)),
                }
            } else {
                fold_generic(args, "-", None, i64::checked_sub, |a, b| a - b)
            }
        }
        "*" => fold_generic(args, "*", Some(1), i64::checked_mul, |a, b| a * b),
        "/" => {
            if both_fix(args) && args.iter().skip(1).any(|v| matches!(v, Value::Fixnum(0))) {
                Err(err("/: division by zero"))
            } else if args.len() == 1 {
                num(&args[0], "/").map(|x| Value::Flonum(1.0 / x))
            } else {
                // Fixnum division truncates (the dialect has no rationals;
                // see DESIGN.md).
                fold_generic(args, "/", None, i64::checked_div, |a, b| a / b)
            }
        }
        "1+" => arity(args, 1, "1+").and_then(|()| match &args[0] {
            Value::Fixnum(n) => n
                .checked_add(1)
                .map(Value::Fixnum)
                .ok_or_else(|| err("1+: fixnum overflow")),
            v => num(v, "1+").map(|x| Value::Flonum(x + 1.0)),
        }),
        "1-" => arity(args, 1, "1-").and_then(|()| match &args[0] {
            Value::Fixnum(n) => n
                .checked_sub(1)
                .map(Value::Fixnum)
                .ok_or_else(|| err("1-: fixnum overflow")),
            v => num(v, "1-").map(|x| Value::Flonum(x - 1.0)),
        }),
        "abs" => arity(args, 1, "abs").and_then(|()| match &args[0] {
            Value::Fixnum(n) => Ok(Value::Fixnum(n.abs())),
            v => num(v, "abs").map(|x| Value::Flonum(x.abs())),
        }),
        "min" => fold_generic(args, "min", None, |a, b| Some(a.min(b)), f64::min),
        "max" => fold_generic(args, "max", None, |a, b| Some(a.max(b)), f64::max),
        "floor" => round_like(args, "floor", f64::floor, |a, b| a.div_euclid(b)),
        "ceiling" => round_like(args, "ceiling", f64::ceil, |a, b| {
            a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
        }),
        "truncate" => round_like(args, "truncate", f64::trunc, |a, b| a / b),
        "round" => round_like(
            args,
            "round",
            |x| x.round_ties_even(),
            |a, b| {
                let q = a as f64 / b as f64;
                q.round_ties_even() as i64
            },
        ),
        "mod" => arity(args, 2, "mod").and_then(|()| match (&args[0], &args[1]) {
            (Value::Fixnum(a), Value::Fixnum(b)) if *b != 0 => Ok(Value::Fixnum(a.rem_euclid(*b))),
            (Value::Fixnum(_), Value::Fixnum(_)) => Err(err("mod: division by zero")),
            (a, b) => Ok(Value::Flonum(num(a, "mod")?.rem_euclid(num(b, "mod")?))),
        }),
        "rem" => arity(args, 2, "rem").and_then(|()| match (&args[0], &args[1]) {
            (Value::Fixnum(a), Value::Fixnum(b)) if *b != 0 => Ok(Value::Fixnum(a % b)),
            (Value::Fixnum(_), Value::Fixnum(_)) => Err(err("rem: division by zero")),
            (a, b) => Ok(Value::Flonum(num(a, "rem")? % num(b, "rem")?)),
        }),
        "expt" => arity(args, 2, "expt").and_then(|()| match (&args[0], &args[1]) {
            (Value::Fixnum(b), Value::Fixnum(e)) if *e >= 0 => {
                let e = u32::try_from(*e).map_err(|_| err("expt: exponent too large"))?;
                b.checked_pow(e)
                    .map(Value::Fixnum)
                    .ok_or_else(|| err("expt: fixnum overflow"))
            }
            (b, e) => Ok(Value::Flonum(num(b, "expt")?.powf(num(e, "expt")?))),
        }),
        // ---- comparisons and numeric predicates ----
        "=" => compare_chain(args, "=", t, |a, b| a == b),
        "/=" => compare_chain(args, "/=", t, |a, b| a != b),
        "<" => compare_chain(args, "<", t, |a, b| a < b),
        ">" => compare_chain(args, ">", t, |a, b| a > b),
        "<=" => compare_chain(args, "<=", t, |a, b| a <= b),
        ">=" => compare_chain(args, ">=", t, |a, b| a >= b),
        "zerop" => arity(args, 1, "zerop")
            .and_then(|()| num(&args[0], "zerop").map(|x| bool_v(x == 0.0, t))),
        "plusp" => arity(args, 1, "plusp")
            .and_then(|()| num(&args[0], "plusp").map(|x| bool_v(x > 0.0, t))),
        "minusp" => arity(args, 1, "minusp")
            .and_then(|()| num(&args[0], "minusp").map(|x| bool_v(x < 0.0, t))),
        "oddp" => arity(args, 1, "oddp")
            .and_then(|()| fix(&args[0], "oddp").map(|n| bool_v(n.rem_euclid(2) == 1, t))),
        "evenp" => arity(args, 1, "evenp")
            .and_then(|()| fix(&args[0], "evenp").map(|n| bool_v(n.rem_euclid(2) == 0, t))),
        // ---- type-specific arithmetic ----
        "+$f" => binf(args, "+$f", |a, b| a + b),
        "-$f" => {
            if args.len() == 1 {
                flo(&args[0], "-$f").map(|x| Value::Flonum(-x))
            } else {
                binf(args, "-$f", |a, b| a - b)
            }
        }
        "*$f" => binf(args, "*$f", |a, b| a * b),
        "/$f" => binf(args, "/$f", |a, b| a / b),
        "max$f" => binf(args, "max$f", f64::max),
        "min$f" => binf(args, "min$f", f64::min),
        "abs$f" => arity(args, 1, "abs$f")
            .and_then(|()| flo(&args[0], "abs$f").map(|x| Value::Flonum(x.abs()))),
        "+&" => bini(args, "+&", i64::checked_add),
        "-&" => bini(args, "-&", i64::checked_sub),
        "*&" => bini(args, "*&", i64::checked_mul),
        // ---- transcendental ----
        "sqrt" => un_num(args, "sqrt", f64::sqrt),
        "sqrt$f" => un_flo(args, "sqrt$f", f64::sqrt),
        "sin" => un_num(args, "sin", f64::sin),
        "cos" => un_num(args, "cos", f64::cos),
        "sin$f" => un_flo(args, "sin$f", f64::sin),
        "cos$f" => un_flo(args, "cos$f", f64::cos),
        // Sine/cosine with argument in *cycles*: the S-1's native
        // convention (§7: "the S-1 SIN instruction assumes its argument
        // to be in cycles").
        "sinc$f" => un_flo(args, "sinc$f", |x| (x * 2.0 * std::f64::consts::PI).sin()),
        "cosc$f" => un_flo(args, "cosc$f", |x| (x * 2.0 * std::f64::consts::PI).cos()),
        "atan" => match args.len() {
            1 => un_num(args, "atan", f64::atan),
            2 => num(&args[0], "atan")
                .and_then(|y| Ok(Value::Flonum(y.atan2(num(&args[1], "atan")?)))),
            _ => Err(err("atan: wants 1 or 2 arguments")),
        },
        "exp" => un_num(args, "exp", f64::exp),
        "log" => un_num(args, "log", f64::ln),
        "float" => arity(args, 1, "float").and_then(|()| num(&args[0], "float").map(Value::Flonum)),
        "fix" => arity(args, 1, "fix")
            .and_then(|()| num(&args[0], "fix").map(|x| Value::Fixnum(x as i64))),
        // ---- predicates ----
        "null" | "not" => arity(args, 1, name).map(|()| bool_v(!args[0].is_true(), t)),
        "atom" => arity(args, 1, "atom").map(|()| bool_v(!matches!(args[0], Value::Cons(_)), t)),
        "consp" => arity(args, 1, "consp").map(|()| bool_v(matches!(args[0], Value::Cons(_)), t)),
        "listp" => arity(args, 1, "listp")
            .map(|()| bool_v(matches!(args[0], Value::Cons(_) | Value::Nil), t)),
        "symbolp" => {
            arity(args, 1, "symbolp").map(|()| bool_v(matches!(args[0], Value::Sym(_)), t))
        }
        "numberp" => arity(args, 1, "numberp")
            .map(|()| bool_v(matches!(args[0], Value::Fixnum(_) | Value::Flonum(_)), t)),
        "fixnump" => {
            arity(args, 1, "fixnump").map(|()| bool_v(matches!(args[0], Value::Fixnum(_)), t))
        }
        "flonump" => {
            arity(args, 1, "flonump").map(|()| bool_v(matches!(args[0], Value::Flonum(_)), t))
        }
        "stringp" => {
            arity(args, 1, "stringp").map(|()| bool_v(matches!(args[0], Value::Str(_)), t))
        }
        "functionp" => {
            arity(args, 1, "functionp").map(|()| bool_v(matches!(args[0], Value::Func(_)), t))
        }
        "eq" => arity(args, 2, "eq").map(|()| bool_v(args[0].eq_p(&args[1]), t)),
        "eql" => arity(args, 2, "eql").map(|()| bool_v(args[0].eql_p(&args[1]), t)),
        "equal" => arity(args, 2, "equal").map(|()| bool_v(args[0].equal_p(&args[1]), t)),
        // ---- lists ----
        "cons" => arity(args, 2, "cons").map(|()| Value::cons(args[0].clone(), args[1].clone())),
        "car" => arity(args, 1, "car").and_then(|()| car_of(&args[0], "car")),
        "cdr" => arity(args, 1, "cdr").and_then(|()| cdr_of(&args[0], "cdr")),
        "caar" => arity(args, 1, "caar").and_then(|()| car_of(&car_of(&args[0], "caar")?, "caar")),
        "cadr" => arity(args, 1, "cadr").and_then(|()| car_of(&cdr_of(&args[0], "cadr")?, "cadr")),
        "cdar" => arity(args, 1, "cdar").and_then(|()| cdr_of(&car_of(&args[0], "cdar")?, "cdar")),
        "cddr" => arity(args, 1, "cddr").and_then(|()| cdr_of(&cdr_of(&args[0], "cddr")?, "cddr")),
        "caddr" => arity(args, 1, "caddr")
            .and_then(|()| car_of(&cdr_of(&cdr_of(&args[0], "caddr")?, "caddr")?, "caddr")),
        "cdddr" => arity(args, 1, "cdddr")
            .and_then(|()| cdr_of(&cdr_of(&cdr_of(&args[0], "cdddr")?, "cdddr")?, "cdddr")),
        "list" => Ok(Value::list(args.iter().cloned())),
        "list*" => at_least(args, 1, "list*").map(|()| {
            let (last, init) = args.split_last().unwrap();
            let mut out = last.clone();
            for v in init.iter().rev() {
                out = Value::cons(v.clone(), out);
            }
            out
        }),
        "append" => {
            let mut items = Vec::new();
            let mut result = Ok(Value::Nil);
            if let Some((last, init)) = args.split_last() {
                for a in init {
                    match list_items(a, "append") {
                        Ok(mut v) => items.append(&mut v),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                if result.is_ok() {
                    let mut out = last.clone();
                    for v in items.into_iter().rev() {
                        out = Value::cons(v, out);
                    }
                    result = Ok(out);
                }
            }
            result
        }
        "reverse" => arity(args, 1, "reverse").and_then(|()| {
            list_items(&args[0], "reverse").map(|mut v| {
                v.reverse();
                Value::list(v)
            })
        }),
        "length" => arity(args, 1, "length")
            .and_then(|()| list_items(&args[0], "length").map(|v| Value::Fixnum(v.len() as i64))),
        "nth" => arity(args, 2, "nth").and_then(|()| {
            let n = fix(&args[0], "nth")?;
            let items = list_items(&args[1], "nth")?;
            Ok(items.get(n as usize).cloned().unwrap_or(Value::Nil))
        }),
        "nthcdr" => arity(args, 2, "nthcdr").and_then(|()| {
            let n = fix(&args[0], "nthcdr")?;
            let mut cur = args[1].clone();
            for _ in 0..n {
                cur = cdr_of(&cur, "nthcdr")?;
            }
            Ok(cur)
        }),
        "last" => arity(args, 1, "last").and_then(|()| {
            let mut cur = args[0].clone();
            loop {
                match &cur {
                    Value::Cons(c) if matches!(&*c.cdr.borrow(), Value::Cons(_)) => {
                        let next = c.cdr.borrow().clone();
                        cur = next;
                    }
                    _ => return Ok(cur),
                }
            }
        }),
        "assq" | "assoc" => arity(args, 2, name).and_then(|()| {
            let items = list_items(&args[1], name)?;
            for pair in items {
                if let Value::Cons(c) = &pair {
                    let key = c.car.borrow().clone();
                    let hit = if name == "assq" {
                        key.eq_p(&args[0])
                    } else {
                        key.equal_p(&args[0])
                    };
                    if hit {
                        return Ok(pair);
                    }
                }
            }
            Ok(Value::Nil)
        }),
        "memq" | "member" => arity(args, 2, name).and_then(|()| {
            let mut cur = args[1].clone();
            loop {
                match &cur {
                    Value::Cons(c) => {
                        let head = c.car.borrow().clone();
                        let hit = if name == "memq" {
                            head.eq_p(&args[0])
                        } else {
                            head.equal_p(&args[0])
                        };
                        if hit {
                            return Ok(cur);
                        }
                        let next = c.cdr.borrow().clone();
                        cur = next;
                    }
                    _ => return Ok(Value::Nil),
                }
            }
        }),
        "rplaca" => arity(args, 2, "rplaca").and_then(|()| match &args[0] {
            Value::Cons(c) => {
                *c.car.borrow_mut() = args[1].clone();
                Ok(args[0].clone())
            }
            other => Err(err(format!("rplaca: not a cons: {other}"))),
        }),
        "rplacd" => arity(args, 2, "rplacd").and_then(|()| match &args[0] {
            Value::Cons(c) => {
                *c.cdr.borrow_mut() = args[1].clone();
                Ok(args[0].clone())
            }
            other => Err(err(format!("rplacd: not a cons: {other}"))),
        }),
        "identity" => arity(args, 1, "identity").map(|()| args[0].clone()),
        "error" => Err(err(format!(
            "error: {}",
            args.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        ))),
        _ => return None,
    };
    Some(r)
}

fn round_like(
    args: &[Value],
    who: &str,
    f: fn(f64) -> f64,
    fi: fn(i64, i64) -> i64,
) -> Result<Value, LispError> {
    match args {
        [Value::Fixnum(n)] => Ok(Value::Fixnum(*n)),
        [v] => Ok(Value::Fixnum(f(num(v, who)?) as i64)),
        [Value::Fixnum(a), Value::Fixnum(b)] => {
            if *b == 0 {
                Err(err(format!("{who}: division by zero")))
            } else {
                Ok(Value::Fixnum(fi(*a, *b)))
            }
        }
        [a, b] => Ok(Value::Fixnum(f(num(a, who)? / num(b, who)?) as i64)),
        _ => Err(err(format!("{who}: wants 1 or 2 arguments"))),
    }
}

fn binf(args: &[Value], who: &str, f: fn(f64, f64) -> f64) -> Result<Value, LispError> {
    at_least(args, 2, who)?;
    let mut acc = flo(&args[0], who)?;
    for v in &args[1..] {
        acc = f(acc, flo(v, who)?);
    }
    Ok(Value::Flonum(acc))
}

fn bini(args: &[Value], who: &str, f: fn(i64, i64) -> Option<i64>) -> Result<Value, LispError> {
    at_least(args, 2, who)?;
    let mut acc = fix(&args[0], who)?;
    for v in &args[1..] {
        acc = f(acc, fix(v, who)?).ok_or_else(|| err(format!("{who}: fixnum overflow")))?;
    }
    Ok(Value::Fixnum(acc))
}

fn un_num(args: &[Value], who: &str, f: fn(f64) -> f64) -> Result<Value, LispError> {
    arity(args, 1, who)?;
    Ok(Value::Flonum(f(num(&args[0], who)?)))
}

fn un_flo(args: &[Value], who: &str, f: fn(f64) -> f64) -> Result<Value, LispError> {
    arity(args, 1, who)?;
    Ok(Value::Flonum(f(flo(&args[0], who)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::Interner;

    fn t() -> Symbol {
        Interner::new().intern("t")
    }

    fn call(name: &str, args: &[Value]) -> Value {
        call_builtin(name, args, &t()).unwrap().unwrap()
    }

    fn call_err(name: &str, args: &[Value]) -> LispError {
        call_builtin(name, args, &t()).unwrap().unwrap_err()
    }

    #[test]
    fn dispatch_covers_all_names() {
        // Every name in NAMES must dispatch (with possibly an arity
        // error, but never None).
        for name in NAMES {
            assert!(
                dispatch(name, &[Value::Fixnum(4), Value::Fixnum(2)], &t()).is_some(),
                "{name} not dispatched"
            );
        }
        assert!(dispatch("no-such-fn", &[], &t()).is_none());
    }

    #[test]
    fn generic_arithmetic_contagion() {
        assert_eq!(
            call("+", &[Value::Fixnum(1), Value::Fixnum(2)]),
            Value::Fixnum(3)
        );
        assert_eq!(
            call("+", &[Value::Fixnum(1), Value::Flonum(2.5)]),
            Value::Flonum(3.5)
        );
        assert_eq!(call("+", &[]), Value::Fixnum(0));
        assert_eq!(call("*", &[]), Value::Fixnum(1));
        assert_eq!(call("-", &[Value::Fixnum(5)]), Value::Fixnum(-5));
        assert_eq!(
            call("/", &[Value::Fixnum(7), Value::Fixnum(2)]),
            Value::Fixnum(3)
        );
        assert!(call_err("/", &[Value::Fixnum(1), Value::Fixnum(0)])
            .message
            .contains("zero"));
        assert!(call_err("+", &[Value::Fixnum(i64::MAX), Value::Fixnum(1)])
            .message
            .contains("overflow"));
    }

    #[test]
    fn comparisons_chain() {
        let args = [Value::Fixnum(1), Value::Fixnum(2), Value::Fixnum(3)];
        assert!(call("<", &args).is_true());
        assert!(!call(">", &args).is_true());
        assert!(call("=", &[Value::Fixnum(2), Value::Flonum(2.0)]).is_true());
    }

    #[test]
    fn float_specific_ops_require_flonums() {
        assert_eq!(
            call("+$f", &[Value::Flonum(1.0), Value::Flonum(2.0)]),
            Value::Flonum(3.0)
        );
        assert!(call_err("+$f", &[Value::Fixnum(1), Value::Flonum(2.0)])
            .message
            .contains("not a flonum"));
    }

    #[test]
    fn sinc_is_sine_of_cycles() {
        // sin(2π·0.25) = 1.
        let v = call("sinc$f", &[Value::Flonum(0.25)]);
        let Value::Flonum(x) = v else { panic!() };
        assert!((x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn floor_variants() {
        assert_eq!(call("floor", &[Value::Flonum(2.7)]), Value::Fixnum(2));
        assert_eq!(
            call("floor", &[Value::Fixnum(-7), Value::Fixnum(2)]),
            Value::Fixnum(-4)
        );
        assert_eq!(
            call("truncate", &[Value::Fixnum(-7), Value::Fixnum(2)]),
            Value::Fixnum(-3)
        );
        assert_eq!(
            call("mod", &[Value::Fixnum(-7), Value::Fixnum(2)]),
            Value::Fixnum(1)
        );
        assert_eq!(
            call("rem", &[Value::Fixnum(-7), Value::Fixnum(2)]),
            Value::Fixnum(-1)
        );
    }

    #[test]
    fn list_operations() {
        let l = call(
            "list",
            &[Value::Fixnum(1), Value::Fixnum(2), Value::Fixnum(3)],
        );
        assert_eq!(call("length", std::slice::from_ref(&l)), Value::Fixnum(3));
        assert_eq!(call("car", std::slice::from_ref(&l)), Value::Fixnum(1));
        assert_eq!(call("cadr", std::slice::from_ref(&l)), Value::Fixnum(2));
        assert_eq!(call("caddr", std::slice::from_ref(&l)), Value::Fixnum(3));
        assert_eq!(call("car", &[Value::Nil]), Value::Nil);
        let r = call("reverse", std::slice::from_ref(&l));
        assert_eq!(call("car", &[r]), Value::Fixnum(3));
        assert_eq!(
            call("nth", &[Value::Fixnum(1), l.clone()]),
            Value::Fixnum(2)
        );
        let ap = call("append", &[l.clone(), l.clone()]);
        assert_eq!(call("length", &[ap]), Value::Fixnum(6));
    }

    #[test]
    fn assoc_and_member() {
        let mut i = Interner::new();
        let a = Value::Sym(i.intern("a"));
        let b = Value::Sym(i.intern("b"));
        let alist = Value::list([
            Value::cons(a.clone(), Value::Fixnum(1)),
            Value::cons(b.clone(), Value::Fixnum(2)),
        ]);
        let hit = call("assq", &[b.clone(), alist.clone()]);
        assert_eq!(call("cdr", &[hit]), Value::Fixnum(2));
        assert_eq!(call("assq", &[Value::Fixnum(9), alist]), Value::Nil);
        let l = Value::list([a.clone(), b.clone()]);
        assert!(call("memq", &[b, l.clone()]).is_true());
        assert!(!call("memq", &[Value::Fixnum(1), l]).is_true());
    }

    #[test]
    fn rplaca_mutates() {
        let c = Value::cons(Value::Fixnum(1), Value::Nil);
        call("rplaca", &[c.clone(), Value::Fixnum(9)]);
        assert_eq!(call("car", &[c]), Value::Fixnum(9));
    }

    #[test]
    fn predicates() {
        assert!(call("null", &[Value::Nil]).is_true());
        assert!(call("atom", &[Value::Fixnum(1)]).is_true());
        assert!(!call("atom", &[Value::cons(Value::Nil, Value::Nil)]).is_true());
        assert!(call("fixnump", &[Value::Fixnum(1)]).is_true());
        assert!(call("flonump", &[Value::Flonum(1.0)]).is_true());
        assert!(call("zerop", &[Value::Fixnum(0)]).is_true());
        assert!(call("oddp", &[Value::Fixnum(-3)]).is_true());
        assert!(call("evenp", &[Value::Fixnum(-4)]).is_true());
    }

    #[test]
    fn error_builtin_signals() {
        assert!(call_err("error", &[Value::Fixnum(1)])
            .message
            .contains("error"));
    }

    #[test]
    fn expt_by_squaring_matches() {
        assert_eq!(
            call("expt", &[Value::Fixnum(3), Value::Fixnum(10)]),
            Value::Fixnum(59049)
        );
    }
}
