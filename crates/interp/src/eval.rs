//! The evaluator.
//!
//! A straightforward environment-passing interpreter over the internal
//! tree.  Function calls recurse (no tail-call optimization — that is the
//! *compiler's* contribution); `go`, `return`, and `throw` are modeled as
//! non-local flow values that propagate outward to the construct that
//! handles them.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use s1lisp_ast::{CallFunc, Lambda, NodeId, NodeKind, ProgItem, Tree, VarId};
use s1lisp_frontend::Function as FeFunction;
use s1lisp_reader::{Interner, Symbol};

use crate::builtins;
use crate::error::LispError;
use crate::value::{Closure, EnvNode, Function, Value};

/// Non-local control flow (plus errors) during evaluation.
enum Flow {
    Go(Symbol),
    Return(Value),
    Throw(Value, Value),
    Err(LispError),
    /// A tail call to a named function, unwound to the nearest
    /// application loop (only raised when [`Interp::tco`] is on).
    TailCall(String, Vec<Value>),
}

type R = Result<Value, Flow>;

fn rt_err(msg: impl Into<String>) -> Flow {
    Flow::Err(LispError::new(msg))
}

/// A defined function: the frontend's tree, shared so closures can
/// outlive calls.
#[derive(Debug, Clone)]
struct FuncDef {
    name: String,
    tree: Rc<Tree>,
}

/// Execution statistics, used by the experiments (e.g. E4's call-depth
/// comparison against compiled code).
#[derive(Debug, Default)]
pub struct InterpStats {
    /// Total user-function applications.
    pub calls: Cell<u64>,
    /// Deepest user-function nesting reached.
    pub max_depth: Cell<usize>,
    /// Total special-variable lookups (each is a linear search in deep
    /// binding; compare experiment E10).
    pub special_lookups: Cell<u64>,
    /// Total closure objects constructed.
    pub closures_made: Cell<u64>,
}

impl InterpStats {
    /// Resets all counters.
    pub fn reset(&self) {
        self.calls.set(0);
        self.max_depth.set(0);
        self.special_lookups.set(0);
        self.closures_made.set(0);
    }
}

/// The interpreter: a table of functions, global values, and the deep
/// binding stack for special variables.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Interp {
    functions: HashMap<String, FuncDef>,
    globals: RefCell<HashMap<String, Value>>,
    /// Deep-binding stack: (name, value-cell), innermost last.
    specials: RefCell<Vec<(String, Rc<RefCell<Value>>)>>,
    /// The canonical truth symbol.
    t: Symbol,
    /// Function-call depth limit.  The default is conservative enough to
    /// signal a clean Lisp-level error before the host stack runs out,
    /// even in debug builds with 2 MiB test-thread stacks; raise it when
    /// running release builds on a generous stack.
    pub max_depth: usize,
    /// Honor the dialect's tail-recursive semantics (§2) by trampolining
    /// tail calls to named functions.  **Off by default**: the
    /// non-optimizing configuration is experiment E4's baseline, showing
    /// what the compiler's parameter-passing gotos buy.  Limitations
    /// (shared with the compiler's conservatisms): closures do not
    /// trampoline, and a tail call out of a `let` that binds specials
    /// unbinds them first.
    pub tco: bool,
    /// Execution statistics.
    pub stats: InterpStats,
}

impl Default for Interp {
    fn default() -> Interp {
        Interp::new()
    }
}

impl Interp {
    /// Creates an empty interpreter.
    pub fn new() -> Interp {
        Interp {
            functions: HashMap::new(),
            globals: RefCell::new(HashMap::new()),
            specials: RefCell::new(Vec::new()),
            t: Interner::new().intern("t"),
            max_depth: 150,
            tco: false,
            stats: InterpStats::default(),
        }
    }

    /// Defines (or redefines) a function converted by the frontend.
    pub fn define(&mut self, f: FeFunction) {
        let name = f.name.as_str().to_string();
        self.functions.insert(
            name.clone(),
            FuncDef {
                name,
                tree: Rc::new(f.tree),
            },
        );
    }

    /// Sets the global value of a (special) variable.
    pub fn set_global(&self, name: &str, value: Value) {
        self.globals.borrow_mut().insert(name.to_string(), value);
    }

    /// Reads the global value of a variable, if set.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals.borrow().get(name).cloned()
    }

    /// Calls defined function `name` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`LispError`] for run-time errors, uncaught `throw`s,
    /// or exceeding the call-depth limit.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, LispError> {
        let def = self
            .functions
            .get(name)
            .ok_or_else(|| LispError::new(format!("undefined function {name}")))?;
        match self.apply_def(def, args.to_vec(), 0) {
            Ok(v) => Ok(v),
            Err(Flow::Err(e)) => Err(e),
            Err(Flow::Throw(tag, _)) => Err(LispError::new(format!("uncaught throw to {tag}"))),
            Err(Flow::Go(tag)) => Err(LispError::new(format!("go to unknown tag {tag}"))),
            Err(Flow::Return(_)) => Err(LispError::new("return outside progbody")),
            Err(Flow::TailCall(..)) => unreachable!("trampoline consumed in apply_def"),
        }
    }

    /// Calls a function *value* (closure or named function).
    ///
    /// # Errors
    ///
    /// As for [`Interp::call`].
    pub fn funcall(&self, f: &Value, args: &[Value]) -> Result<Value, LispError> {
        match self.apply_value(f, args.to_vec(), 0) {
            Ok(v) => Ok(v),
            Err(Flow::Err(e)) => Err(e),
            Err(Flow::Throw(tag, _)) => Err(LispError::new(format!("uncaught throw to {tag}"))),
            Err(_) => Err(LispError::new("non-local exit escaped function")),
        }
    }

    // ---- application ----

    fn apply_def(&self, def: &FuncDef, args: Vec<Value>, depth: usize) -> R {
        let mut def = def.clone();
        let mut args = args;
        loop {
            self.stats.calls.set(self.stats.calls.get() + 1);
            if depth + 1 > self.stats.max_depth.get() {
                self.stats.max_depth.set(depth + 1);
            }
            if depth >= self.max_depth {
                return Err(rt_err(format!(
                    "stack overflow: call depth exceeded {} in {}",
                    self.max_depth, def.name
                )));
            }
            let tree = def.tree.clone();
            let NodeKind::Lambda(l) = tree.kind(tree.root).clone() else {
                return Err(rt_err(format!("{} is not a lambda", def.name)));
            };
            match self.apply_lambda(&tree, &l, None, args, depth, &def.name) {
                Err(Flow::TailCall(name, next_args)) => {
                    let Some(next) = self.functions.get(&name) else {
                        // A builtin in tail position: evaluate directly.
                        return match crate::builtins::call_builtin(&name, &next_args, &self.t) {
                            Some(r) => r.map_err(Flow::Err),
                            None => Err(rt_err(format!("undefined function {name}"))),
                        };
                    };
                    def = next.clone();
                    args = next_args;
                }
                other => return other,
            }
        }
    }

    fn apply_value(&self, f: &Value, args: Vec<Value>, depth: usize) -> R {
        match f {
            Value::Func(Function::Closure(c)) => {
                self.stats.calls.set(self.stats.calls.get() + 1);
                if depth + 1 > self.stats.max_depth.get() {
                    self.stats.max_depth.set(depth + 1);
                }
                if depth >= self.max_depth {
                    return Err(rt_err("stack overflow: call depth exceeded"));
                }
                let NodeKind::Lambda(l) = c.tree.kind(c.lambda).clone() else {
                    return Err(rt_err("corrupt closure"));
                };
                self.apply_lambda(&c.tree, &l, c.env.clone(), args, depth, &c.name)
            }
            Value::Func(Function::Global(name)) => {
                if let Some(def) = self.functions.get(name) {
                    let def = def.clone();
                    return self.apply_def(&def, args, depth);
                }
                match builtins::call_builtin(name, &args, &self.t) {
                    Some(r) => r.map_err(Flow::Err),
                    None => Err(rt_err(format!("undefined function {name}"))),
                }
            }
            other => Err(rt_err(format!("not a function: {other}"))),
        }
    }

    /// Binds parameters and evaluates a lambda body.  Special parameters
    /// deep-bind on the dynamic stack; lexicals extend the environment
    /// chain.
    fn apply_lambda(
        &self,
        tree: &Rc<Tree>,
        l: &Lambda,
        env: Option<Rc<EnvNode>>,
        args: Vec<Value>,
        depth: usize,
        name: &str,
    ) -> R {
        self.apply_lambda_tail(tree, l, env, args, depth, name, self.tco)
    }

    /// As [`Interp::apply_lambda`], with explicit control over whether the
    /// body is in trampoline-tail position.
    #[allow(clippy::too_many_arguments)]
    fn apply_lambda_tail(
        &self,
        tree: &Rc<Tree>,
        l: &Lambda,
        mut env: Option<Rc<EnvNode>>,
        args: Vec<Value>,
        depth: usize,
        name: &str,
        body_tail: bool,
    ) -> R {
        let (min, max) = l.arity();
        if args.len() < min || max.map(|m| args.len() > m).unwrap_or(false) {
            return Err(rt_err(format!(
                "{name}: wrong number of arguments: got {}, wants {min}{}",
                args.len(),
                match max {
                    Some(m) if m == min => String::new(),
                    Some(m) => format!("..{m}"),
                    None => "+".to_string(),
                }
            )));
        }
        let mut specials_pushed = 0usize;
        let mut args = args.into_iter();
        let bind = |this: &Interp,
                    var: VarId,
                    value: Value,
                    env: &mut Option<Rc<EnvNode>>,
                    specials_pushed: &mut usize| {
            let v = tree.var(var);
            if v.special {
                this.specials
                    .borrow_mut()
                    .push((v.name.as_str().to_string(), Rc::new(RefCell::new(value))));
                *specials_pushed += 1;
            } else {
                *env = Some(Rc::new(EnvNode {
                    var,
                    value: RefCell::new(value),
                    next: env.take(),
                }));
            }
        };
        let mut result: Option<Flow> = None;
        for &p in &l.required {
            let value = args.next().expect("arity checked");
            bind(self, p, value, &mut env, &mut specials_pushed);
        }
        for opt in &l.optional {
            let value = match args.next() {
                Some(v) => Ok(v),
                // The default expression evaluates in the environment
                // built so far (it may refer to earlier parameters, §2).
                None => self.eval_tail(tree, opt.default, &env, depth + 1, false),
            };
            match value {
                Ok(v) => bind(self, opt.var, v, &mut env, &mut specials_pushed),
                Err(e) => {
                    result = Some(e);
                    break;
                }
            }
        }
        if result.is_none() {
            if let Some(rest) = l.rest {
                let value = Value::list(args.by_ref());
                bind(self, rest, value, &mut env, &mut specials_pushed);
            }
        }
        let out = match result {
            Some(e) => Err(e),
            None => self.eval_tail(tree, l.body, &env, depth + 1, body_tail),
        };
        // Unwind dynamic bindings regardless of how the body exited.
        let mut stack = self.specials.borrow_mut();
        let new_len = stack.len() - specials_pushed;
        stack.truncate(new_len);
        out
    }

    // ---- evaluation ----

    fn eval(&self, tree: &Rc<Tree>, node: NodeId, env: &Option<Rc<EnvNode>>, depth: usize) -> R {
        self.eval_tail(tree, node, env, depth, false)
    }

    /// Evaluation with a tail-position flag: when `tail` is set and TCO
    /// is enabled, a call to a named function unwinds to the nearest
    /// application loop instead of recursing (§2's tail-recursive
    /// semantics; closures do not trampoline).
    fn eval_tail(
        &self,
        tree: &Rc<Tree>,
        node: NodeId,
        env: &Option<Rc<EnvNode>>,
        depth: usize,
        tail: bool,
    ) -> R {
        match tree.kind(node) {
            NodeKind::Constant(d) => Ok(Value::from_datum(d)),
            NodeKind::VarRef(v) => self.read_var(tree, *v, env),
            NodeKind::Setq { var, value } => {
                let value = self.eval(tree, *value, env, depth)?;
                self.write_var(tree, *var, env, value.clone())?;
                Ok(value)
            }
            NodeKind::If { test, then, els } => {
                if self.eval(tree, *test, env, depth)?.is_true() {
                    self.eval_tail(tree, *then, env, depth, tail)
                } else {
                    self.eval_tail(tree, *els, env, depth, tail)
                }
            }
            NodeKind::Progn(body) => {
                let (last, init) = body.split_last().expect("progn non-empty");
                for &b in init {
                    self.eval(tree, b, env, depth)?;
                }
                self.eval_tail(tree, *last, env, depth, tail)
            }
            NodeKind::Lambda(_) => {
                self.stats
                    .closures_made
                    .set(self.stats.closures_made.get() + 1);
                Ok(Value::Func(Function::Closure(Rc::new(Closure {
                    tree: tree.clone(),
                    lambda: node,
                    env: env.clone(),
                    name: "anonymous".to_string(),
                }))))
            }
            NodeKind::Call { func, args } => self.eval_call(tree, func, args, env, depth, tail),
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => {
                let key = self.eval(tree, *key, env, depth)?;
                for clause in clauses {
                    for k in &clause.keys {
                        if key.eql_p(&Value::from_datum(k)) {
                            return self.eval_tail(tree, clause.body, env, depth, tail);
                        }
                    }
                }
                self.eval_tail(tree, *default, env, depth, tail)
            }
            NodeKind::Catcher { tag, body } => {
                let tag = self.eval(tree, *tag, env, depth)?;
                match self.eval(tree, *body, env, depth) {
                    Err(Flow::Throw(thrown, value)) if thrown.eql_p(&tag) => Ok(value),
                    other => other,
                }
            }
            NodeKind::Progbody(items) => self.eval_progbody(tree, items, env, depth),
            NodeKind::Go(tag) => Err(Flow::Go(tag.clone())),
            NodeKind::Return(v) => {
                let value = self.eval(tree, *v, env, depth)?;
                Err(Flow::Return(value))
            }
        }
    }

    fn eval_progbody(
        &self,
        tree: &Rc<Tree>,
        items: &[ProgItem],
        env: &Option<Rc<EnvNode>>,
        depth: usize,
    ) -> R {
        let has_tag = |tag: &Symbol| {
            items
                .iter()
                .any(|i| matches!(i, ProgItem::Tag(t) if t == tag))
        };
        let mut pc = 0usize;
        let mut steps: u64 = 0;
        while pc < items.len() {
            match &items[pc] {
                ProgItem::Tag(_) => pc += 1,
                ProgItem::Stmt(s) => match self.eval(tree, *s, env, depth) {
                    Ok(_) => pc += 1,
                    Err(Flow::Go(tag)) if has_tag(&tag) => {
                        pc = items
                            .iter()
                            .position(|i| matches!(i, ProgItem::Tag(t) if *t == tag))
                            .expect("has_tag");
                        steps += 1;
                        if steps > 100_000_000 {
                            return Err(rt_err("progbody loop exceeded step limit"));
                        }
                    }
                    Err(Flow::Return(v)) => return Ok(v),
                    Err(other) => return Err(other),
                },
            }
        }
        Ok(Value::Nil)
    }

    fn eval_call(
        &self,
        tree: &Rc<Tree>,
        func: &CallFunc,
        args: &[NodeId],
        env: &Option<Rc<EnvNode>>,
        depth: usize,
        tail: bool,
    ) -> R {
        let mut argv = Vec::with_capacity(args.len());
        match func {
            CallFunc::Expr(f) => {
                // ((lambda …) args…): a let — bind in the *current*
                // environment.  Otherwise a computed function.
                if let NodeKind::Lambda(l) = tree.kind(*f).clone() {
                    for &a in args {
                        argv.push(self.eval(tree, a, env, depth)?);
                    }
                    return self.apply_lambda_tail(
                        tree,
                        &l,
                        env.clone(),
                        argv,
                        depth,
                        "let",
                        tail && self.tco,
                    );
                }
                let fv = self.eval(tree, *f, env, depth)?;
                for &a in args {
                    argv.push(self.eval(tree, a, env, depth)?);
                }
                self.apply_value(&fv, argv, depth)
            }
            CallFunc::Global(g) => {
                let name = g.as_str();
                for &a in args {
                    argv.push(self.eval(tree, a, env, depth)?);
                }
                match name {
                    "throw" => {
                        if argv.len() != 2 {
                            return Err(rt_err("throw: wants tag and value"));
                        }
                        let value = argv.pop().unwrap();
                        let tag = argv.pop().unwrap();
                        Err(Flow::Throw(tag, value))
                    }
                    "apply" => {
                        if argv.len() < 2 {
                            return Err(rt_err("apply: wants function and arguments"));
                        }
                        let spread = argv.pop().unwrap();
                        let f = argv.remove(0);
                        let mut rest = argv;
                        let mut cur = spread;
                        loop {
                            match cur {
                                Value::Nil => break,
                                Value::Cons(c) => {
                                    rest.push(c.car.borrow().clone());
                                    let next = c.cdr.borrow().clone();
                                    cur = next;
                                }
                                other => {
                                    return Err(rt_err(format!(
                                        "apply: improper argument list ending in {other}"
                                    )))
                                }
                            }
                        }
                        self.apply_value(&f, rest, depth)
                    }
                    "%function" => {
                        let [Value::Sym(s)] = argv.as_slice() else {
                            return Err(rt_err("%function: wants a symbol"));
                        };
                        Ok(Value::Func(Function::Global(s.as_str().to_string())))
                    }
                    _ => {
                        if tail && self.tco {
                            // §2: "a procedure call in this case is more
                            // akin to a parameter-passing goto".
                            return Err(Flow::TailCall(name.to_string(), argv));
                        }
                        if let Some(def) = self.functions.get(name) {
                            let def = def.clone();
                            return self.apply_def(&def, argv, depth);
                        }
                        match builtins::call_builtin(name, &argv, &self.t) {
                            Some(r) => r.map_err(Flow::Err),
                            None => Err(rt_err(format!("undefined function {name}"))),
                        }
                    }
                }
            }
        }
    }

    // ---- variables ----

    fn read_var(&self, tree: &Rc<Tree>, v: VarId, env: &Option<Rc<EnvNode>>) -> R {
        let var = tree.var(v);
        if var.special {
            return self.read_special(var.name.as_str());
        }
        let mut cur = env.clone();
        while let Some(node) = cur {
            if node.var == v {
                return Ok(node.value.borrow().clone());
            }
            cur = node.next.clone();
        }
        Err(rt_err(format!("unbound lexical variable {}", var.name)))
    }

    fn write_var(
        &self,
        tree: &Rc<Tree>,
        v: VarId,
        env: &Option<Rc<EnvNode>>,
        value: Value,
    ) -> Result<(), Flow> {
        let var = tree.var(v);
        if var.special {
            return self.write_special(var.name.as_str(), value);
        }
        let mut cur = env.clone();
        while let Some(node) = cur {
            if node.var == v {
                *node.value.borrow_mut() = value;
                return Ok(());
            }
            cur = node.next.clone();
        }
        Err(rt_err(format!("unbound lexical variable {}", var.name)))
    }

    fn read_special(&self, name: &str) -> R {
        self.stats
            .special_lookups
            .set(self.stats.special_lookups.get() + 1);
        // Deep binding: linear search of the binding stack (§4.4).
        for (n, cell) in self.specials.borrow().iter().rev() {
            if n == name {
                return Ok(cell.borrow().clone());
            }
        }
        self.globals
            .borrow()
            .get(name)
            .cloned()
            .ok_or_else(|| rt_err(format!("unbound special variable {name}")))
    }

    fn write_special(&self, name: &str, value: Value) -> Result<(), Flow> {
        for (n, cell) in self.specials.borrow().iter().rev() {
            if n == name {
                *cell.borrow_mut() = value;
                return Ok(());
            }
        }
        self.globals.borrow_mut().insert(name.to_string(), value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::read_all_str;

    /// Builds an interpreter from source text.
    pub(super) fn load(src: &str) -> Interp {
        let mut i = Interner::new();
        let forms = read_all_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let fns = fe.convert_toplevel(&forms).unwrap();
        let mut interp = Interp::new();
        for f in fns {
            interp.define(f);
        }
        interp
    }

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    fn fl(x: f64) -> Value {
        Value::Flonum(x)
    }

    #[test]
    fn quadratic_roots() {
        let interp = load(
            "(defun quadratic (a b c)
               (let ((d (- (* b b) (* 4.0 a c))))
                 (cond ((< d 0) '())
                       ((= d 0) (list (/ (- b) (* 2.0 a))))
                       (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
                            (list (/ (+ (- b) sd) two-a)
                                  (/ (- (- b) sd) two-a)))))))",
        );
        // x² - 3x + 2 = 0 → roots 2 and 1.
        let v = interp
            .call("quadratic", &[fl(1.0), fl(-3.0), fl(2.0)])
            .unwrap();
        assert_eq!(v, Value::list([fl(2.0), fl(1.0)]));
        // x² + 1 = 0 → no real roots.
        let v = interp
            .call("quadratic", &[fl(1.0), fl(0.0), fl(1.0)])
            .unwrap();
        assert_eq!(v, Value::Nil);
        // x² - 2x + 1 → double root 1.
        let v = interp
            .call("quadratic", &[fl(1.0), fl(-2.0), fl(1.0)])
            .unwrap();
        assert_eq!(v, Value::list([fl(1.0)]));
    }

    #[test]
    fn exptl_repeated_squaring() {
        let interp = load(
            "(defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
        );
        let v = interp.call("exptl", &[fx(3), fx(10), fx(1)]).unwrap();
        assert_eq!(v, fx(59049));
        // Call depth is logarithmic.
        assert!(interp.stats.max_depth.get() <= 6);
    }

    #[test]
    fn optional_defaults_as_in_testfn() {
        let interp = load("(defun f (a &optional (b 3.0) (c a)) (list a b c))");
        assert_eq!(
            interp.call("f", &[fx(1)]).unwrap(),
            Value::list([fx(1), fl(3.0), fx(1)])
        );
        assert_eq!(
            interp.call("f", &[fx(1), fx(2)]).unwrap(),
            Value::list([fx(1), fx(2), fx(1)])
        );
        assert_eq!(
            interp.call("f", &[fx(1), fx(2), fx(3)]).unwrap(),
            Value::list([fx(1), fx(2), fx(3)])
        );
        assert!(interp.call("f", &[]).is_err());
        assert!(interp.call("f", &[fx(1), fx(2), fx(3), fx(4)]).is_err());
    }

    #[test]
    fn rest_parameter_collects() {
        let interp = load("(defun f (a &rest r) (cons a r))");
        assert_eq!(
            interp.call("f", &[fx(1), fx(2), fx(3)]).unwrap(),
            Value::list([fx(1), fx(2), fx(3)])
        );
        assert_eq!(interp.call("f", &[fx(1)]).unwrap(), Value::list([fx(1)]));
    }

    #[test]
    fn closures_capture_lexically() {
        let interp = load(
            "(defun make-adder (n) (lambda (x) (+ x n)))
             (defun use-it () (let ((add3 (make-adder 3)) (add5 (make-adder 5)))
                                (list (add3 10) (add5 10))))",
        );
        assert_eq!(
            interp.call("use-it", &[]).unwrap(),
            Value::list([fx(13), fx(15)])
        );
        assert!(interp.stats.closures_made.get() >= 2);
    }

    #[test]
    fn closure_mutation_shares_environment() {
        let interp = load(
            "(defun make-counter ()
               (let ((n 0))
                 (lambda () (setq n (+ n 1)) n)))
             (defun run ()
               (let ((c (make-counter)))
                 (c) (c) (c)))",
        );
        assert_eq!(interp.call("run", &[]).unwrap(), fx(3));
    }

    #[test]
    fn special_variables_deep_bind() {
        let interp = load(
            "(proclaim '(special depth))
             (defun outer (depth) (declare (special depth)) (inner))
             (defun inner () depth)",
        );
        interp.set_global("depth", fx(0));
        // inner sees outer's dynamic binding, not the global.
        assert_eq!(interp.call("outer", &[fx(42)]).unwrap(), fx(42));
        assert_eq!(interp.call("inner", &[]).unwrap(), fx(0));
        assert!(interp.stats.special_lookups.get() >= 2);
    }

    #[test]
    fn special_bindings_unwind_on_throw() {
        let interp = load(
            "(proclaim '(special level))
             (defun probe () level)
             (defun thrower (level) (declare (special level)) (throw 'out 'gone))
             (defun run ()
               (catch 'out (thrower 9))
               (probe))",
        );
        interp.set_global("level", fx(1));
        assert_eq!(interp.call("run", &[]).unwrap(), fx(1));
    }

    #[test]
    fn catch_and_throw() {
        let interp = load(
            "(defun find-first (pred lst)
               (catch 'found (scan pred lst)))
             (defun scan (pred lst)
               (cond ((null lst) '())
                     ((pred (car lst)) (throw 'found (car lst)))
                     (t (scan pred (cdr lst)))))",
        );
        let lst = Value::list([fx(1), fx(2), fx(3), fx(4)]);
        let v = interp
            .funcall(
                &Value::Func(Function::Global("find-first".into())),
                &[Value::Func(Function::Global("evenp".into())), lst],
            )
            .unwrap();
        assert_eq!(v, fx(2));
    }

    #[test]
    fn prog_loop_iterates_without_recursion() {
        let interp = load(
            "(defun sum-to (n)
               (prog (acc)
                 (setq acc 0)
                 top
                 (if (= n 0) (return acc))
                 (setq acc (+ acc n) n (- n 1))
                 (go top)))",
        );
        assert_eq!(
            interp.call("sum-to", &[fx(100_000)]).unwrap(),
            fx(5_000_050_000)
        );
        // A progbody loop does not consume call depth.
        assert!(interp.stats.max_depth.get() <= 2);
    }

    #[test]
    fn do_and_dotimes_loop() {
        let interp = load(
            "(defun sum-squares (n)
               (let ((acc 0))
                 (dotimes (i n acc)
                   (setq acc (+ acc (* i i))))))",
        );
        assert_eq!(interp.call("sum-squares", &[fx(10)]).unwrap(), fx(285));
    }

    #[test]
    fn deep_recursion_overflows_cleanly() {
        let interp = load("(defun count-down (n) (if (= n 0) 'done (count-down (- n 1))))");
        let e = interp.call("count-down", &[fx(1_000_000)]).unwrap_err();
        assert!(e.message.contains("stack overflow"), "{e}");
    }

    #[test]
    fn caseq_dispatches_on_eql() {
        let interp = load(
            "(defun classify (x)
               (caseq x ((1 2 3) 'small) ((10) 'ten) (t 'other)))",
        );
        let mut i = Interner::new();
        assert_eq!(
            interp.call("classify", &[fx(2)]).unwrap(),
            Value::Sym(i.intern("small"))
        );
        assert_eq!(
            interp.call("classify", &[fx(10)]).unwrap(),
            Value::Sym(i.intern("ten"))
        );
        assert_eq!(
            interp.call("classify", &[fx(99)]).unwrap(),
            Value::Sym(i.intern("other"))
        );
    }

    #[test]
    fn higher_order_via_function_values() {
        let interp = load(
            "(defun compose (f g) (lambda (x) (f (g x))))
             (defun add1 (x) (+ x 1))
             (defun double (x) (* x 2))
             (defun run (x) ((compose #'add1 #'double) x))",
        );
        assert_eq!(interp.call("run", &[fx(5)]).unwrap(), fx(11));
    }

    #[test]
    fn tail_recursive_loop_consumes_interpreter_stack() {
        // The E4 baseline: without TCO, a tail-recursive loop's depth is
        // linear in n.
        let interp = load("(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))");
        interp.call("loopn", &[fx(120)]).unwrap();
        assert!(interp.stats.max_depth.get() >= 120);
    }

    #[test]
    fn setq_of_global_special() {
        let interp = load("(proclaim '(special *acc*)) (defun bump () (setq *acc* (+ *acc* 1)))");
        interp.set_global("*acc*", fx(0));
        interp.call("bump", &[]).unwrap();
        interp.call("bump", &[]).unwrap();
        assert_eq!(interp.global("*acc*").unwrap(), fx(2));
    }

    #[test]
    fn undefined_function_errors() {
        let interp = load("(defun f () (no-such-function 1))");
        assert!(interp.call("f", &[]).is_err());
        assert!(interp.call("nope", &[]).is_err());
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests::load;
    use super::*;

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    #[test]
    fn apply_and_funcall_variants() {
        let interp = load(
            "(defun add3 (a b c) (+ a b c))
             (defun run (l) (apply #'add3 l))
             (defun run2 (f a l) (apply f a l))",
        );
        let l = Value::list([fx(1), fx(2), fx(3)]);
        assert_eq!(interp.call("run", &[l]).unwrap(), fx(6));
        // apply with leading loose arguments.
        let l2 = Value::list([fx(2), fx(3)]);
        assert_eq!(
            interp
                .call("run2", &[Value::global_function("add3"), fx(1), l2])
                .unwrap(),
            fx(6)
        );
    }

    #[test]
    fn do_star_steps_sequentially() {
        // With do*, b's step sees a's already-updated value.
        let interp = load(
            "(defun seq (n)
               (do* ((i 0 (+ i 1)) (a 0 (+ a 1)) (b 0 (+ a 10)))
                    ((= i n) (list a b))))",
        );
        let v = interp.call("seq", &[fx(2)]).unwrap();
        assert_eq!(v, Value::list([fx(2), fx(12)]));
        // Plain do steps in parallel: b sees the previous a.
        let interp = load(
            "(defun par (n)
               (do ((i 0 (+ i 1)) (a 0 (+ a 1)) (b 0 (+ a 10)))
                   ((= i n) (list a b))))",
        );
        let v = interp.call("par", &[fx(2)]).unwrap();
        assert_eq!(v, Value::list([fx(2), fx(11)]));
    }

    #[test]
    fn nested_catch_same_tag_inner_wins() {
        let interp = load(
            "(defun run ()
               (catch 'x (+ 100 (catch 'x (throw 'x 1)))))",
        );
        assert_eq!(interp.call("run", &[]).unwrap(), fx(101));
    }

    #[test]
    fn optional_default_error_propagates() {
        let interp = load("(defun f (&optional (x (car 5))) x)");
        assert!(interp.call("f", &[]).is_err());
        assert_eq!(interp.call("f", &[fx(1)]).unwrap(), fx(1));
    }

    #[test]
    fn throw_through_optional_default() {
        let interp = load(
            "(defun f (&optional (x (throw 'esc 'gone))) x)
             (defun run () (catch 'esc (f)))",
        );
        let v = interp.call("run", &[]).unwrap();
        assert_eq!(v.to_string(), "gone");
    }

    #[test]
    fn go_targets_resolve_innermost_first() {
        let interp = load(
            "(defun run ()
               (prog (acc)
                 (setq acc 0)
                 next
                 (prog (k)
                   (setq k 0)
                   next        ; shadows outer tag
                   (setq acc (+ acc 1))
                   (setq k (+ k 1))
                   (if (< k 3) (go next)))
                 (if (< acc 6) (go next))
                 (return acc)))",
        );
        assert_eq!(interp.call("run", &[]).unwrap(), fx(6));
    }

    #[test]
    fn stats_track_closures_and_lookups() {
        let interp = load(
            "(proclaim '(special *s*))
             (defun f () (lambda () *s*))
             (defun run () (funcall (f)))",
        );
        interp.set_global("*s*", fx(5));
        assert_eq!(interp.call("run", &[]).unwrap(), fx(5));
        assert_eq!(interp.stats.closures_made.get(), 1);
        assert_eq!(interp.stats.special_lookups.get(), 1);
    }
}

#[cfg(test)]
mod tco_tests {
    use super::tests::load;
    use super::*;

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    #[test]
    fn tco_runs_deep_loops_in_constant_depth() {
        let mut interp = load("(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))");
        interp.tco = true;
        let v = interp.call("loopn", &[fx(1_000_000)]).unwrap();
        assert_eq!(v.to_string(), "done");
        assert_eq!(interp.stats.max_depth.get(), 1);
    }

    #[test]
    fn tco_trampolines_mutual_recursion() {
        let mut interp = load(
            "(defun even? (n) (if (zerop n) t (odd? (- n 1))))
             (defun odd? (n) (if (zerop n) '() (even? (- n 1))))",
        );
        interp.tco = true;
        assert!(interp.call("even?", &[fx(100_000)]).unwrap().is_true());
        assert!(!interp.call("even?", &[fx(100_001)]).unwrap().is_true());
        assert_eq!(interp.stats.max_depth.get(), 1);
    }

    #[test]
    fn tco_preserves_results_of_the_corpus_shapes() {
        let mut a = load(
            "(defun exptl (x n acc)
               (cond ((zerop n) acc)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* acc x)))
                     (t (exptl (* x x) (floor (/ n 2)) acc))))",
        );
        let b = load(
            "(defun exptl (x n acc)
               (cond ((zerop n) acc)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* acc x)))
                     (t (exptl (* x x) (floor (/ n 2)) acc))))",
        );
        a.tco = true;
        let args = [fx(3), fx(10), fx(1)];
        assert_eq!(
            a.call("exptl", &args).unwrap(),
            b.call("exptl", &args).unwrap()
        );
    }

    #[test]
    fn non_tail_recursion_still_consumes_depth() {
        let mut interp = load("(defun fact (n) (if (zerop n) 1 (* n (fact (- n 1)))))");
        interp.tco = true;
        assert_eq!(interp.call("fact", &[fx(10)]).unwrap(), fx(3_628_800));
        assert!(interp.stats.max_depth.get() >= 10);
        assert!(
            interp.call("fact", &[fx(100_000)]).is_err(),
            "still overflows"
        );
    }

    #[test]
    fn tail_call_to_builtin_returns_its_value() {
        let mut interp = load(
            "(defun last-of (l) (car (my-reverse l)))
            (defun my-reverse (l) (rev2 l '()))
            (defun rev2 (l acc) (if (null l) acc (rev2 (cdr l) (cons (car l) acc))))",
        );
        interp.tco = true;
        let l = Value::list((1..=5).map(fx));
        assert_eq!(interp.call("last-of", &[l]).unwrap(), fx(5));
    }
}
