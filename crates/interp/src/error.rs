//! Interpreter errors.

use std::fmt;

/// A run-time error signalled by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LispError {
    /// Human-readable description.
    pub message: String,
}

impl LispError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> LispError {
        LispError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lisp error: {}", self.message)
    }
}

impl std::error::Error for LispError {}
