//! Reference interpreter for the `s1lisp` dialect.
//!
//! The interpreter evaluates the *internal tree* produced by
//! `s1lisp-frontend` directly, with the semantics of §2 of the paper:
//! lexical scoping with heap-allocated closures, dynamically scoped
//! ("special") variables via deep binding, `&optional`/`&rest` parameters
//! with computed defaults, `catch`/`throw`, and `prog`-style control.
//!
//! Its role in the reproduction is the **semantic oracle**: the compiled
//! code running on the S-1 simulator must produce the same values the
//! interpreter does (differential testing), and its call-depth statistics
//! provide the "naive" baseline for the tail-recursion experiment (E4).
//!
//! The interpreter deliberately does **not** implement tail-call
//! optimization — the paper's point is that the *compiler* turns tail
//! calls into jumps.
//!
//! # Examples
//!
//! ```
//! use s1lisp_frontend::Frontend;
//! use s1lisp_interp::{Interp, Value};
//! use s1lisp_reader::{read_str, Interner};
//!
//! let mut i = Interner::new();
//! let src = read_str("(defun square (x) (* x x))", &mut i).unwrap();
//! let mut fe = Frontend::new(&mut i);
//! let f = fe.convert_defun(&src).unwrap();
//! let mut interp = Interp::new();
//! interp.define(f);
//! let v = interp.call("square", &[Value::Fixnum(7)]).unwrap();
//! assert_eq!(v, Value::Fixnum(49));
//! ```

#![warn(missing_docs)]

mod builtins;
mod error;
mod eval;
mod value;

pub use builtins::{call_builtin, eval_primop, NAMES as BUILTIN_NAMES};
pub use error::LispError;
pub use eval::{Interp, InterpStats};
pub use value::{Function, Value};
