//! Run-time values of the interpreter.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use s1lisp_ast::{NodeId, Tree};
use s1lisp_reader::{Datum, Symbol};

/// A mutable cons cell in the interpreter's "heap".
#[derive(Debug)]
pub struct ConsCell {
    /// The car field.
    pub car: RefCell<Value>,
    /// The cdr field.
    pub cdr: RefCell<Value>,
}

/// A lexical closure: a lambda node, the tree it lives in, and the
/// captured environment.
#[derive(Debug)]
pub struct Closure {
    /// The tree containing the lambda.
    pub tree: Rc<Tree>,
    /// The lambda node.
    pub lambda: NodeId,
    /// Captured lexical environment.
    pub env: Option<Rc<EnvNode>>,
    /// Name for diagnostics (the enclosing defun).
    pub name: String,
}

/// One lexical binding in an environment chain.
#[derive(Debug)]
pub struct EnvNode {
    /// The bound variable (a `VarId` in the closure's tree).
    pub var: s1lisp_ast::VarId,
    /// The value cell (mutable for `setq`).
    pub value: RefCell<Value>,
    /// Enclosing bindings.
    pub next: Option<Rc<EnvNode>>,
}

/// A callable value.
#[derive(Clone, Debug)]
pub enum Function {
    /// A lexical closure.
    Closure(Rc<Closure>),
    /// A named global function, resolved at call time (late binding, as
    /// in Lisp).
    Global(String),
}

/// A run-time value.
///
/// Everything is conceptually a pointer to an object (§2 of the paper);
/// `Clone` copies the reference, and cons cells are shared and mutable.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The empty list / false.
    #[default]
    Nil,
    /// Machine integer.
    Fixnum(i64),
    /// Floating-point number.
    Flonum(f64),
    /// Symbol.
    Sym(Symbol),
    /// String.
    Str(Rc<str>),
    /// Character.
    Char(char),
    /// Pair.
    Cons(Rc<ConsCell>),
    /// Callable function object.
    Func(Function),
}

impl Value {
    /// Constructs a cons.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Cons(Rc::new(ConsCell {
            car: RefCell::new(car),
            cdr: RefCell::new(cdr),
        }))
    }

    /// Constructs a proper list.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        let items: Vec<Value> = items.into_iter().collect();
        let mut out = Value::Nil;
        for v in items.into_iter().rev() {
            out = Value::cons(v, out);
        }
        out
    }

    /// Lisp truth.
    pub fn is_true(&self) -> bool {
        !matches!(self, Value::Nil)
    }

    /// A named global function value.
    pub fn global_function(name: &str) -> Value {
        Value::Func(Function::Global(name.to_string()))
    }

    /// The global function name, if this is one.
    pub fn as_global_function(&self) -> Option<&str> {
        match self {
            Value::Func(Function::Global(n)) => Some(n),
            _ => None,
        }
    }

    /// Converts a (quoted) source datum into a fresh run-time value.
    pub fn from_datum(d: &Datum) -> Value {
        match d {
            Datum::Nil => Value::Nil,
            Datum::Fixnum(n) => Value::Fixnum(*n),
            Datum::Flonum(x) => Value::Flonum(*x),
            Datum::Sym(s) => Value::Sym(s.clone()),
            Datum::Str(s) => Value::Str(s.clone()),
            Datum::Char(c) => Value::Char(*c),
            Datum::Cons(c) => Value::cons(Value::from_datum(&c.car()), Value::from_datum(&c.cdr())),
        }
    }

    /// Converts back to a datum where possible (functions have no source
    /// form and yield `None`).
    pub fn to_datum(&self) -> Option<Datum> {
        Some(match self {
            Value::Nil => Datum::Nil,
            Value::Fixnum(n) => Datum::Fixnum(*n),
            Value::Flonum(x) => Datum::Flonum(*x),
            Value::Sym(s) => Datum::Sym(s.clone()),
            Value::Str(s) => Datum::Str(s.clone()),
            Value::Char(c) => Datum::Char(*c),
            Value::Cons(c) => Datum::cons(c.car.borrow().to_datum()?, c.cdr.borrow().to_datum()?),
            Value::Func(_) => return None,
        })
    }

    /// `eq`: object identity.
    pub fn eq_p(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Fixnum(a), Value::Fixnum(b)) => a == b,
            (Value::Flonum(a), Value::Flonum(b)) => a.to_bits() == b.to_bits(),
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Cons(a), Value::Cons(b)) => Rc::ptr_eq(a, b),
            (Value::Func(Function::Closure(a)), Value::Func(Function::Closure(b))) => {
                Rc::ptr_eq(a, b)
            }
            (Value::Func(Function::Global(a)), Value::Func(Function::Global(b))) => a == b,
            _ => false,
        }
    }

    /// `eql`: identity, with numbers compared by value and type.
    pub fn eql_p(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Flonum(a), Value::Flonum(b)) => a == b,
            _ => self.eq_p(other),
        }
    }

    /// `equal`: structural equality.
    pub fn equal_p(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Cons(a), Value::Cons(b)) => {
                Rc::ptr_eq(a, b)
                    || (a.car.borrow().equal_p(&b.car.borrow())
                        && a.cdr.borrow().equal_p(&b.cdr.borrow()))
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.eql_p(other),
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Fixnum(_) => "fixnum",
            Value::Flonum(_) => "flonum",
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Char(_) => "character",
            Value::Cons(_) => "cons",
            Value::Func(_) => "function",
        }
    }
}

/// Structural equality (via [`Value::equal_p`]) — convenient for tests
/// and assertions; use the explicit predicates when identity matters.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.equal_p(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Func(Function::Closure(c)) => write!(f, "#<closure {}>", c.name),
            Value::Func(Function::Global(g)) => write!(f, "#<function {g}>"),
            other => match other.to_datum() {
                Some(d) => write!(f, "{d}"),
                // A cons containing a function somewhere inside:
                None => write!(f, "#<structure containing functions>"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_reader::Interner;

    #[test]
    fn datum_round_trip() {
        let mut i = Interner::new();
        let d = s1lisp_reader::read_str("(1 2.5 sym \"s\" (nested))", &mut i).unwrap();
        let v = Value::from_datum(&d);
        let back = v.to_datum().unwrap();
        assert!(back.equal(&d));
    }

    #[test]
    fn equality_predicates() {
        let a = Value::list([Value::Fixnum(1)]);
        let b = Value::list([Value::Fixnum(1)]);
        assert!(!a.eq_p(&b));
        assert!(a.equal_p(&b));
        assert!(Value::Flonum(2.0).eql_p(&Value::Flonum(2.0)));
        assert!(!Value::Fixnum(2).eql_p(&Value::Flonum(2.0)));
        assert_eq!(a, b); // PartialEq is equal_p
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Nil.to_string(), "()");
        assert_eq!(Value::Fixnum(3).to_string(), "3");
        assert_eq!(Value::Flonum(3.0).to_string(), "3.0");
        assert_eq!(
            Value::Func(Function::Global("car".into())).to_string(),
            "#<function car>"
        );
    }

    #[test]
    fn shared_mutation() {
        let c = Value::cons(Value::Fixnum(1), Value::Nil);
        let alias = c.clone();
        if let Value::Cons(cell) = &c {
            *cell.car.borrow_mut() = Value::Fixnum(9);
        }
        if let Value::Cons(cell) = &alias {
            assert!(cell.car.borrow().eql_p(&Value::Fixnum(9)));
        }
    }
}
