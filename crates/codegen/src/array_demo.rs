//! The §6.1 matrix-statement experiment (E5).
//!
//! The paper demonstrates TNBIND's handling of the RT "bottleneck"
//! registers on two assignment statements:
//!
//! ```text
//! Z[I,K] := A[I,J] * B[J,K] + C[I,K] + D     (the easy one)
//! Z[I,K] := A[I,J] * B[J,K] + C[I,K]         (the hard one)
//! ```
//!
//! "At each point two RT registers just barely suffice for the job" for
//! the first; for the second "the subscript for Z cannot be computed at
//! the 'obvious' point in the code because there are not enough RT
//! registers to go around.  However, computing it ahead allows the
//! subscript computation to dance into RTA and then out again into TEMP.
//! Thus no MOV instructions are required; each instruction performs
//! useful arithmetic."
//!
//! This module reproduces both code sequences from a TNBIND packing of
//! the subscript temporaries, plus the naive every-temporary-in-memory
//! baseline, and runs them on the simulator.
//!
//! Calling convention of the generated functions: arguments
//! `i j k a1 b1 c1 z1` (indices and row lengths, fixnums) on the frame;
//! array base addresses preloaded in registers R16 (A), R17 (B), R18 (C),
//! R19 (Z); the scalar `d` in R20 as a raw float.

use s1lisp_s1sim::{Asm, FuncCode, Insn, Machine, Operand, Program, Reg, Trap, Value, Word};
use s1lisp_tnbind::{pack, pack_naive, Location, PackRequest, TnPool};

/// Base-address register conventions for the demo.
pub const A_BASE: Reg = Reg(16);
/// Base of B.
pub const B_BASE: Reg = Reg(17);
/// Base of C.
pub const C_BASE: Reg = Reg(18);
/// Base of Z.
pub const Z_BASE: Reg = Reg(19);
/// The scalar D (raw float).
pub const D_REG: Reg = Reg(20);

/// Which statement to compile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Statement {
    /// `Z[I,K] := A[I,J]*B[J,K] + C[I,K] + D`.
    WithScalar,
    /// `Z[I,K] := A[I,J]*B[J,K] + C[I,K]` — the hard one.
    WithoutScalar,
}

/// Which allocator plans the subscript temporaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Allocator {
    /// TNBIND packing (RT registers preferred, memory as needed).
    Tnbind,
    /// Naive: every temporary in a frame slot.
    Naive,
}

const ARG_I: u16 = 0;
const ARG_J: u16 = 1;
const ARG_K: u16 = 2;
const ARG_A1: u16 = 3;
const ARG_B1: u16 = 4;
const ARG_C1: u16 = 5;
const ARG_Z1: u16 = 6;
/// Number of frame slots reserved for spilled temporaries.
const NTEMPS: u16 = 4;

/// Builds the TN pool for a statement: one TN per subscript temporary
/// plus the float accumulator, with the lifetimes the instruction
/// schedule implies.
fn plan(stmt: Statement) -> TnPool {
    let mut pool = TnPool::new();
    fn tn(pool: &mut TnPool, name: &'static str, uses: &[u32], rt: bool) {
        let t = pool.new_tn(name);
        for &u in uses {
            pool.record_use(t, u);
        }
        if rt {
            pool.prefer_rt(t);
        }
    }
    // Positions split each instruction into a read tick (2i) and a write
    // tick (2i+1), so a value written by the same instruction that last
    // reads another can share its register — the paper's
    // `FMULT RTA,A(RTA),B(RTB)` reuses RTA for the product the moment the
    // subscript dies.
    match stmt {
        Statement::WithScalar => {
            // i0: MULT sa,I,A1   i1: ADD sa,J     i2: MULT sb,J,B1
            // i3: ADD sb,K       i4: FMULT acc,A(sa),B(sb)
            // i5: MULT sc,I,C1   i6: ADD sc,K     i7: FADD acc,C(sc)
            // i8: MULT sz,I,Z1   i9: ADD sz,K    i10: FADD Z(sz),acc,D
            tn(&mut pool, "sub-a", &[1, 2, 3, 8], true);
            tn(&mut pool, "sub-b", &[5, 6, 7, 8], true);
            tn(&mut pool, "acc", &[9, 14, 15, 20], true);
            tn(&mut pool, "sub-c", &[11, 12, 13, 14], true);
            tn(&mut pool, "sub-z", &[17, 18, 19, 20], true);
        }
        Statement::WithoutScalar => {
            // The Z subscript is computed ahead (i0–i1) and must survive
            // to the final FADD at i9 — overlapping both RT-hungry
            // subscript pairs, so packing sends it to memory: the paper's
            // TEMP.
            tn(&mut pool, "sub-z", &[3, 18], true);
            tn(&mut pool, "sub-a", &[5, 6, 7, 12], true);
            tn(&mut pool, "sub-b", &[9, 10, 11, 12], true);
            tn(&mut pool, "acc", &[13, 18], true);
            tn(&mut pool, "sub-c", &[15, 16, 17, 18], true);
        }
    }
    pool
}

/// Compiles one statement under the chosen allocator, returning the
/// function and the number of MOV instructions in it.
pub fn compile_statement(stmt: Statement, alloc: Allocator, name: &str) -> (FuncCode, usize) {
    let pool = plan(stmt);
    let req = PackRequest {
        registers: Vec::new(), // arithmetic temporaries live in RTs or memory
        rt_registers: vec![Reg::RTA.0, Reg::RTB.0],
        first_slot: 7, // after the seven arguments
    };
    let packing = match alloc {
        Allocator::Tnbind => pack(&pool, &req),
        Allocator::Naive => pack_naive(&pool, &req),
    };
    let loc = |i: usize| match packing.location(tn_at(&pool, i)) {
        Location::Reg(r) => Operand::Reg(Reg(r)),
        Location::Slot(s) => Operand::Ind(Reg::FP, i32::from(s)),
    };
    let mut asm = Asm::new(name, 7);
    asm.push(Insn::AllocSlots {
        n: NTEMPS,
        init: Word::Raw(0),
    });
    let arg = |i: u16| Operand::arg(i);
    // An arithmetic step honoring the 2½-address constraint even when
    // the destination was packed into memory: route through a free RT
    // and MOV out (the naive allocator pays this on every step).
    let emit = |asm: &mut Asm,
                make: &dyn Fn(Operand, Operand, Operand) -> Insn,
                dst: Operand,
                a: Operand,
                b: Operand| {
        let legal = dst == a
            || matches!(dst, Operand::Reg(r) if r.is_rt())
            || matches!(a, Operand::Reg(r) if r.is_rt())
            || matches!(b, Operand::Reg(r) if r.is_rt());
        if legal {
            asm.push(make(dst, a, b));
        } else {
            asm.push(make(Operand::Reg(Reg::RTA), a, b));
            asm.push(Insn::Mov {
                dst,
                src: Operand::Reg(Reg::RTA),
            });
        }
    };
    let mult = |d: Operand, a: Operand, b: Operand| Insn::Mult { dst: d, a, b };
    let add = |d: Operand, a: Operand, b: Operand| Insn::Add { dst: d, a, b };
    let fmult = |d: Operand, a: Operand, b: Operand| Insn::FMult { dst: d, a, b };
    let fadd = |d: Operand, a: Operand, b: Operand| Insn::FAdd { dst: d, a, b };
    // Element operand: base register indexed by wherever the subscript
    // landed.
    let elem = |base: Reg, sub: Operand| match sub {
        Operand::Reg(r) => Operand::Idx {
            base,
            off: 0,
            idx: r,
            shift: 0,
        },
        Operand::Ind(b, off) => Operand::IdxMem {
            base,
            off: 0,
            idx_base: b,
            idx_off: off,
            shift: 0,
        },
        _ => unreachable!("subscripts are registers or slots"),
    };

    match stmt {
        Statement::WithScalar => {
            let (sa, sb, acc, sc, sz) = (loc(0), loc(1), loc(2), loc(3), loc(4));
            emit(&mut asm, &mult, sa, arg(ARG_I), arg(ARG_A1));
            emit(&mut asm, &add, sa, sa, arg(ARG_J));
            emit(&mut asm, &mult, sb, arg(ARG_J), arg(ARG_B1));
            emit(&mut asm, &add, sb, sb, arg(ARG_K));
            emit(&mut asm, &fmult, acc, elem(A_BASE, sa), elem(B_BASE, sb));
            emit(&mut asm, &mult, sc, arg(ARG_I), arg(ARG_C1));
            emit(&mut asm, &add, sc, sc, arg(ARG_K));
            emit(&mut asm, &fadd, acc, acc, elem(C_BASE, sc));
            emit(&mut asm, &mult, sz, arg(ARG_I), arg(ARG_Z1));
            emit(&mut asm, &add, sz, sz, arg(ARG_K));
            emit(&mut asm, &fadd, elem(Z_BASE, sz), acc, Operand::Reg(D_REG));
        }
        Statement::WithoutScalar => {
            let (sz, sa, sb, acc, sc) = (loc(0), loc(1), loc(2), loc(3), loc(4));
            // "computing it ahead allows the subscript computation to
            // dance into RTA and then out again into TEMP":
            emit(
                &mut asm,
                &mult,
                Operand::Reg(Reg::RTA),
                arg(ARG_I),
                arg(ARG_Z1),
            );
            emit(&mut asm, &add, sz, Operand::Reg(Reg::RTA), arg(ARG_K));
            emit(&mut asm, &mult, sa, arg(ARG_I), arg(ARG_A1));
            emit(&mut asm, &add, sa, sa, arg(ARG_J));
            emit(&mut asm, &mult, sb, arg(ARG_J), arg(ARG_B1));
            emit(&mut asm, &add, sb, sb, arg(ARG_K));
            emit(&mut asm, &fmult, acc, elem(A_BASE, sa), elem(B_BASE, sb));
            emit(&mut asm, &mult, sc, arg(ARG_I), arg(ARG_C1));
            emit(&mut asm, &add, sc, sc, arg(ARG_K));
            emit(&mut asm, &fadd, elem(Z_BASE, sz), acc, elem(C_BASE, sc));
        }
    }
    asm.push(Insn::Mov {
        dst: Operand::Reg(Reg::A),
        src: Operand::nil(),
    });
    asm.push(Insn::Ret);
    let code = asm.finish();
    // The final MOV A,nil is return plumbing, not data movement.
    let movs = code
        .insns
        .iter()
        .filter(|i| matches!(i, Insn::Mov { .. }))
        .count()
        - 1;
    (code, movs)
}

fn tn_at(pool: &TnPool, i: usize) -> s1lisp_tnbind::TnId {
    pool.ids().nth(i).expect("tn index")
}

/// Dimensions of the demo matrices.
pub const DIM: usize = 8;

/// Runs a compiled statement over `DIM×DIM` float matrices and returns
/// the resulting Z matrix (for cross-allocator equality checks) plus the
/// executed-instruction count.
///
/// # Errors
///
/// Propagates machine traps.
///
/// # Panics
///
/// Panics if the demo heap is too small (it is sized generously).
pub fn run_statement(stmt: Statement, alloc: Allocator) -> Result<(Vec<f64>, u64), Trap> {
    let (code, _) = compile_statement(stmt, alloc, "mat");
    let mut program = Program::new();
    program.define(code);
    let mut m = Machine::new(program);
    // Allocate the four matrices as raw float blocks.  No other
    // allocation happens during the run, so the collector never sees
    // them (see module docs).
    let n = DIM * DIM;
    let mut bases = Vec::new();
    for matrix in 0..4 {
        let base = m
            .heap
            .try_alloc(n, s1lisp_s1sim::ObjKind::Block)
            .expect("demo heap");
        for idx in 0..n {
            let v = match matrix {
                0 => 1.0 + idx as f64,         // A
                1 => 0.5 * (idx as f64) - 3.0, // B
                2 => 0.25 * (idx as f64),      // C
                _ => 0.0,                      // Z
            };
            m.heap.write(base + idx as u64, Word::F(v));
        }
        bases.push(base);
    }
    m.regs[A_BASE.0 as usize] = Word::Raw(bases[0] as i64);
    m.regs[B_BASE.0 as usize] = Word::Raw(bases[1] as i64);
    m.regs[C_BASE.0 as usize] = Word::Raw(bases[2] as i64);
    m.regs[Z_BASE.0 as usize] = Word::Raw(bases[3] as i64);
    m.regs[D_REG.0 as usize] = Word::F(2.5);
    let fx = |v: usize| Value::Fixnum(v as i64);
    for i in 0..DIM {
        for k in 0..DIM {
            let j = (i + k) % DIM;
            m.run(
                "mat",
                &[fx(i), fx(j), fx(k), fx(DIM), fx(DIM), fx(DIM), fx(DIM)],
            )?;
        }
    }
    let z: Vec<f64> = (0..n)
        .map(|idx| {
            m.heap
                .read(bases[3] + idx as u64)
                .as_float()
                .unwrap_or(f64::NAN)
        })
        .collect();
    Ok((z, m.stats.insns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_statement_needs_no_movs_under_tnbind() {
        let (_, movs) = compile_statement(Statement::WithScalar, Allocator::Tnbind, "m1");
        assert_eq!(movs, 0, "the paper's first listing has no MOVs");
    }

    #[test]
    fn hard_statement_needs_no_movs_under_tnbind() {
        // "Thus no MOV instructions are required; each instruction
        // performs useful arithmetic."
        let (code, movs) = compile_statement(Statement::WithoutScalar, Allocator::Tnbind, "m2");
        assert_eq!(movs, 0, "the TEMP dance avoids all MOVs");
        // And the Z subscript went to memory (the TEMP).
        let uses_idxmem = code.insns.iter().any(|i| {
            matches!(
                i,
                Insn::FAdd {
                    dst: Operand::IdxMem { .. },
                    ..
                }
            )
        });
        assert!(uses_idxmem, "Z(TEMP) addressing expected");
    }

    #[test]
    fn naive_allocation_pays_movs() {
        let (_, movs) = compile_statement(Statement::WithScalar, Allocator::Naive, "m3");
        assert!(movs >= 5, "expected MOV traffic, got {movs}");
    }

    #[test]
    fn all_variants_compute_the_same_matrix() {
        let (z1, n1) = run_statement(Statement::WithScalar, Allocator::Tnbind).unwrap();
        let (z2, n2) = run_statement(Statement::WithScalar, Allocator::Naive).unwrap();
        assert_eq!(z1, z2);
        assert!(n1 < n2, "TNBIND executes fewer instructions: {n1} vs {n2}");
        let (z3, _) = run_statement(Statement::WithoutScalar, Allocator::Tnbind).unwrap();
        let (z4, _) = run_statement(Statement::WithoutScalar, Allocator::Naive).unwrap();
        assert_eq!(z3, z4);
        assert_ne!(z1, z3, "the scalar D must matter");
    }
}
